"""Exception hierarchy for the ``repro`` package.

Every error deliberately raised by the library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` and
friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A parameter value is out of its documented domain."""


class GeometryError(ReproError):
    """A point or box does not fit the grid the Hilbert curve is defined on."""


class StoreError(ReproError):
    """A fingerprint store file is missing, truncated or inconsistent."""


class WALError(ReproError):
    """A write-ahead log file has a bad header or inconsistent geometry."""


class IndexError_(ReproError):
    """An index structure is used before being built, or built inconsistently.

    The trailing underscore avoids shadowing the ``IndexError`` builtin.
    """


class ExtractionError(ReproError):
    """Fingerprint extraction failed (e.g. a video too short for key-frames)."""


class StorageError(ReproError):
    """The tiered-storage subsystem is misconfigured or inconsistent.

    Raised for structural problems — a cold segment without its resident
    sidecars, a missing blob backend, a blob that fails validation — as
    opposed to transient fetch failures (:class:`ColdFetchError`).
    """


class IngestBackpressure(ReproError):
    """The ingest path is shedding load until maintenance catches up.

    Raised by :meth:`SegmentedS3Index.add` when unsealed rows (active +
    frozen memtables) exceed the configured backpressure threshold or
    the background maintenance queue is full.  Transient by design: the
    serving layer maps it to the retryable wire code ``unavailable``,
    so clients back off and resend instead of stalling the engine lane
    behind an inline seal.
    """

    def __init__(self, message: str, pending_rows: int = 0):
        super().__init__(message)
        self.pending_rows = int(pending_rows)


class ColdFetchError(StorageError):
    """A cold segment's bytes could not be fetched from the blob backend.

    Carries the segment name so the serving layer can degrade exactly
    the queries that needed that segment to a retryable per-segment
    error (wire code ``unavailable``) instead of crashing or silently
    returning a partial answer.
    """

    def __init__(self, segment: str, message: str):
        super().__init__(f"segment {segment}: {message}")
        self.segment = segment
