"""Exception hierarchy for the ``repro`` package.

Every error deliberately raised by the library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` and
friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A parameter value is out of its documented domain."""


class GeometryError(ReproError):
    """A point or box does not fit the grid the Hilbert curve is defined on."""


class StoreError(ReproError):
    """A fingerprint store file is missing, truncated or inconsistent."""


class WALError(ReproError):
    """A write-ahead log file has a bad header or inconsistent geometry."""


class IndexError_(ReproError):
    """An index structure is used before being built, or built inconsistently.

    The trailing underscore avoids shadowing the ``IndexError`` builtin.
    """


class ExtractionError(ReproError):
    """Fingerprint extraction failed (e.g. a video too short for key-frames)."""
