"""Distortion-vector models (paper §II and §IV-C).

The statistical query paradigm rests on a probabilistic model of the
*distortion vector* ``ΔS = S(m) − S(t(m))`` between the fingerprint of a
referenced pattern and the fingerprint of a transformed copy of it.  The
only structural assumption the S³ index needs is **component independence**
(``p_ΔS = Π_j p_ΔS_j``), so the box probabilities used by the statistical
filtering factorise into per-dimension integrals.

Two concrete models are provided:

* :class:`NormalDistortionModel` — the paper's working model: zero-mean
  normal with a single standard deviation ``σ`` shared by every component;
* :class:`PerComponentNormalModel` — zero-mean normal with an individual
  ``σ_j`` per component (the refinement the paper's §VI suggests).

Both expose the same interface: sampling, per-dimension interval
probabilities and box probabilities, so the index works with either.
"""

from __future__ import annotations

import numpy as np
from scipy.special import ndtr

from ..errors import ConfigurationError
from ..rng import SeedLike, resolve_rng


class IndependentDistortionModel:
    """Base class: a distortion model with independent components.

    Sub-classes implement :meth:`component_cdf`; everything else (interval
    and box probabilities, sampling) derives from it.
    """

    ndims: int

    def component_cdf(self, dim: int, x: np.ndarray) -> np.ndarray:
        """Return ``P(ΔS_dim <= x)`` element-wise."""
        raise NotImplementedError

    def cache_token(self) -> tuple:
        """A hashable identity used to key per-model warm-start caches.

        Models with equal tokens must induce identical box probabilities;
        the default is instance identity (never collides across distinct
        live models, never shares across equal ones).  Concrete models
        override this with a value-based token so equal models share
        warm-start state.
        """
        return ("instance", id(self))

    def sample(self, size: int, rng: SeedLike = None) -> np.ndarray:
        """Draw ``(size, ndims)`` distortion vectors."""
        raise NotImplementedError

    def cdf_multi(self, dims: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Return ``P(ΔS_dims[i] <= x[i])`` element-wise.

        *dims* carries one dimension index per element of *x*; used by the
        vectorised statistical filtering where each tree node splits a
        different dimension.  Sub-classes override this with a closed-form
        batch evaluation; the base implementation loops per element.
        """
        dims = np.asarray(dims)
        x = np.asarray(x, dtype=np.float64)
        out = np.empty_like(x)
        for i in range(x.size):
            out.flat[i] = self.component_cdf(int(dims.flat[i]), x.flat[i])
        return out

    # ------------------------------------------------------------------
    def interval_probability(
        self, dim: int, lo: np.ndarray, hi: np.ndarray, query: float
    ) -> np.ndarray:
        """Return ``P(lo <= query + ΔS_dim < hi)`` element-wise.

        This is the probability that the *referenced* fingerprint
        ``S = Q + ΔS`` falls in ``[lo, hi)`` along dimension *dim*, given
        the candidate value *query* on that dimension.
        """
        lo = np.asarray(lo, dtype=np.float64)
        hi = np.asarray(hi, dtype=np.float64)
        return self.component_cdf(dim, hi - query) - self.component_cdf(
            dim, lo - query
        )

    def box_probability(
        self, lo: np.ndarray, hi: np.ndarray, query: np.ndarray
    ) -> float:
        """Return ``P(Q + ΔS ∈ box)`` for the half-open box ``[lo, hi)``.

        Component independence makes this the product of the per-dimension
        interval probabilities — the integral of eq. (3) of the paper for a
        p-block.
        """
        prob = 1.0
        for j in range(self.ndims):
            prob *= float(
                self.interval_probability(j, np.asarray(lo[j]), np.asarray(hi[j]), float(query[j]))
            )
        return prob


class NormalDistortionModel(IndependentDistortionModel):
    """I.i.d. zero-mean normal distortion — the paper's working model.

    ``p_ΔS_j = N(0, σ)`` for every component ``j`` (§IV-C).  The single
    parameter ``σ`` doubles as the paper's transformation *severity*
    criterion.
    """

    def __init__(self, ndims: int, sigma: float):
        if ndims < 1:
            raise ConfigurationError(f"ndims must be >= 1, got {ndims}")
        if sigma <= 0:
            raise ConfigurationError(f"sigma must be > 0, got {sigma}")
        self.ndims = ndims
        self.sigma = float(sigma)

    def component_cdf(self, dim: int, x: np.ndarray) -> np.ndarray:
        return ndtr(np.asarray(x, dtype=np.float64) / self.sigma)

    def cache_token(self) -> tuple:
        return ("normal", self.ndims, self.sigma)

    def sample(self, size: int, rng: SeedLike = None) -> np.ndarray:
        gen = resolve_rng(rng)
        return gen.normal(0.0, self.sigma, size=(size, self.ndims))

    # Fast paths used by the vectorised statistical filtering --------------
    def cdf(self, x: np.ndarray) -> np.ndarray:
        """Shared-σ normal CDF (vectorised, dimension-agnostic)."""
        return ndtr(np.asarray(x, dtype=np.float64) / self.sigma)

    def cdf_multi(self, dims: np.ndarray, x: np.ndarray) -> np.ndarray:
        """All components share σ, so *dims* is irrelevant here."""
        return ndtr(np.asarray(x, dtype=np.float64) / self.sigma)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NormalDistortionModel(ndims={self.ndims}, sigma={self.sigma:g})"


class PerComponentNormalModel(IndependentDistortionModel):
    """Zero-mean normal distortion with an individual σ per component.

    The paper estimates per-component standard deviations ``σ_j`` and then
    collapses them to their mean; keeping them separate is the model
    refinement suggested in §VI and is benchmarked as an ablation.
    """

    def __init__(self, sigmas):
        sigmas = np.asarray(sigmas, dtype=np.float64)
        if sigmas.ndim != 1 or sigmas.size < 1:
            raise ConfigurationError("sigmas must be a 1-D non-empty array")
        if np.any(sigmas <= 0):
            raise ConfigurationError("all sigmas must be > 0")
        self.ndims = int(sigmas.size)
        self.sigmas = sigmas

    def component_cdf(self, dim: int, x: np.ndarray) -> np.ndarray:
        return ndtr(np.asarray(x, dtype=np.float64) / self.sigmas[dim])

    def cache_token(self) -> tuple:
        return ("per-component", self.ndims, self.sigmas.tobytes())

    def sample(self, size: int, rng: SeedLike = None) -> np.ndarray:
        gen = resolve_rng(rng)
        return gen.normal(0.0, 1.0, size=(size, self.ndims)) * self.sigmas

    def cdf_multi(self, dims: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Per-element normal CDF with the σ of each element's dimension."""
        dims = np.asarray(dims)
        x = np.asarray(x, dtype=np.float64)
        return ndtr(x / self.sigmas[dims])

    def mean_sigma(self) -> float:
        """Collapse to the paper's single-σ severity (mean of the σ_j)."""
        return float(self.sigmas.mean())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PerComponentNormalModel(ndims={self.ndims}, "
            f"mean_sigma={self.sigmas.mean():.3g})"
        )
