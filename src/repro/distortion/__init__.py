"""Distortion-vector models for the statistical query paradigm (paper §II).

A statistical query of expectation α searches the region of feature space
holding at least α of the probability mass of the *distortion vector*
``ΔS = S(m) − S(t(m))`` around the candidate fingerprint.  This package
provides the independent-component models the S³ index integrates over
(:mod:`~repro.distortion.model`), the radial law of ``‖ΔS‖`` used to match
ε-range baselines at equal expectation (:mod:`~repro.distortion.radial`),
and model estimation from matched fingerprint pairs
(:mod:`~repro.distortion.estimate`).
"""

from .empirical import EmpiricalDistortionModel
from .estimate import (
    DistortionEstimate,
    distortion_vectors,
    estimate_distortion,
    severity_order,
)
from .model import (
    IndependentDistortionModel,
    NormalDistortionModel,
    PerComponentNormalModel,
)
from .radial import (
    closed_form_norm_pdf,
    expectation_for_radius,
    norm_cdf,
    norm_pdf,
    radius_for_expectation,
    tabulate_cdf,
    uniform_sphere_pdf,
)

__all__ = [
    "DistortionEstimate",
    "EmpiricalDistortionModel",
    "IndependentDistortionModel",
    "NormalDistortionModel",
    "PerComponentNormalModel",
    "closed_form_norm_pdf",
    "distortion_vectors",
    "estimate_distortion",
    "expectation_for_radius",
    "norm_cdf",
    "norm_pdf",
    "radius_for_expectation",
    "severity_order",
    "tabulate_cdf",
    "uniform_sphere_pdf",
]
