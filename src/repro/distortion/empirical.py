"""Empirical distortion model (paper §VI: richer statistical modelling).

The paper's perspectives call for "investigations in the statistical
modeling of the distortion vector".  This model keeps the structural
assumption the index needs — component independence — but replaces the
normal marginal with the **empirical distribution** of each component,
tabulated from calibration pairs:

* per component, the sample is histogrammed on a regular grid and the CDF
  is the (linearly interpolated) cumulative histogram;
* a small Gaussian smoothing bandwidth regularises the tabulation so the
  model generalises beyond the exact sample values;
* tails beyond the observed range fall back to a normal tail matched to
  the component's variance, so the CDF is strictly monotone on ℝ.

Because real distortions are heavier-tailed than a single normal (a
mixture over interest points of very different stability), the empirical
model tracks the statistical-query expectation α noticeably better — the
`bench_ablation_distortion_model` benchmark quantifies this.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage
from scipy.special import ndtr

from ..errors import ConfigurationError
from ..rng import SeedLike, resolve_rng
from .model import IndependentDistortionModel


class EmpiricalDistortionModel(IndependentDistortionModel):
    """Independent-component model with tabulated empirical marginals.

    Parameters
    ----------
    sample:
        ``(N, D)`` observed distortion vectors (e.g. from
        :func:`repro.distortion.estimate.distortion_vectors`).
    grid_points:
        Resolution of the CDF tabulation per component.
    smoothing:
        Gaussian smoothing of the histogram, in grid cells.
    """

    def __init__(
        self,
        sample: np.ndarray,
        grid_points: int = 512,
        smoothing: float = 2.0,
    ):
        sample = np.asarray(sample, dtype=np.float64)
        if sample.ndim != 2 or sample.shape[0] < 8:
            raise ConfigurationError(
                "sample must be (N, D) with N >= 8 distortion vectors"
            )
        if grid_points < 16:
            raise ConfigurationError(
                f"grid_points must be >= 16, got {grid_points}"
            )
        if smoothing < 0:
            raise ConfigurationError(f"smoothing must be >= 0, got {smoothing}")
        self.ndims = int(sample.shape[1])
        self._sigmas = np.maximum(sample.std(axis=0), 1e-9)

        # Per-component tabulated CDF on a padded regular grid.
        self._grids = np.empty((self.ndims, grid_points))
        self._cdfs = np.empty((self.ndims, grid_points))
        for j in range(self.ndims):
            column = sample[:, j]
            pad = 3.0 * self._sigmas[j] + 1e-6
            lo, hi = column.min() - pad, column.max() + pad
            grid = np.linspace(lo, hi, grid_points)
            hist, edges = np.histogram(column, bins=grid_points - 1,
                                       range=(lo, hi))
            density = hist.astype(np.float64)
            if smoothing > 0:
                density = ndimage.gaussian_filter1d(density, smoothing)
            cdf = np.concatenate(([0.0], np.cumsum(density)))
            total = cdf[-1]
            if total <= 0:
                # Degenerate constant component: step CDF at the value.
                cdf = (grid >= column[0]).astype(np.float64)
            else:
                cdf = cdf / total
            self._grids[j] = grid
            self._cdfs[j] = cdf

    # ------------------------------------------------------------------
    def component_cdf(self, dim: int, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        grid = self._grids[dim]
        cdf = self._cdfs[dim]
        inside = np.interp(x, grid, cdf)
        # Normal tails outside the tabulated range keep the CDF strictly
        # monotone over the reals.
        sigma = self._sigmas[dim]
        below = x < grid[0]
        above = x > grid[-1]
        out = inside
        if np.any(below):
            out = np.where(below, ndtr((x - grid[0]) / sigma) * cdf[1], out)
        if np.any(above):
            out = np.where(
                above,
                cdf[-2] + ndtr((x - grid[-1]) / sigma) * (1.0 - cdf[-2]),
                out,
            )
        return out

    def cdf_multi(self, dims: np.ndarray, x: np.ndarray) -> np.ndarray:
        dims = np.asarray(dims)
        x = np.asarray(x, dtype=np.float64)
        out = np.empty_like(x)
        # Group by dimension: each np.interp call is vectorised over the
        # entries sharing a marginal.
        for dim in np.unique(dims):
            mask = dims == dim
            out[mask] = self.component_cdf(int(dim), x[mask])
        return out

    def sample(self, size: int, rng: SeedLike = None) -> np.ndarray:
        """Draw from the tabulated marginals by inverse-CDF sampling."""
        gen = resolve_rng(rng)
        u = gen.uniform(0.0, 1.0, size=(size, self.ndims))
        out = np.empty_like(u)
        for j in range(self.ndims):
            # Invert the monotone tabulated CDF.
            out[:, j] = np.interp(u[:, j], self._cdfs[j], self._grids[j])
        return out

    def mean_sigma(self) -> float:
        """Mean per-component standard deviation of the fitting sample."""
        return float(self._sigmas.mean())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EmpiricalDistortionModel(ndims={self.ndims}, "
            f"mean_sigma={self._sigmas.mean():.3g})"
        )
