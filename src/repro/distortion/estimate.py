"""Estimation of the distortion model from fingerprint pairs (paper §IV-C).

Given matched pairs ``(S(m), S(t(m)))`` — the fingerprint of a referenced
pattern and the fingerprint of its transformed copy at the *same* interest
point (the paper simulates a perfect detector by mapping point positions
through the transformation geometry) — this module estimates:

* the per-component standard deviations ``σ̂_j`` of the distortion vector;
* the paper's single severity parameter ``σ̂`` (mean of the ``σ̂_j``);
* ready-made :class:`~repro.distortion.model.NormalDistortionModel` /
  :class:`~repro.distortion.model.PerComponentNormalModel` instances.

The severity ``σ̂`` orders transformations: a statistical query whose model
is calibrated on the most severe expected transformation guarantees at least
its expectation α for every milder one (Table I of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .model import NormalDistortionModel, PerComponentNormalModel


@dataclass(frozen=True)
class DistortionEstimate:
    """Summary statistics of an observed distortion-vector sample."""

    num_pairs: int
    sigma_per_component: np.ndarray
    mean_per_component: np.ndarray

    @property
    def sigma(self) -> float:
        """The paper's severity criterion: mean of the per-component σ̂_j."""
        return float(self.sigma_per_component.mean())

    def normal_model(self) -> NormalDistortionModel:
        """Collapse to the paper's single-σ i.i.d. normal model."""
        return NormalDistortionModel(
            ndims=self.sigma_per_component.size, sigma=self.sigma
        )

    def per_component_model(self) -> PerComponentNormalModel:
        """Keep the per-component σ̂_j (the §VI refinement)."""
        return PerComponentNormalModel(self.sigma_per_component)


def distortion_vectors(
    reference: np.ndarray, distorted: np.ndarray
) -> np.ndarray:
    """Return the distortion vectors ``ΔS = S(m) − S(t(m))`` as floats.

    Both inputs are ``(N, D)`` fingerprint arrays (any numeric dtype; byte
    fingerprints are promoted to float64 before the subtraction so the
    difference is signed).
    """
    reference = np.asarray(reference, dtype=np.float64)
    distorted = np.asarray(distorted, dtype=np.float64)
    if reference.shape != distorted.shape:
        raise ConfigurationError(
            f"shape mismatch: reference {reference.shape} vs "
            f"distorted {distorted.shape}"
        )
    if reference.ndim != 2:
        raise ConfigurationError("fingerprint arrays must be 2-D (N, D)")
    return reference - distorted


def estimate_distortion(
    reference: np.ndarray, distorted: np.ndarray
) -> DistortionEstimate:
    """Estimate the distortion model from matched fingerprint pairs.

    Follows §IV-C: compute ``ΔS`` for every pair, take the per-component
    standard deviation ``σ̂_j`` (around zero — the model is zero-mean, so we
    use the root mean square rather than the centred deviation) and report
    the empirical means for diagnostics.
    """
    delta = distortion_vectors(reference, distorted)
    if delta.shape[0] < 2:
        raise ConfigurationError(
            f"need at least 2 pairs to estimate a deviation, got {delta.shape[0]}"
        )
    sigma_j = np.sqrt(np.mean(delta * delta, axis=0))
    sigma_j = np.maximum(sigma_j, 1e-9)  # degenerate components stay usable
    return DistortionEstimate(
        num_pairs=delta.shape[0],
        sigma_per_component=sigma_j,
        mean_per_component=delta.mean(axis=0),
    )


def severity_order(estimates: dict[str, DistortionEstimate]) -> list[str]:
    """Return transformation names sorted by decreasing severity σ̂.

    Reproduces the ordering of Table I (most severe transformation first).
    """
    return sorted(estimates, key=lambda name: estimates[name].sigma, reverse=True)
