"""Radial law of the distortion norm ``‖ΔS‖`` (paper §V-A and Fig. 1).

For the i.i.d. normal model ``ΔS_j ~ N(0, σ)`` in dimension ``D``, the norm
``‖ΔS‖ / σ`` follows a chi distribution with ``D`` degrees of freedom.  The
paper uses the explicit density

``p_‖ΔS‖(r) = f_N(0,σ)(r) / (2πσ²)^((D−1)/2) · π^(D/2) D / Γ(D/2 + 1) · r^(D−1)``

to tabulate the cumulative distribution and pick the ε-range radius with the
same expectation α as a statistical query (``∫_0^ε p_‖ΔS‖ = α``).  We expose
both the closed form (cross-checked against :mod:`scipy.stats.chi` in the
tests) and the two comparison densities of Fig. 1.
"""

from __future__ import annotations

import numpy as np
from scipy import stats
from scipy.special import gammaln

from ..errors import ConfigurationError


def norm_pdf(r: np.ndarray, ndims: int, sigma: float) -> np.ndarray:
    """Density of ``‖ΔS‖`` under the i.i.d. ``N(0, σ)`` model.

    This is the chi(D) law scaled by σ, written in the paper's closed form;
    zero for ``r < 0``.
    """
    _check(ndims, sigma)
    r = np.asarray(r, dtype=np.float64)
    return stats.chi.pdf(r / sigma, df=ndims) / sigma


def norm_cdf(r: np.ndarray, ndims: int, sigma: float) -> np.ndarray:
    """Cumulative distribution of ``‖ΔS‖`` under the i.i.d. normal model."""
    _check(ndims, sigma)
    r = np.asarray(r, dtype=np.float64)
    return stats.chi.cdf(r / sigma, df=ndims)


def radius_for_expectation(alpha: float, ndims: int, sigma: float) -> float:
    """Return the ε-range radius with expectation *alpha*.

    The radius ε such that ``P(‖ΔS‖ <= ε) = alpha`` — the paper sets the
    ε-range baseline this way so both query types retrieve a relevant
    fingerprint with the same probability (§V-A).
    """
    _check(ndims, sigma)
    if not 0.0 < alpha < 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
    return float(sigma * stats.chi.ppf(alpha, df=ndims))


def expectation_for_radius(epsilon: float, ndims: int, sigma: float) -> float:
    """Inverse of :func:`radius_for_expectation`."""
    _check(ndims, sigma)
    if epsilon < 0:
        raise ConfigurationError(f"epsilon must be >= 0, got {epsilon}")
    return float(stats.chi.cdf(epsilon / sigma, df=ndims))


def uniform_sphere_pdf(r: np.ndarray, ndims: int, radius: float) -> np.ndarray:
    """Density of ``‖X‖`` for X uniform in the ball of given *radius*.

    The "spherical uniform" comparison curve of Fig. 1: using the volume
    percentage as an error measure implicitly assumes this law, which in
    high dimension piles all the mass against the sphere's surface —
    ``p(r) = D r^(D−1) / radius^D``.
    """
    if radius <= 0:
        raise ConfigurationError(f"radius must be > 0, got {radius}")
    _check(ndims, 1.0)
    r = np.asarray(r, dtype=np.float64)
    pdf = ndims * np.power(np.clip(r, 0.0, None) / radius, ndims - 1) / radius
    return np.where((r >= 0) & (r <= radius), pdf, 0.0)


def closed_form_norm_pdf(r: np.ndarray, ndims: int, sigma: float) -> np.ndarray:
    """The paper's explicit formula for ``p_‖ΔS‖`` (§V-A).

    Evaluates the density directly from the Gaussian surface integral,

    ``p(r) = exp(−r²/2σ²) / (2πσ²)^(D/2) · 2 π^(D/2) / Γ(D/2) · r^(D−1)``,

    in log-space for numerical stability.  Mathematically identical to
    :func:`norm_pdf`; kept separate so the tests can verify the paper's
    algebra against the scipy chi law.
    """
    _check(ndims, sigma)
    r = np.asarray(r, dtype=np.float64)
    if ndims == 1:
        radial_term = np.zeros_like(r)  # r^(D-1) = r^0 = 1, even at r = 0
    else:
        with np.errstate(divide="ignore"):
            log_r = np.where(r > 0, np.log(np.clip(r, 1e-300, None)), -np.inf)
        radial_term = (ndims - 1) * log_r
    log_pdf = (
        -(r * r) / (2.0 * sigma * sigma)
        - 0.5 * ndims * np.log(2.0 * np.pi * sigma * sigma)
        + np.log(2.0)
        + 0.5 * ndims * np.log(np.pi)
        - gammaln(ndims / 2.0)
        + radial_term
    )
    with np.errstate(over="ignore"):
        out = np.exp(log_pdf)
    return np.where(r >= 0, out, 0.0)


def tabulate_cdf(
    ndims: int, sigma: float, r_max: float, num: int = 4096
) -> tuple[np.ndarray, np.ndarray]:
    """Numerically tabulate the norm CDF on ``[0, r_max]``.

    Mirrors the paper's procedure ("by tabulating the values of the
    corresponding cumulated density function"): trapezoidal integration of
    the closed-form density.  Returns ``(radii, cdf_values)``.
    """
    _check(ndims, sigma)
    if r_max <= 0:
        raise ConfigurationError(f"r_max must be > 0, got {r_max}")
    if num < 2:
        raise ConfigurationError(f"num must be >= 2, got {num}")
    radii = np.linspace(0.0, r_max, num)
    pdf = closed_form_norm_pdf(radii, ndims, sigma)
    cdf = np.concatenate(
        ([0.0], np.cumsum(0.5 * (pdf[1:] + pdf[:-1]) * np.diff(radii)))
    )
    return radii, cdf


def _check(ndims: int, sigma: float) -> None:
    if ndims < 1:
        raise ConfigurationError(f"ndims must be >= 1, got {ndims}")
    if sigma <= 0:
        raise ConfigurationError(f"sigma must be > 0, got {sigma}")
