"""The p-block partition induced by the Hilbert curve (paper §IV-A).

Splitting the K-th order Hilbert curve of ``[0, 2^K - 1]^D`` into ``2^p``
equal intervals partitions the grid into ``2^p`` hyper-rectangular
*p-blocks* of identical volume (Fig. 2 of the paper): a ``p = i*D + q`` bit
prefix of the curve position fixes the ``i`` most significant bits of every
coordinate plus one additional bit in ``q`` specific dimensions.

This module exposes the partition as a lazily-explored binary tree.  Each
:class:`PartitionNode` knows

* its curve interval (``prefix`` of ``depth`` bits — the interval is
  ``[prefix << (K*D - depth), (prefix + 1) << (K*D - depth))``);
* its exact box ``[lo_j, hi_j)`` in cell units;
* the Hamilton state ``(entry, direction)`` needed to split it further.

Descending one level fixes the next curve-index bit, which — through the
Gray code and the frame transform of the Butz algorithm — halves the box
along one dimension.  The split dimension and which child takes the lower
half are derived in :meth:`PartitionNode.split_info`.

The scalar tree here is the readable reference used by the tests and the
exact best-first block selection; the throughput-critical statistical
filtering re-implements the same descent with numpy frontiers in
:mod:`repro.index.filtering`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GeometryError
from .butz import HilbertCurve
from .gray import update_state


@dataclass
class PartitionNode:
    """One node of the Hilbert partition tree (a curve-interval / box pair).

    Attributes
    ----------
    curve:
        The :class:`HilbertCurve` the partition belongs to.
    depth:
        Number of fixed curve-index bits ``p`` (0 for the root).
    prefix:
        The fixed bits, as an integer in ``[0, 2^depth)``; nodes at equal
        depth are ordered along the curve by ``prefix``.
    level:
        Completed curve levels ``i = depth // D``.
    entry, direction:
        Hamilton state at the entry of level ``level``.
    partial_w:
        The ``depth % D`` already-fixed (most significant) bits of the
        current level's byte ``w``.
    lo, hi:
        Box bounds per dimension, in cell units, half-open ``[lo, hi)``.
    """

    curve: HilbertCurve
    depth: int
    prefix: int
    level: int
    entry: int
    direction: int
    partial_w: int
    lo: tuple[int, ...]
    hi: tuple[int, ...]

    @classmethod
    def root(cls, curve: HilbertCurve) -> "PartitionNode":
        """Return the tree root: the whole grid, empty prefix."""
        side = curve.side
        n = curve.ndims
        return cls(
            curve=curve,
            depth=0,
            prefix=0,
            level=0,
            entry=0,
            direction=0,
            partial_w=0,
            lo=(0,) * n,
            hi=(side,) * n,
        )

    # ------------------------------------------------------------------
    def split_info(self) -> tuple[int, int]:
        """Return ``(dim, value_of_child0)`` for the next split.

        The next curve-index bit is bit ``D - 1 - q`` of the current byte
        ``w`` (``q = depth % D`` bits already fixed).  Through the Gray code
        ``g = b ^ w_{D-q}`` and the inverse frame transform
        ``l' = rol(l, direction + 1) ^ entry``, appending bit ``b`` fixes the
        level bit of dimension ``dim = (D - q + direction) % D`` to
        ``v = b ^ w_{D-q} ^ entry_bit(dim)``.

        ``value_of_child0`` is ``v`` for ``b = 0``; child 1 takes ``1 - v``.
        """
        n = self.curve.ndims
        q = self.depth - self.level * n
        dim = (n - q + self.direction) % n
        prev_w_bit = (self.partial_w & 1) if q > 0 else 0
        value_child0 = prev_w_bit ^ ((self.entry >> dim) & 1)
        return dim, value_child0

    def children(self) -> tuple["PartitionNode", "PartitionNode"]:
        """Return the two children (curve order: child 0 first)."""
        if self.depth >= self.curve.total_bits:
            raise GeometryError("cannot split a single-cell node further")
        n = self.curve.ndims
        q = self.depth - self.level * n
        dim, value_child0 = self.split_info()
        half = (self.hi[dim] - self.lo[dim]) // 2
        mid = self.lo[dim] + half

        kids = []
        for b in (0, 1):
            value = value_child0 ^ b
            lo = list(self.lo)
            hi = list(self.hi)
            if value == 0:
                hi[dim] = mid
            else:
                lo[dim] = mid
            partial_w = (self.partial_w << 1) | b
            level, entry, direction = self.level, self.entry, self.direction
            if q + 1 == n:
                entry, direction = update_state(entry, direction, partial_w, n)
                level += 1
                partial_w = 0
            kids.append(
                PartitionNode(
                    curve=self.curve,
                    depth=self.depth + 1,
                    prefix=(self.prefix << 1) | b,
                    level=level,
                    entry=entry,
                    direction=direction,
                    partial_w=partial_w,
                    lo=tuple(lo),
                    hi=tuple(hi),
                )
            )
        return kids[0], kids[1]

    # ------------------------------------------------------------------
    def curve_interval(self) -> tuple[int, int]:
        """Return the half-open curve-index interval ``[start, stop)``."""
        shift = self.curve.total_bits - self.depth
        return self.prefix << shift, (self.prefix + 1) << shift

    def volume(self) -> int:
        """Return the number of grid cells in the box."""
        v = 1
        for lo_j, hi_j in zip(self.lo, self.hi):
            v *= hi_j - lo_j
        return v

    def contains(self, point) -> bool:
        """Return whether grid cell *point* lies inside the box."""
        return all(
            lo_j <= c < hi_j for c, lo_j, hi_j in zip(point, self.lo, self.hi)
        )

    def min_sq_distance(self, query) -> float:
        """Return the squared L2 distance from *query* to the closed box."""
        total = 0.0
        for c, lo_j, hi_j in zip(query, self.lo, self.hi):
            gap = max(lo_j - c, 0.0, c - hi_j)
            total += gap * gap
        return total


def blocks_at_depth(curve: HilbertCurve, depth: int) -> list[PartitionNode]:
    """Materialise every p-block of the partition of given *depth*.

    Exponential in *depth*; intended for tests, illustrations (Fig. 2) and
    small dimensions.
    """
    if not 0 <= depth <= curve.total_bits:
        raise GeometryError(
            f"depth must be in [0, {curve.total_bits}], got {depth}"
        )
    frontier = [PartitionNode.root(curve)]
    for _ in range(depth):
        nxt: list[PartitionNode] = []
        for node in frontier:
            nxt.extend(node.children())
        frontier = nxt
    return frontier


def partition_grid_2d(curve: HilbertCurve, depth: int) -> np.ndarray:
    """Return a 2-D array labelling each cell with its p-block prefix.

    Only defined for ``curve.ndims == 2``; reproduces the space partitions
    of the paper's Fig. 2.  Cell ``(x, y)`` maps to ``grid[y, x]``.
    """
    if curve.ndims != 2:
        raise GeometryError("partition_grid_2d requires a 2-D curve")
    side = curve.side
    grid = np.empty((side, side), dtype=np.int64)
    for node in blocks_at_depth(curve, depth):
        grid[node.lo[1]:node.hi[1], node.lo[0]:node.hi[0]] = node.prefix
    return grid
