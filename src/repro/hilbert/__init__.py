"""D-dimensional Hilbert space-filling curve (Butz algorithm) substrate.

The index structure of the paper (§IV) physically orders fingerprints along
the Hilbert curve and filters queries through the hyper-rectangular
*p-block* partition the curve induces.  This package provides:

* :class:`~repro.hilbert.butz.HilbertCurve` — exact scalar encode/decode for
  any dimension ``D`` and order ``K`` (big-integer indices);
* :func:`~repro.hilbert.vectorized.encode_batch` — numpy bulk computation of
  truncated curve keys for index builds;
* :class:`~repro.hilbert.partition.PartitionNode` — the lazily explored
  p-block tree with exact box geometry.
"""

from .butz import HilbertCurve
from .gray import gray, gray_inverse
from .partition import PartitionNode, blocks_at_depth, partition_grid_2d
from .vectorized import encode_batch

__all__ = [
    "HilbertCurve",
    "PartitionNode",
    "blocks_at_depth",
    "encode_batch",
    "gray",
    "gray_inverse",
    "partition_grid_2d",
]
