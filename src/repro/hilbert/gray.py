"""Gray-code primitives for the Butz/Hamilton Hilbert-curve algorithm.

The Butz algorithm (Butz 1971), in the formulation popularised by Hamilton
("Compact Hilbert Indices", Dalhousie CS-2006-07), walks the curve one
*level* at a time.  At each level a ``D``-bit byte ``w`` of the curve index
selects one of the ``2^D`` child sub-cubes; the child's position in the
parent frame is the Gray code ``gc(w)`` transformed by the parent's *entry
point* ``e`` and *intra sub-cube direction* ``d``.

This module provides the scalar bit-level helpers:

* :func:`gray` / :func:`gray_inverse` — the reflected binary Gray code;
* :func:`trailing_set_bits` — ``g(i)``, the subscript of the bit that flips
  between ``gc(i)`` and ``gc(i+1)``;
* :func:`entry_point` / :func:`intra_direction` — Hamilton's ``e(w)`` and
  ``d(w)`` sequences;
* :func:`rotate_right` / :func:`rotate_left` — cyclic bit rotations on
  ``D``-bit words, used by the frame transform
  ``T_{e,d}(b) = ror(b ^ e, d + 1)`` and its inverse.

All functions operate on plain Python integers so they work for any
dimension (the 160-bit indices of the paper's 20-dimensional byte space
included).  Vectorised numpy counterparts live in
:mod:`repro.hilbert.vectorized`.
"""

from __future__ import annotations


def gray(i: int) -> int:
    """Return the reflected binary Gray code of non-negative integer *i*."""
    return i ^ (i >> 1)


def gray_inverse(g: int) -> int:
    """Return the integer whose Gray code is *g* (inverse of :func:`gray`)."""
    i = g
    shift = 1
    while (g >> shift) > 0:
        i ^= g >> shift
        shift += 1
    return i


def trailing_set_bits(i: int) -> int:
    """Return the number of trailing one-bits of *i* (Hamilton's ``g(i)``).

    ``gc(i) ^ gc(i + 1) == 1 << trailing_set_bits(i)``, i.e. this is the
    dimension along which the Gray code steps from ``i`` to ``i + 1``.
    """
    count = 0
    while i & 1:
        count += 1
        i >>= 1
    return count


def rotate_right(b: int, shift: int, width: int) -> int:
    """Cyclically rotate the *width*-bit word *b* right by *shift* bits."""
    shift %= width
    if shift == 0:
        return b
    mask = (1 << width) - 1
    return ((b >> shift) | (b << (width - shift))) & mask


def rotate_left(b: int, shift: int, width: int) -> int:
    """Cyclically rotate the *width*-bit word *b* left by *shift* bits."""
    return rotate_right(b, width - (shift % width), width)


def entry_point(w: int) -> int:
    """Return Hamilton's entry point ``e(w)`` of child sub-cube *w*.

    ``e(0) = 0`` and ``e(w) = gc(2 * floor((w - 1) / 2))`` otherwise: the
    corner of child *w* at which the curve enters it, expressed in the
    parent's frame.
    """
    if w == 0:
        return 0
    return gray(2 * ((w - 1) // 2))


def intra_direction(w: int, ndims: int) -> int:
    """Return Hamilton's intra sub-cube direction ``d(w)`` (mod *ndims*).

    The direction of the curve inside child *w*: ``d(0) = 0``,
    ``d(w) = g(w - 1) mod n`` for even ``w`` and ``g(w) mod n`` for odd
    ``w``.
    """
    if w == 0:
        return 0
    if w % 2 == 0:
        return trailing_set_bits(w - 1) % ndims
    return trailing_set_bits(w) % ndims


def transform(e: int, d: int, b: int, ndims: int) -> int:
    """Map *b* from the parent frame into child-canonical frame.

    ``T_{e,d}(b) = ror(b ^ e, d + 1)`` over *ndims*-bit words.
    """
    return rotate_right(b ^ e, d + 1, ndims)


def transform_inverse(e: int, d: int, b: int, ndims: int) -> int:
    """Inverse of :func:`transform`: ``T^{-1}_{e,d}(b) = rol(b, d + 1) ^ e``."""
    return rotate_left(b, d + 1, ndims) ^ e


def update_state(e: int, d: int, w: int, ndims: int) -> tuple[int, int]:
    """Compose the parent state ``(e, d)`` with child byte *w*.

    Returns the ``(entry, direction)`` state to use inside child *w*:
    ``e' = e ^ rol(e(w), d + 1)`` and ``d' = (d + d(w) + 1) mod n``.
    """
    e_next = e ^ rotate_left(entry_point(w), d + 1, ndims)
    d_next = (d + intra_direction(w, ndims) + 1) % ndims
    return e_next, d_next
