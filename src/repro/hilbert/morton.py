"""Z-order (Morton) curve: the comparison ordering for the curve ablation.

The paper follows Faloutsos in choosing the Hilbert curve for its superior
locality.  This module provides the classic alternative — bit interleaving
(Z-order / Morton order) — with the same capabilities the S³ index needs:
bulk key computation and statistical/geometric block filtering over the
partition the key prefixes induce.

A ``p``-bit prefix of a Morton key is also an axis-aligned box: bit ``i``
of the key (from the MSB) halves dimension ``i mod D``, cycling through
the dimensions in fixed order with the *lower* half always first.  Unlike
the Hilbert curve, consecutive Morton blocks are frequently far apart in
space, so selected blocks merge into many more row sections — the
quantitative cost the ``bench_ablation_curve_choice`` benchmark measures.
"""

from __future__ import annotations

import numpy as np

from ..distortion.model import IndependentDistortionModel
from ..errors import ConfigurationError, GeometryError

_U64 = np.uint64


def morton_encode_batch(points: np.ndarray, order: int, levels: int) -> np.ndarray:
    """Interleave the top *levels* bits of each coordinate into Z-order keys.

    Same contract as :func:`repro.hilbert.vectorized.encode_batch`: the
    returned ``uint64`` keys hold ``levels * D`` bits, MSB-first by level
    and, within a level, by dimension index.
    """
    points = np.asarray(points)
    if points.ndim != 2:
        raise GeometryError(f"points must be 2-D (N, D), got shape {points.shape}")
    n = points.shape[1]
    if not 1 <= levels <= order:
        raise GeometryError(f"levels must be in [1, {order}], got {levels}")
    if levels * n > 64:
        raise GeometryError(
            f"levels * ndims = {levels * n} exceeds 64 bits; lower `levels`"
        )
    side = 1 << order
    coords = points.astype(np.int64, copy=False)
    if coords.min(initial=0) < 0 or coords.max(initial=0) >= side:
        raise GeometryError(f"coordinates outside [0, {side - 1}]")
    coords = coords.astype(_U64)

    keys = np.zeros(points.shape[0], dtype=_U64)
    for i in range(order - 1, order - 1 - levels, -1):
        for j in range(n):
            keys = (keys << _U64(1)) | ((coords[:, j] >> _U64(i)) & _U64(1))
    return keys


class MortonBlockSelector:
    """Vectorised block selection over the Morton partition.

    Far simpler than the Hilbert descent: at depth ``d`` *every* node
    splits dimension ``d mod D``, lower half first, so no per-node state is
    needed.
    """

    def __init__(self, ndims: int, order: int):
        if ndims < 1 or order < 1:
            raise GeometryError("ndims and order must be >= 1")
        self.ndims = ndims
        self.order = order
        self.side = 1 << order

    def statistical_blocks(
        self,
        query: np.ndarray,
        model: IndependentDistortionModel,
        depth: int,
        threshold: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(prefixes, probabilities)`` of blocks with mass > t."""
        query = self._check(query, depth)
        if not 0.0 < threshold < 1.0:
            raise ConfigurationError(
                f"threshold must be in (0, 1), got {threshold}"
            )
        n = self.ndims
        lo = np.zeros((1, n))
        hi = np.full((1, n), float(self.side))
        prefix = np.zeros(1, dtype=_U64)
        dims_all = np.arange(n)
        philo = model.cdf_multi(np.broadcast_to(dims_all, (1, n)), lo - query)
        phihi = model.cdf_multi(np.broadcast_to(dims_all, (1, n)), hi - query)
        prob = np.prod(phihi - philo, axis=1)

        for d in range(depth):
            j = d % n
            mid = 0.5 * (lo[:, j] + hi[:, j])
            phimid = model.cdf_multi(np.full(mid.size, j), mid - query[j])
            old = phihi[:, j] - philo[:, j]
            with np.errstate(invalid="ignore", divide="ignore"):
                p_low = np.where(old > 0, prob * (phimid - philo[:, j]) / old, 0.0)
                p_high = np.where(old > 0, prob * (phihi[:, j] - phimid) / old, 0.0)
            keep0 = p_low > threshold
            keep1 = p_high > threshold

            parts = []
            for value, keep, p_child in ((0, keep0, p_low), (1, keep1, p_high)):
                idx = np.nonzero(keep)[0]
                if idx.size == 0:
                    continue
                l2, h2 = lo[idx].copy(), hi[idx].copy()
                pl, ph = philo[idx].copy(), phihi[idx].copy()
                if value == 0:
                    h2[:, j] = mid[idx]
                    ph[:, j] = phimid[idx]
                else:
                    l2[:, j] = mid[idx]
                    pl[:, j] = phimid[idx]
                parts.append(
                    (
                        (prefix[idx] << _U64(1)) | _U64(value),
                        l2, h2, pl, ph, p_child[idx],
                    )
                )
            if not parts:
                return np.empty(0, dtype=_U64), np.empty(0)
            prefix = np.concatenate([p[0] for p in parts])
            lo = np.concatenate([p[1] for p in parts])
            hi = np.concatenate([p[2] for p in parts])
            philo = np.concatenate([p[3] for p in parts])
            phihi = np.concatenate([p[4] for p in parts])
            prob = np.concatenate([p[5] for p in parts])

        order_idx = np.argsort(prefix, kind="stable")
        return prefix[order_idx], prob[order_idx]

    def statistical_blocks_alpha(
        self,
        query: np.ndarray,
        model: IndependentDistortionModel,
        depth: int,
        alpha: float,
        shrink: float = 0.25,
        max_descents: int = 40,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Threshold iteration to expectation α (grid-conditioned)."""
        query = self._check(query, depth)
        lo = np.zeros(self.ndims)
        hi = np.full(self.ndims, float(self.side))
        grid_mass = model.box_probability(lo, hi, query)
        target = alpha * grid_mass
        t = (1.0 - alpha) / 4.0
        for _ in range(max_descents):
            prefixes, probs = self.statistical_blocks(query, model, depth, t)
            if probs.sum() >= target or t < 1e-12:
                return prefixes, probs
            t *= shrink
        return prefixes, probs  # pragma: no cover - max_descents generous

    def _check(self, query: np.ndarray, depth: int) -> np.ndarray:
        query = np.asarray(query, dtype=np.float64).ravel()
        if query.size != self.ndims:
            raise ConfigurationError(
                f"query has {query.size} components, expected {self.ndims}"
            )
        if not 1 <= depth <= min(self.ndims * self.order, 64):
            raise ConfigurationError(f"invalid depth {depth}")
        return query


class MortonIndex:
    """A Z-order twin of :class:`~repro.index.s3.S3Index` (ablation only).

    Same storage layout discipline (sort by key, block ranges by binary
    search) with Morton keys; answers statistical queries so the curve
    choice can be compared end to end.
    """

    def __init__(
        self,
        store,
        order: int = 8,
        key_levels: int = 2,
        depth: int | None = None,
        model: IndependentDistortionModel | None = None,
    ):
        from ..index.store import FingerprintStore  # late: avoid cycle

        if not isinstance(store, FingerprintStore):
            raise ConfigurationError("store must be a FingerprintStore")
        if len(store) == 0:
            raise ConfigurationError("cannot index an empty store")
        keys = morton_encode_batch(store.fingerprints, order, key_levels)
        permutation = np.argsort(keys, kind="stable")
        self.keys = keys[permutation]
        self.store = store.take(permutation)
        self.key_bits = key_levels * store.ndims
        self.selector = MortonBlockSelector(store.ndims, order)
        if depth is None:
            depth = int(np.ceil(np.log2(max(len(store), 2))))
            depth = min(max(depth, 1), self.key_bits)
        self.depth = depth
        self.model = model

    def __len__(self) -> int:
        return len(self.store)

    def block_row_ranges(self, prefixes: np.ndarray, depth: int):
        """Merged contiguous row ranges of the given key-prefix blocks."""
        if prefixes.size == 0:
            return []
        shift = np.uint64(self.key_bits - depth)
        starts = np.searchsorted(self.keys, prefixes << shift, side="left")
        ends = np.searchsorted(
            self.keys, (prefixes + np.uint64(1)) << shift, side="left"
        )
        ranges: list[tuple[int, int]] = []
        for s, e in zip(starts.tolist(), ends.tolist()):
            if s >= e:
                continue
            if ranges and s <= ranges[-1][1]:
                ranges[-1] = (ranges[-1][0], max(e, ranges[-1][1]))
            else:
                ranges.append((s, e))
        return ranges

    def statistical_query(self, query: np.ndarray, alpha: float):
        """Statistical query returning ``(rows, num_blocks, num_sections)``."""
        if self.model is None:
            raise ConfigurationError("MortonIndex needs a distortion model")
        prefixes, _ = self.selector.statistical_blocks_alpha(
            query, self.model, self.depth, alpha
        )
        ranges = self.block_row_ranges(prefixes, self.depth)
        if ranges:
            rows = np.concatenate(
                [np.arange(s, e, dtype=np.int64) for s, e in ranges]
            )
        else:
            rows = np.empty(0, dtype=np.int64)
        return rows, int(prefixes.size), len(ranges)
