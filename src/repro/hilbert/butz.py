"""Scalar Hilbert curve mapping for arbitrary dimension and order.

Implements the Butz algorithm (Butz 1971) in Hamilton's state-machine
formulation: the curve index of a point is assembled level by level, the
per-level state being the pair ``(entry point, intra direction)`` updated
with :func:`repro.hilbert.gray.update_state`.

The mapping is the bijection

``encode : [0, 2^K - 1]^D  ->  [0, 2^(K*D) - 1]``

between grid cells and positions on the K-th order approximation of the
Hilbert curve (the paper's ``H^D_K``).  Plain Python integers are used
throughout, so the 160-bit indices of the paper's ``D = 20, K = 8``
fingerprint space are exact.

This module is the *reference* implementation; bulk work uses the numpy
encoder in :mod:`repro.hilbert.vectorized`, which is cross-checked against
it in the test-suite.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import GeometryError
from .gray import gray, gray_inverse, transform, transform_inverse, update_state


class HilbertCurve:
    """The K-th order Hilbert curve on the ``D``-dimensional ``2^K`` grid.

    Parameters
    ----------
    ndims:
        Dimension ``D`` of the grid (``>= 1``).
    order:
        Number of bits per coordinate ``K`` (``>= 1``); coordinates live in
        ``[0, 2^K - 1]`` and indices in ``[0, 2^(K*D) - 1]``.
    """

    def __init__(self, ndims: int, order: int):
        if ndims < 1:
            raise GeometryError(f"ndims must be >= 1, got {ndims}")
        if order < 1:
            raise GeometryError(f"order must be >= 1, got {order}")
        self.ndims = ndims
        self.order = order
        self.side = 1 << order
        self.total_bits = ndims * order

    # ------------------------------------------------------------------
    # encode / decode
    # ------------------------------------------------------------------
    def encode(self, point: Sequence[int]) -> int:
        """Return the curve index of grid cell *point*.

        *point* must contain ``ndims`` integers in ``[0, 2^order - 1]``.
        """
        n, k = self.ndims, self.order
        if len(point) != n:
            raise GeometryError(f"point has {len(point)} coords, expected {n}")
        # Plain ints: narrow numpy scalars (e.g. uint8) would overflow the
        # bit-packing shifts below.
        point = [int(c) for c in point]
        for c in point:
            if not 0 <= c < self.side:
                raise GeometryError(f"coordinate {c} outside [0, {self.side - 1}]")
        h = 0
        e, d = 0, 0
        for i in range(k - 1, -1, -1):
            # Pack bit i of every coordinate: bit j of l <- bit i of point[j].
            l = 0
            for j in range(n):
                l |= ((point[j] >> i) & 1) << j
            l = transform(e, d, l, n)
            w = gray_inverse(l)
            h = (h << n) | w
            e, d = update_state(e, d, w, n)
        return h

    def decode(self, index: int) -> list[int]:
        """Return the grid cell at curve position *index*."""
        n, k = self.ndims, self.order
        if not 0 <= index < (1 << self.total_bits):
            raise GeometryError(f"index {index} outside [0, 2^{self.total_bits})")
        point = [0] * n
        e, d = 0, 0
        for i in range(k - 1, -1, -1):
            w = (index >> (i * n)) & ((1 << n) - 1)
            l = transform_inverse(e, d, gray(w), n)
            for j in range(n):
                point[j] |= ((l >> j) & 1) << i
            e, d = update_state(e, d, w, n)
        return point

    # ------------------------------------------------------------------
    # prefix utilities (used by the partition tree)
    # ------------------------------------------------------------------
    def prefix_key(self, point: Sequence[int], levels: int) -> int:
        """Return the first ``levels * ndims`` bits of ``encode(point)``.

        Equivalent to ``encode(point) >> (ndims * (order - levels))`` but
        stops the walk after *levels* levels, which is what the bulk key
        builder needs (keys truncated to fit machine words).
        """
        n = self.ndims
        if not 1 <= levels <= self.order:
            raise GeometryError(f"levels must be in [1, {self.order}], got {levels}")
        point = [int(c) for c in point]
        h = 0
        e, d = 0, 0
        for i in range(self.order - 1, self.order - 1 - levels, -1):
            l = 0
            for j in range(n):
                l |= ((point[j] >> i) & 1) << j
            l = transform(e, d, l, n)
            w = gray_inverse(l)
            h = (h << n) | w
            e, d = update_state(e, d, w, n)
        return h

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HilbertCurve(ndims={self.ndims}, order={self.order})"
