"""Vectorised (numpy) Hilbert key computation for bulk index builds.

The S³ index physically orders hundreds of thousands to millions of
fingerprints along the Hilbert curve.  Only a *prefix* of the full
``K * D``-bit curve position matters for that ordering — the partition depth
``p`` never exceeds a few dozen bits — so this module computes the first
``levels`` levels (``levels * D`` bits, required to fit a ``uint64``) of the
curve index for whole arrays of points at once.

The algorithm mirrors :class:`repro.hilbert.butz.HilbertCurve` exactly
(same Hamilton state machine), with every scalar bit operation replaced by
the corresponding numpy expression; the test-suite cross-checks the two on
random batches.
"""

from __future__ import annotations

import numpy as np

from ..errors import GeometryError

_U64 = np.uint64


def _ror(x: np.ndarray, shift: np.ndarray, width: int) -> np.ndarray:
    """Cyclically rotate each *width*-bit element of *x* right by *shift*."""
    shift = shift % width
    mask = _U64((1 << width) - 1)
    w = _U64(width)
    return ((x >> shift) | (x << (w - shift))) & mask


def _gray(x: np.ndarray) -> np.ndarray:
    return x ^ (x >> _U64(1))


def _gray_inverse(x: np.ndarray, width: int) -> np.ndarray:
    """Element-wise inverse Gray code on *width*-bit words (prefix XOR)."""
    out = x.copy()
    shift = 1
    while shift < width:
        out ^= out >> _U64(shift)
        shift *= 2
    return out


def _trailing_set_bits(x: np.ndarray) -> np.ndarray:
    """Element-wise count of trailing one-bits.

    ``tsb(x) = log2(lowest set bit of (x + 1))``; the isolated bit is an
    exact power of two, so the float ``log2`` is exact.
    """
    v = x + _U64(1)
    lsb = v & (~v + _U64(1))
    return np.log2(lsb.astype(np.float64)).astype(_U64)


def _entry_point(w: np.ndarray) -> np.ndarray:
    """Element-wise Hamilton entry point ``e(w)`` (``e(0) = 0``)."""
    # 2 * ((w - 1) // 2), with w clamped to >= 1 so the unsigned subtraction
    # cannot underflow (the w == 0 lane is overwritten below).
    base = _U64(2) * ((np.maximum(w, _U64(1)) - _U64(1)) // _U64(2))
    e = _gray(base)
    return np.where(w == 0, _U64(0), e)


def _intra_direction(w: np.ndarray, ndims: int) -> np.ndarray:
    """Element-wise Hamilton intra direction ``d(w)`` modulo *ndims*."""
    even = _trailing_set_bits(np.maximum(w, _U64(1)) - _U64(1)) % _U64(ndims)
    odd = _trailing_set_bits(w) % _U64(ndims)
    d = np.where(w % _U64(2) == 0, even, odd)
    return np.where(w == 0, _U64(0), d)


def ror_batch(x: np.ndarray, shift: np.ndarray, width: int) -> np.ndarray:
    """Element-wise right rotation of *width*-bit words (public alias)."""
    return _ror(x, shift, width)


def rol_batch(x: np.ndarray, shift: np.ndarray, width: int) -> np.ndarray:
    """Element-wise left rotation of *width*-bit words."""
    w = _U64(width)
    return _ror(x, (w - (shift % w)) % w, width)


def entry_point_batch(w: np.ndarray) -> np.ndarray:
    """Element-wise Hamilton entry point ``e(w)`` (public alias)."""
    return _entry_point(w)


def intra_direction_batch(w: np.ndarray, ndims: int) -> np.ndarray:
    """Element-wise Hamilton intra direction ``d(w)`` (public alias)."""
    return _intra_direction(w, ndims)


def update_state_batch(
    e: np.ndarray, d: np.ndarray, w: np.ndarray, ndims: int
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`repro.hilbert.gray.update_state` on node arrays."""
    n64 = _U64(ndims)
    e_next = e ^ rol_batch(_entry_point(w), d + _U64(1), ndims)
    d_next = (d + _intra_direction(w, ndims) + _U64(1)) % n64
    return e_next, d_next


def encode_batch(points: np.ndarray, order: int, levels: int) -> np.ndarray:
    """Return truncated Hilbert keys for a batch of grid points.

    Parameters
    ----------
    points:
        ``(N, D)`` array of non-negative integers, each in
        ``[0, 2^order - 1]``.
    order:
        Bits per coordinate (``K``); 8 for the paper's byte fingerprints.
    levels:
        Number of curve levels to compute.  The returned keys hold the top
        ``levels * D`` bits of the full curve index and must fit in 64 bits
        (``levels * D <= 64``).

    Returns
    -------
    ``(N,)`` ``uint64`` array of truncated curve positions; sorting by this
    key orders points along the Hilbert curve at block granularity
    ``levels * D``.
    """
    points = np.asarray(points)
    if points.ndim != 2:
        raise GeometryError(f"points must be 2-D (N, D), got shape {points.shape}")
    n = points.shape[1]
    if not 1 <= levels <= order:
        raise GeometryError(f"levels must be in [1, {order}], got {levels}")
    if levels * n > 64:
        raise GeometryError(
            f"levels * ndims = {levels * n} exceeds 64 bits; lower `levels`"
        )
    side = 1 << order
    coords = points.astype(np.int64, copy=False)
    if coords.min(initial=0) < 0 or coords.max(initial=0) >= side:
        raise GeometryError(f"coordinates outside [0, {side - 1}]")
    coords = coords.astype(_U64)

    num = points.shape[0]
    h = np.zeros(num, dtype=_U64)
    e = np.zeros(num, dtype=_U64)
    d = np.zeros(num, dtype=_U64)
    n64 = _U64(n)
    for i in range(order - 1, order - 1 - levels, -1):
        bit = _U64(i)
        l = np.zeros(num, dtype=_U64)
        for j in range(n):
            l |= ((coords[:, j] >> bit) & _U64(1)) << _U64(j)
        l = _ror(l ^ e, d + _U64(1), n)
        w = _gray_inverse(l, n)
        h = (h << n64) | w
        e = e ^ _ror(_entry_point(w), n64 - ((d + _U64(1)) % n64), n)
        d = (d + _intra_direction(w, n) + _U64(1)) % n64
    return h
