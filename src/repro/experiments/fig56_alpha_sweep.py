"""Figs. 5 & 6 — statistical query vs. exact ε-range query across α.

The paper's §V-A protocol: 1000 queries ``Q = S + ΔS`` are planted around
real stored fingerprints with i.i.d. ``N(0, σ_Q = 18)`` distortions.  For
each expectation α, both query types run on the same index — the ε-range
radius chosen so the sphere carries the same distortion mass α
(``∫_0^ε p_‖ΔS‖ = α``).  Measured per α:

* Fig. 5: retrieval rate (fraction of queries whose original ``S`` is in
  the results) — near-identical for the two query types;
* Fig. 6: mean search time — the statistical query is 17–132× faster in
  the paper, because the sphere's geometric constraint intersects a huge
  number of p-blocks in high dimension.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..corpus.workload import model_queries
from ..distortion.model import NormalDistortionModel
from ..distortion.radial import radius_for_expectation
from ..index.s3 import S3Index
from ..index.store import FingerprintStore
from ..rng import SeedLike, resolve_rng
from .common import Series, format_table


@dataclass
class AlphaSweepRow:
    """One α of Figs. 5/6: retrieval and time for both query types."""

    alpha: float
    epsilon: float
    stat_retrieval: float
    range_retrieval: float
    stat_seconds: float
    range_seconds: float
    stat_rows_scanned: float
    range_rows_scanned: float

    @property
    def speedup(self) -> float:
        """Fig. 6 headline ratio: range time over statistical time."""
        if self.stat_seconds <= 0:
            return float("inf")
        return self.range_seconds / self.stat_seconds


@dataclass
class Fig56Result:
    """The full statistical-vs-range sweep (Figs. 5 and 6)."""

    sigma_q: float
    db_rows: int
    rows: list[AlphaSweepRow]
    retrieval_stat: Series
    retrieval_range: Series
    time_stat: Series
    time_range: Series

    def render(self) -> str:
        body = [
            (
                r.alpha * 100,
                r.epsilon,
                r.stat_retrieval * 100,
                r.range_retrieval * 100,
                r.stat_seconds * 1e3,
                r.range_seconds * 1e3,
                r.speedup,
            )
            for r in self.rows
        ]
        table = format_table(
            [
                "alpha (%)", "epsilon", "R stat (%)", "R range (%)",
                "t stat (ms)", "t range (ms)", "range/stat",
            ],
            body,
            title=(
                f"Figs. 5 & 6 — statistical vs eps-range "
                f"(sigma_Q={self.sigma_q}, DB={self.db_rows} rows)"
            ),
        )
        from .ascii_plot import render_plot

        fig5 = render_plot(
            [self.retrieval_stat, self.retrieval_range],
            width=56, height=10,
            title="\nFig. 5 — retrieval rate vs alpha",
        )
        fig6 = render_plot(
            [self.time_stat, self.time_range],
            width=56, height=10, logy=True,
            title="\nFig. 6 — mean search time (s) vs alpha (log y)",
        )
        return table + "\n" + fig5 + "\n" + fig6 + (
            "\nExpected shape: comparable retrieval (Fig. 5); statistical "
            "query markedly faster (Fig. 6, paper: 17-132x)."
        )


def run_fig56(
    alphas: Sequence[float] = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95),
    store: FingerprintStore | None = None,
    db_rows: int = 200_000,
    num_queries: int = 200,
    num_range_queries: int | None = 40,
    sigma_q: float = 18.0,
    depth: int | None = 24,
    range_depth: int | None = None,
    seed: SeedLike = 0,
) -> Fig56Result:
    """Reproduce Figs. 5 and 6 at laptop scale.

    *num_range_queries* caps the (much slower) ε-range side; ``None`` runs
    every query through both types.  *store* defaults to a synthetic
    clustered database of *db_rows* rows.

    Both query types run on the same structure at the same partition depth
    (default 24).  The depth matters for the *magnitude* of Fig. 6's gap:
    the number of p-blocks an equal-expectation sphere intersects grows
    exponentially with p (≈800 at p=16 but ≈70,000 at p=28 on a 200k-row
    store), which is precisely the geometric-constraint cost the paper
    attributes the 17-132x slow-down to.
    """
    rng = resolve_rng(seed)
    if store is None:
        store = _synthetic_store(db_rows, rng)
    model = NormalDistortionModel(store.ndims, sigma_q)
    index = S3Index(store, model=model, depth=depth)
    workload = model_queries(store, num_queries, sigma_q, rng=rng)
    n_range = num_queries if num_range_queries is None else min(
        num_range_queries, num_queries
    )

    rows: list[AlphaSweepRow] = []
    r_stat = Series("statistical query")
    r_range = Series("range query")
    t_stat = Series("statistical query")
    t_range = Series("spherical range query")
    for alpha in alphas:
        epsilon = radius_for_expectation(alpha, store.ndims, sigma_q)

        stat_hits = 0
        stat_time = 0.0
        stat_rows = 0.0
        for i in range(num_queries):
            t0 = time.perf_counter()
            result = index.statistical_query(workload.queries[i], alpha)
            stat_time += time.perf_counter() - t0
            stat_rows += result.stats.rows_scanned
            if workload.retrieved(i, result.fingerprints):
                stat_hits += 1

        range_hits = 0
        range_time = 0.0
        range_rows = 0.0
        for i in range(n_range):
            t0 = time.perf_counter()
            result = index.range_query(
                workload.queries[i], epsilon, depth=range_depth
            )
            range_time += time.perf_counter() - t0
            range_rows += result.stats.rows_scanned
            if workload.retrieved(i, result.fingerprints):
                range_hits += 1

        row = AlphaSweepRow(
            alpha=alpha,
            epsilon=epsilon,
            stat_retrieval=stat_hits / num_queries,
            range_retrieval=range_hits / n_range,
            stat_seconds=stat_time / num_queries,
            range_seconds=range_time / n_range,
            stat_rows_scanned=stat_rows / num_queries,
            range_rows_scanned=range_rows / n_range,
        )
        rows.append(row)
        r_stat.add(alpha, row.stat_retrieval)
        r_range.add(alpha, row.range_retrieval)
        t_stat.add(alpha, row.stat_seconds)
        t_range.add(alpha, row.range_seconds)

    return Fig56Result(
        sigma_q=sigma_q,
        db_rows=len(store),
        rows=rows,
        retrieval_stat=r_stat,
        retrieval_range=r_range,
        time_stat=t_stat,
        time_range=t_range,
    )


def _synthetic_store(db_rows: int, rng: np.random.Generator) -> FingerprintStore:
    """Clustered byte points mimicking extracted-fingerprint statistics."""
    num_centers = max(db_rows // 1000, 20)
    centers = rng.integers(25, 231, size=(num_centers, 20))
    assign = rng.integers(0, num_centers, size=db_rows)
    points = np.clip(
        centers[assign] + rng.normal(0.0, 12.0, (db_rows, 20)), 0, 255
    ).astype(np.uint8)
    return FingerprintStore(
        fingerprints=points,
        ids=(np.arange(db_rows, dtype=np.uint32) // 500),
        timecodes=rng.uniform(0, 250.0, db_rows),
    )
