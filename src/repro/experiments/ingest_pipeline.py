"""Pipelined ingest — group commit, background compaction, pinned reads.

The deployment loop of the paper's §V-D setting never stops writing:
every monitored broadcast hour appends fingerprints while queries keep
arriving.  PR 10 rebuilt that write path around three mechanisms, and
this experiment scores each against its acceptance gate:

* **WAL group commit** (:mod:`repro.index.segmented.wal`) — concurrent
  appends coalesce into one ``write + fsync``, so the acknowledged
  durable ingest rate scales with the fsync *batch* size instead of the
  fsync latency.  Measured as sustained acknowledged requests/second
  from ``ingest_threads`` writer threads under ``durability="group"``
  versus the per-request-fsync baseline (``"always"``); the gate
  requires **>= :data:`MIN_GROUP_SPEEDUP` x**.
* **Background seal/compaction**
  (:mod:`repro.index.segmented.maintenance`) — the heavy jobs run on
  the maintenance worker while queries scan pinned snapshot views.  The
  storm phase seeds a multi-segment archive plus an unsealed memtable
  tail, then asks the worker to seal and (policy-driven, over the cap)
  merge nearly every segment while the foreground thread sweeps a fixed
  query set.  The gate requires the storm p99 within
  **:data:`MAX_P99_RATIO` x** of the quiesced p99 of the same sweeps.
* **Snapshot-isolated reads** — every sweep during the storm must
  return exactly the quiesced answer.  Seals and compactions re-sort
  rows along the Hilbert curve, so physical row numbers legitimately
  move; answers are compared as multisets of
  ``(id, timecode, fingerprint bytes)``, the paper-level contract (the
  same records match, byte for byte).

Results serialise to ``BENCH_ingest_pipeline.json`` (schema 1, shared
host block) — the machine-readable record CI's ``ingest-smoke`` job and
later PRs regress against.
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from ..distortion.model import NormalDistortionModel
from ..index.segmented import (
    CompactionPolicy,
    MaintenanceConfig,
    SegmentedS3Index,
)
from ..rng import SeedLike, resolve_rng
from ..serve.metrics import percentile
from .common import format_table, host_block

SCHEMA_VERSION = 1

NDIMS = 20

#: Acceptance gate: group commit must lift sustained acknowledged
#: ingest throughput by at least this factor over per-request fsync.
MIN_GROUP_SPEEDUP = 3.0

#: Acceptance gate: query p99 during the forced compaction storm must
#: stay within this factor of the quiesced p99.
MAX_P99_RATIO = 2.0

#: Per-record WAL/store footprint used to size the compaction throttle
#: (fingerprint bytes + id + timecode — matches the maintenance
#: worker's own rate-limit accounting).
_ROW_BYTES = NDIMS + 4 + 8


@dataclass
class IngestPipelineResult:
    """Throughput, latency-under-storm and equivalence of one run."""

    db_rows: int
    ingest_threads: int
    request_rows: int
    requests_per_thread: int
    num_queries: int
    storm_sweeps: int
    alpha: float
    sigma: float
    depth: int
    always_seconds: float
    group_seconds: float
    group_commits: int
    group_appends: int
    quiesced_p50_ms: float
    quiesced_p99_ms: float
    storm_p50_ms: float
    storm_p99_ms: float
    storm_compactions: int
    storm_seals: int
    bit_identical: bool

    @property
    def total_requests(self) -> int:
        return self.ingest_threads * self.requests_per_thread

    @property
    def always_qps(self) -> float:
        """Acknowledged ingest requests/second under per-append fsync."""
        return self.total_requests / max(self.always_seconds, 1e-9)

    @property
    def group_qps(self) -> float:
        """Acknowledged ingest requests/second under group commit."""
        return self.total_requests / max(self.group_seconds, 1e-9)

    @property
    def group_speedup(self) -> float:
        return self.group_qps / max(self.always_qps, 1e-9)

    @property
    def mean_group_size(self) -> float:
        """Appends acknowledged per fsync under group commit."""
        if self.group_commits == 0:
            return 0.0
        return self.group_appends / self.group_commits

    @property
    def p99_ratio(self) -> float:
        return self.storm_p99_ms / max(self.quiesced_p99_ms, 1e-9)

    def gate_status(self) -> str:
        failures = []
        if self.group_speedup < MIN_GROUP_SPEEDUP:
            failures.append(
                f"group-commit speedup {self.group_speedup:.1f}x < "
                f"{MIN_GROUP_SPEEDUP:.0f}x"
            )
        if self.p99_ratio > MAX_P99_RATIO:
            failures.append(
                f"storm p99 {self.p99_ratio:.2f}x quiesced > "
                f"{MAX_P99_RATIO:.0f}x"
            )
        if not self.bit_identical:
            failures.append("storm results diverge from quiesced")
        return "passed" if not failures else "failed (" + "; ".join(
            failures
        ) + ")"

    def render(self) -> str:
        durability = format_table(
            ["durability", "total s", "acked req/s", "rows/s"],
            [
                ("always (fsync per append)", self.always_seconds,
                 self.always_qps, self.always_qps * self.request_rows),
                ("group (coalesced fsync)", self.group_seconds,
                 self.group_qps, self.group_qps * self.request_rows),
            ],
            title=(
                f"WAL group commit — {self.ingest_threads} writers x "
                f"{self.requests_per_thread} requests x "
                f"{self.request_rows} rows"
            ),
        )
        storm = format_table(
            ["phase", "p50 ms", "p99 ms"],
            [
                ("quiesced", self.quiesced_p50_ms, self.quiesced_p99_ms),
                ("compaction storm", self.storm_p50_ms, self.storm_p99_ms),
            ],
            title=(
                f"Query latency under background maintenance — "
                f"{self.storm_sweeps} sweeps x {self.num_queries} queries "
                f"racing {self.storm_seals} background seal(s) and "
                f"{self.storm_compactions} compaction(s)"
            ),
        )
        return (
            durability
            + f"\ngroup speedup: {self.group_speedup:.1f}x "
            f"(mean {self.mean_group_size:.1f} appends/fsync)\n\n"
            + storm
            + f"\np99 ratio: {self.p99_ratio:.2f}x; "
            f"bit-identical to quiesced: {self.bit_identical}\n"
            f"gate: {self.gate_status()}"
        )

    def to_json(self) -> dict:
        return {
            "config": {
                "db_rows": self.db_rows,
                "ingest_threads": self.ingest_threads,
                "request_rows": self.request_rows,
                "requests_per_thread": self.requests_per_thread,
                "num_queries": self.num_queries,
                "storm_sweeps": self.storm_sweeps,
                "alpha": self.alpha,
                "sigma": self.sigma,
                "ndims": NDIMS,
                "depth": self.depth,
            },
            "timing": {
                "always_seconds": self.always_seconds,
                "group_seconds": self.group_seconds,
                "quiesced_p50_ms": self.quiesced_p50_ms,
                "quiesced_p99_ms": self.quiesced_p99_ms,
                "storm_p50_ms": self.storm_p50_ms,
                "storm_p99_ms": self.storm_p99_ms,
            },
            "throughput": {
                "always_qps": self.always_qps,
                "group_qps": self.group_qps,
                "group_speedup": self.group_speedup,
                "min_group_speedup": MIN_GROUP_SPEEDUP,
                "group_commits": self.group_commits,
                "group_appends": self.group_appends,
                "mean_group_size": self.mean_group_size,
            },
            "storm": {
                "sweeps": self.storm_sweeps,
                "compactions": self.storm_compactions,
                "seals": self.storm_seals,
                "p99_ratio": self.p99_ratio,
                "max_p99_ratio": MAX_P99_RATIO,
            },
            "equivalence": {"bit_identical": self.bit_identical},
            "gate": self.gate_status(),
        }


def write_ingest_pipeline_json(result: IngestPipelineResult, path) -> Path:
    """Write the machine-readable run record (schema 1)."""
    path = Path(path)
    payload = {
        "benchmark": "ingest_pipeline",
        "schema_version": SCHEMA_VERSION,
        "host": host_block(),
        **result.to_json(),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def _make_batches(
    total_rows: int, request_rows: int, rng: np.random.Generator
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Pre-generate ingest request payloads (clustered fingerprints)."""
    num_centers = max(total_rows // 1000, 16)
    centers = rng.integers(25, 231, size=(num_centers, NDIMS)).astype(
        np.float64
    )
    batches = []
    offset = 0
    while offset < total_rows:
        rows = min(request_rows, total_rows - offset)
        assign = rng.integers(0, num_centers, size=rows)
        fingerprints = np.clip(
            centers[assign] + rng.normal(0.0, 12.0, size=(rows, NDIMS)),
            0.0, 255.0,
        ).astype(np.uint8)
        ids = rng.integers(0, 64, size=rows).astype(np.uint32)
        timecodes = np.arange(offset, offset + rows, dtype=np.float64)
        batches.append((fingerprints, ids, timecodes))
        offset += rows
    return batches


def _timed_concurrent_ingest(
    index: SegmentedS3Index,
    batches: list,
    ingest_threads: int,
) -> float:
    """Drive *batches* through ``index.add`` from many writer threads.

    Round-robin assignment, a barrier start, and a join — the measured
    window covers exactly the acknowledged (WAL-durable) appends.
    """
    per_thread = [batches[i::ingest_threads] for i in range(ingest_threads)]
    barrier = threading.Barrier(ingest_threads + 1)
    errors: list[BaseException] = []

    def _writer(work):
        barrier.wait()
        try:
            for fingerprints, ids, timecodes in work:
                index.add(fingerprints, ids, timecodes)
        except BaseException as exc:  # surfaced after join
            errors.append(exc)

    threads = [
        threading.Thread(target=_writer, args=(work,), daemon=True)
        for work in per_thread
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    seconds = time.perf_counter() - t0
    if errors:
        raise errors[0]
    return seconds


def _result_key(result) -> tuple:
    """Order-free identity of one query's answer.

    Seals and compactions legitimately renumber physical rows (the new
    segment is re-sorted along the curve), so equivalence is the
    multiset of matched records, each pinned down to the byte.
    """
    records = sorted(
        (int(i), float(t), np.asarray(f, dtype=np.uint8).tobytes())
        for i, t, f in zip(
            result.ids, result.timecodes, result.fingerprints
        )
    )
    return tuple(records)


def run_ingest_pipeline(
    db_rows: int = 12_000,
    ingest_threads: int = 24,
    request_rows: int = 8,
    requests_per_thread: int = 80,
    num_queries: int = 24,
    storm_sweeps: int = 6,
    storm_segments: int = 8,
    alpha: float = 0.8,
    sigma: float = 18.0,
    seed: SeedLike = 0,
    directory: Optional[Path] = None,
) -> IngestPipelineResult:
    """Score the pipelined ingest path against its three gates.

    Phase 1 (durability): ``ingest_threads`` writers push identical
    request streams through ``durability="always"`` and ``"group"``
    indexes; both acknowledge only WAL-durable appends, so the ratio is
    pure group-commit effect.  Phase 2 (storm): an archive of
    ``storm_segments`` sealed segments plus an unsealed memtable tail
    answers ``storm_sweeps`` sweeps of a fixed query set while the
    maintenance worker seals the tail and merges the over-cap segment
    set (throttled so the churn spans the sweeps); per-query latencies
    and answers are compared against quiesced sweeps over the same
    records.
    """
    rng = resolve_rng(seed)
    with tempfile.TemporaryDirectory(
        prefix="s3-ingest-pipe-", dir=directory
    ) as tmp:
        tmp = Path(tmp)
        model = NormalDistortionModel(NDIMS, sigma)
        total_requests = ingest_threads * requests_per_thread
        batches = _make_batches(
            total_requests * request_rows, request_rows, rng
        )

        # --- phase 1: group commit vs per-append fsync ----------------
        timings = {}
        group_commits = group_appends = 0
        for mode in ("always", "group"):
            with SegmentedS3Index.create(
                tmp / f"wal-{mode}", ndims=NDIMS, model=model,
                flush_rows=10 ** 9, auto_compact=False, durability=mode,
            ) as index:
                timings[mode] = _timed_concurrent_ingest(
                    index, batches, ingest_threads
                )
                if mode == "group":
                    wal_stats = index.ingest_info()["wal"]
                    group_commits = wal_stats["group_commits"]
                    group_appends = wal_stats["appends"]

        # --- phase 2: queries racing background seal + compaction -----
        # storm_segments sealed segments (flush_rows-sized adds seal
        # inline — maintenance is not running yet) plus a half-batch
        # memtable tail left unsealed for the worker.  max_segments=2
        # puts the set far over the cap, so one request_compact merges
        # nearly everything in a single big policy-driven step.
        seg_rows = max(db_rows // storm_segments, 64)
        storm_batches = _make_batches(
            seg_rows * storm_segments + seg_rows // 2, seg_rows, rng
        )
        index = SegmentedS3Index.create(
            tmp / "storm", ndims=NDIMS, model=model,
            flush_rows=seg_rows,
            policy=CompactionPolicy(max_segments=2),
            auto_compact=False, durability="async",
        )
        for fingerprints, ids, timecodes in storm_batches:
            index.add(fingerprints, ids, timecodes)
        depth = index.depth

        all_fp = np.concatenate([b[0] for b in storm_batches])
        picks = rng.integers(0, all_fp.shape[0], size=num_queries)
        queries = np.clip(
            all_fp[picks].astype(np.float64)
            + model.sample(num_queries, rng=rng),
            0.0, 255.0,
        )

        def _sweep() -> tuple[list, list[float]]:
            answers, latencies = [], []
            for q in queries:
                index.reset_threshold_cache()
                t0 = time.perf_counter()
                answers.append(index.statistical_query(q, alpha))
                latencies.append(time.perf_counter() - t0)
            return answers, latencies

        # Quiesced reference: same records, no maintenance running.
        quiesced, quiesced_lat = _sweep()
        for _ in range(storm_sweeps - 1):
            quiesced_lat.extend(_sweep()[1])
        quiesced_keys = [_result_key(a) for a in quiesced]

        # Throttle the worker's big merge to roughly span the sweeps,
        # so the foreground queries genuinely race an in-flight
        # compaction rather than sampling before/after it.
        quiesced_seconds = sum(quiesced_lat)
        merge_mb = len(index) * _ROW_BYTES / 1e6
        rate = merge_mb / max(quiesced_seconds, 1e-3)
        worker = index.start_maintenance(
            MaintenanceConfig(compact_mb_per_s=rate)
        )
        worker.request_seal()
        worker.request_compact()

        storm_lat: list[float] = []
        bit_identical = True
        for _ in range(storm_sweeps):
            answers, lat = _sweep()
            storm_lat.extend(lat)
            bit_identical = bit_identical and all(
                _result_key(a) == k for a, k in zip(answers, quiesced_keys)
            )
        worker.drain()
        seals = worker.seals
        compactions = worker.compactions
        index.close()

        return IngestPipelineResult(
            db_rows=len(all_fp),
            ingest_threads=ingest_threads,
            request_rows=request_rows,
            requests_per_thread=requests_per_thread,
            num_queries=num_queries,
            storm_sweeps=storm_sweeps,
            alpha=alpha,
            sigma=sigma,
            depth=depth,
            always_seconds=timings["always"],
            group_seconds=timings["group"],
            group_commits=group_commits,
            group_appends=group_appends,
            quiesced_p50_ms=percentile(quiesced_lat, 50.0) * 1e3,
            quiesced_p99_ms=percentile(quiesced_lat, 99.0) * 1e3,
            storm_p50_ms=percentile(storm_lat, 50.0) * 1e3,
            storm_p99_ms=percentile(storm_lat, 99.0) * 1e3,
            storm_compactions=compactions,
            storm_seals=seals,
            bit_identical=bit_identical,
        )
