"""Detection service — cross-client micro-batching vs one-per-query.

The serving question PR 2 left open: the batched engine amortises work
across one caller's frames, but the deployed traffic shape is many
independent monitoring clients, each sending one statistical query per
key-frame.  The micro-batcher (:mod:`repro.serve.batcher`) merges those
concurrent requests into shared engine calls; this experiment measures
what that buys end to end — sockets, framing and demux included — by
serving the same workload twice:

* **unbatched** — ``max_batch=1, max_wait_ms=0``: every request drains
  alone, the one-request-per-query serving baseline;
* **batched** — requests landing inside the ``max_wait_ms`` window share
  one coalesced engine call (fill approaches the number of concurrent
  clients).

Both runs serve real concurrent clients (:class:`~repro.serve.client
.ServeClient` on threads) against a real server
(:class:`~repro.serve.runner.ServerThread`).  The batched run's served
results are verified **bit-identical** to solo in-process deterministic
``statistical_query`` calls.  Results serialise to ``BENCH_serve.json``
(schema in ``docs/serving.md``).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from ..corpus.builder import build_reference_corpus
from ..corpus.filler import scale_store
from ..distortion.model import NormalDistortionModel
from ..index.s3 import S3Index
from ..rng import SeedLike, resolve_rng
from ..serve.client import ServeClient
from ..serve.runner import ServerThread
from ..serve.server import ServeConfig
from .common import format_table, host_block

SCHEMA_VERSION = 2


@dataclass
class ServeBenchResult:
    """Timings + equivalence checks of one serving benchmark run."""

    db_rows: int
    num_clients: int
    queries_per_client: int
    max_batch: int
    max_wait_ms: float
    alpha: float
    depth: int
    sigma: float
    ndims: int
    batched_seconds: float
    unbatched_seconds: float
    batched_batches: int
    batched_mean_fill: float
    shed: int
    bit_identical_results: bool

    @property
    def total_queries(self) -> int:
        return self.num_clients * self.queries_per_client

    @property
    def speedup(self) -> float:
        """Batched serving over one-request-per-query serving."""
        return self.unbatched_seconds / max(self.batched_seconds, 1e-9)

    @property
    def batched_qps(self) -> float:
        return self.total_queries / max(self.batched_seconds, 1e-9)

    @property
    def unbatched_qps(self) -> float:
        return self.total_queries / max(self.unbatched_seconds, 1e-9)

    def render(self) -> str:
        table = format_table(
            ["serving mode", "total s", "queries/s", "speedup"],
            [
                ("one request per query", self.unbatched_seconds,
                 self.unbatched_qps, "1.00x"),
                (f"micro-batched (<= {self.max_batch}, "
                 f"{self.max_wait_ms} ms window)",
                 self.batched_seconds, self.batched_qps,
                 f"{self.speedup:.2f}x"),
            ],
            title=(
                f"Detection service — {self.num_clients} concurrent "
                f"clients x {self.queries_per_client} queries against "
                f"{self.db_rows} fingerprints (alpha={self.alpha})"
            ),
        )
        return (
            table
            + f"\nmean batch fill: {self.batched_mean_fill:.1f} "
            f"fingerprints/engine call over {self.batched_batches} calls "
            f"(shed: {self.shed})\n"
            f"bit-identical to solo in-process queries: "
            f"{self.bit_identical_results}"
        )

    def to_json(self) -> dict:
        """The machine-readable record (see docs/serving.md)."""
        return {
            "benchmark": "serve",
            "schema_version": SCHEMA_VERSION,
            "host": host_block(),
            "config": {
                "db_rows": self.db_rows,
                "num_clients": self.num_clients,
                "queries_per_client": self.queries_per_client,
                "max_batch": self.max_batch,
                "max_wait_ms": self.max_wait_ms,
                "alpha": self.alpha,
                "depth": self.depth,
                "sigma": self.sigma,
                "ndims": self.ndims,
            },
            "timing": {
                "unbatched_seconds": self.unbatched_seconds,
                "batched_seconds": self.batched_seconds,
                "unbatched_qps": self.unbatched_qps,
                "batched_qps": self.batched_qps,
                "speedup": self.speedup,
            },
            "batching": {
                "batches": self.batched_batches,
                "mean_fill": self.batched_mean_fill,
                "shed": self.shed,
            },
            "equivalence": {
                "bit_identical_results": self.bit_identical_results,
            },
        }

    def write_json(self, path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return path


def _serve_workloads(
    index: S3Index,
    workloads: list[np.ndarray],
    config: ServeConfig,
    collect: bool,
) -> tuple[float, dict, Optional[list[list]]]:
    """Serve every client workload concurrently; return (seconds, stats).

    Each client thread opens its own connection and issues its queries
    one request at a time — the paper's monitoring-client traffic shape.
    With *collect*, served results (with fingerprints) are returned for
    the equivalence check.
    """
    served: list[Optional[list]] = [None] * len(workloads)
    errors: list[BaseException] = []
    barrier = threading.Barrier(len(workloads) + 1)

    with ServerThread(index, config) as server:
        def run_client(i: int) -> None:
            try:
                with ServeClient(
                    port=server.port, timeout=60.0, backoff=0.002
                ) as client:
                    barrier.wait()
                    results = []
                    for query in workloads[i]:
                        (result,) = client.query(
                            query, include_fingerprints=collect
                        )
                        if collect:
                            results.append(result)
                    served[i] = results
            except BaseException as exc:
                errors.append(exc)
                barrier.abort()

        threads = [
            threading.Thread(target=run_client, args=(i,))
            for i in range(len(workloads))
        ]
        for t in threads:
            t.start()
        barrier.wait()
        t0 = time.perf_counter()
        for t in threads:
            t.join()
        seconds = time.perf_counter() - t0
        stats = server.server.stats_snapshot()
    if errors:
        raise errors[0]
    return seconds, stats, served if collect else None


def run_serve_bench(
    db_rows: int = 50_000,
    num_clients: int = 16,
    queries_per_client: int = 16,
    max_batch: int = 32,
    max_wait_ms: float = 2.0,
    alpha: float = 0.8,
    sigma: float = 10.0,
    seed: SeedLike = 0,
    json_path: Optional[Path] = None,
) -> ServeBenchResult:
    """Benchmark micro-batched serving against one-request-per-query.

    Builds a *db_rows* synthetic corpus, gives each of *num_clients*
    concurrent clients a run of consecutive referenced key-frames
    distorted under the model, and serves the whole workload twice —
    micro-batched and unbatched — over real sockets.
    """
    rng = resolve_rng(seed)
    corpus = build_reference_corpus(8, 120, seed=rng)
    store = scale_store(corpus.store, db_rows, rng=rng)
    model = NormalDistortionModel(store.ndims, sigma)
    index = S3Index(store, model=model)

    # Per-client candidate clips: consecutive referenced key-frames,
    # distorted by the model (the coalescing-friendly monitoring shape).
    workloads = []
    for c in range(num_clients):
        base_rows = (
            np.arange(queries_per_client) + c * queries_per_client
        ) % len(corpus.store)
        workloads.append(np.clip(
            corpus.store.fingerprints[base_rows].astype(np.float64)
            + model.sample(queries_per_client, rng=rng),
            0.0, 255.0,
        ))

    def config(batched: bool) -> ServeConfig:
        return ServeConfig(
            port=0,
            alpha=alpha,
            max_batch=max_batch if batched else 1,
            max_wait_ms=max_wait_ms if batched else 0.0,
            queue_limit=max(1024, num_clients * queries_per_client),
        )

    unbatched_seconds, _, _ = _serve_workloads(
        index, workloads, config(batched=False), collect=False
    )
    batched_seconds, stats, served = _serve_workloads(
        index, workloads, config(batched=True), collect=True
    )

    bit_identical = True
    for workload, results in zip(workloads, served):
        for query, result in zip(workload, results):
            index.reset_threshold_cache()
            solo = index.statistical_query(query, alpha)
            if not (
                np.array_equal(solo.rows, result.rows)
                and np.array_equal(solo.ids, result.ids)
                and np.array_equal(solo.timecodes, result.timecodes)
                and np.array_equal(solo.fingerprints, result.fingerprints)
            ):
                bit_identical = False

    result = ServeBenchResult(
        db_rows=len(store),
        num_clients=num_clients,
        queries_per_client=queries_per_client,
        max_batch=max_batch,
        max_wait_ms=max_wait_ms,
        alpha=alpha,
        depth=index.depth,
        sigma=sigma,
        ndims=store.ndims,
        batched_seconds=batched_seconds,
        unbatched_seconds=unbatched_seconds,
        batched_batches=stats["batcher"]["batches"],
        batched_mean_fill=stats["batcher"]["mean_fill"],
        shed=stats["batcher"]["shed"],
        bit_identical_results=bit_identical,
    )
    if json_path is not None:
        result.write_json(json_path)
    return result
