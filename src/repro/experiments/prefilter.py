"""Segment-sketch pre-filter — skip rate and wall-clock, bit-identity.

Every sealed segment of a :class:`~repro.index.segmented.SegmentedS3Index`
carries an always-resident sketch (coarse Hilbert-key occupancy bitmap +
per-block component bounds, see :mod:`repro.index.segmented.sketch`).  A
query's selected curve prefixes are intersected with each segment's
bitmap *before* the segment's store, mmap or scan-pool route is touched;
segments (or block runs) the sketch proves empty are skipped outright.
The skip is admissible — an empty prefix contributes no rows, so the
merged results are bit-identical with the pre-filter off (the property
verified both here and in ``tests/index/test_prefilter.py``).

The workload models the operational archive: each day's broadcast seals
its own segment, so segments are *temporally clustered* — their key
populations cover distinct slices of the curve — and any single
key-frame query intersects only a few of them.  We synthesise that
directly: each segment's fingerprints cluster around a per-segment
centroid, queries are distorted members of randomly chosen segments.

Results serialise to ``BENCH_prefilter.json`` (one record per corpus
scale) so later PRs have a skip-rate/latency trajectory to regress
against.
"""

from __future__ import annotations

import json
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from ..distortion.model import NormalDistortionModel
from ..index.batch import BatchQueryExecutor
from ..index.options import QueryOptions
from ..index.segmented import CompactionPolicy, SegmentedS3Index
from ..rng import SeedLike, resolve_rng
from .common import format_table, host_block

SCHEMA_VERSION = 2

#: Fingerprint dimension of the synthetic archive (matches the paper's
#: 20-dimensional local fingerprints).
NDIMS = 20


@dataclass
class PrefilterBenchResult:
    """Skip rates, timings and equivalence checks of one scale."""

    db_rows: int
    num_segments: int
    num_queries: int
    batch_size: int
    alpha: float
    epsilon: float
    sigma: float
    ndims: int
    depth: int
    sketch_depth: int
    block_rows: int
    resident_bytes: int
    build_seconds: float
    # statistical queries (occupancy pruning)
    on_seconds: float
    off_seconds: float
    segments_skipped: int
    blocks_skipped: int
    bit_identical: bool
    # ε-range queries (occupancy + per-block bounds pruning)
    range_on_seconds: float
    range_off_seconds: float
    range_segments_skipped: int
    range_bit_identical: bool

    @property
    def segment_skip_rate(self) -> float:
        """Skipped (query, segment) pairs over all scannable pairs."""
        total = self.num_queries * self.num_segments
        return self.segments_skipped / max(total, 1)

    @property
    def range_segment_skip_rate(self) -> float:
        total = self.num_queries * self.num_segments
        return self.range_segments_skipped / max(total, 1)

    @property
    def speedup(self) -> float:
        """Statistical-query wall-clock, pre-filter on over off."""
        return self.off_seconds / max(self.on_seconds, 1e-9)

    @property
    def range_speedup(self) -> float:
        return self.range_off_seconds / max(self.range_on_seconds, 1e-9)

    def render(self) -> str:
        table = format_table(
            ["query kind", "off s", "on s", "speedup", "skip rate"],
            [
                ("statistical", self.off_seconds, self.on_seconds,
                 f"{self.speedup:.2f}x",
                 f"{self.segment_skip_rate:.1%}"),
                ("range", self.range_off_seconds, self.range_on_seconds,
                 f"{self.range_speedup:.2f}x",
                 f"{self.range_segment_skip_rate:.1%}"),
            ],
            title=(
                f"Segment-sketch pre-filter — {self.num_queries} queries, "
                f"{self.db_rows} rows / {self.num_segments} segments "
                f"(alpha={self.alpha}, sketch depth={self.sketch_depth})"
            ),
        )
        return (
            table
            + f"\nskipped: {self.segments_skipped} (query, segment) pairs "
            f"({self.segment_skip_rate:.1%}), {self.blocks_skipped} "
            "selected prefixes\n"
            f"sketches resident: {self.resident_bytes / 1e3:.1f} kB for "
            f"{self.num_segments} segments\n"
            f"bit-identical: statistical={self.bit_identical} "
            f"range={self.range_bit_identical}"
        )

    def to_json(self) -> dict:
        return {
            "config": {
                "db_rows": self.db_rows,
                "num_segments": self.num_segments,
                "num_queries": self.num_queries,
                "batch_size": self.batch_size,
                "alpha": self.alpha,
                "epsilon": self.epsilon,
                "sigma": self.sigma,
                "ndims": self.ndims,
                "depth": self.depth,
                "sketch_depth": self.sketch_depth,
                "block_rows": self.block_rows,
            },
            "sketches": {"resident_bytes": self.resident_bytes},
            "build_seconds": self.build_seconds,
            "statistical": {
                "off_seconds": self.off_seconds,
                "on_seconds": self.on_seconds,
                "speedup": self.speedup,
                "segments_skipped": self.segments_skipped,
                "blocks_skipped": self.blocks_skipped,
                "segment_skip_rate": self.segment_skip_rate,
                "bit_identical": self.bit_identical,
            },
            "range": {
                "off_seconds": self.range_off_seconds,
                "on_seconds": self.range_on_seconds,
                "speedup": self.range_speedup,
                "segments_skipped": self.range_segments_skipped,
                "segment_skip_rate": self.range_segment_skip_rate,
                "bit_identical": self.range_bit_identical,
            },
        }


def write_prefilter_json(
    results: Sequence[PrefilterBenchResult], path
) -> Path:
    """Write the suite record (one entry per corpus scale)."""
    path = Path(path)
    payload = {
        "benchmark": "prefilter",
        "schema_version": SCHEMA_VERSION,
        "host": host_block(),
        "runs": [r.to_json() for r in results],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def _build_archive(
    directory: Path,
    db_rows: int,
    num_segments: int,
    sigma: float,
    rng: np.random.Generator,
) -> tuple[SegmentedS3Index, np.ndarray]:
    """A segmented archive of *num_segments* clustered sealed segments.

    Returns the open index and the ``(num_segments, NDIMS)`` centroid
    matrix the queries are drawn around.
    """
    model = NormalDistortionModel(NDIMS, sigma)
    index = SegmentedS3Index.create(
        directory,
        ndims=NDIMS,
        model=model,
        flush_rows=db_rows + 1,  # seal manually, one flush per segment
        policy=CompactionPolicy(max_segments=2 * num_segments + 4),
        auto_compact=False,
        sync=False,
    )
    centroids = rng.uniform(40.0, 216.0, size=(num_segments, NDIMS))
    per_segment = db_rows // num_segments
    for seg in range(num_segments):
        rows = per_segment + (db_rows % num_segments if seg == 0 else 0)
        fingerprints = np.clip(
            rng.normal(centroids[seg], 12.0, size=(rows, NDIMS)),
            0.0, 255.0,
        ).astype(np.uint8)
        index.add(
            fingerprints,
            np.full(rows, seg, dtype=np.uint32),
            np.arange(rows, dtype=np.float64),
        )
        index.flush()
    return index, centroids


def _results_equal(a, b) -> bool:
    return (
        np.array_equal(a.rows, b.rows)
        and np.array_equal(a.ids, b.ids)
        and np.array_equal(a.timecodes, b.timecodes)
        and np.array_equal(a.fingerprints, b.fingerprints)
    )


def run_prefilter(
    db_rows: int = 1_000_000,
    num_segments: int = 64,
    num_queries: int = 64,
    batch_size: int = 32,
    alpha: float = 0.8,
    epsilon: float = 60.0,
    sigma: float = 10.0,
    seed: SeedLike = 0,
    directory: Optional[Path] = None,
) -> PrefilterBenchResult:
    """Measure the pre-filter at one corpus scale.

    Runs the batched statistical engine and the solo ε-range path with
    the pre-filter off and on, verifies bit-identity, and reports skip
    rates per (query, segment) pair — the unit the engine counts a skip
    in, whether a whole segment's selection pruned to nothing or its
    surviving block runs were bounds-pruned to zero.
    """
    rng = resolve_rng(seed)
    with tempfile.TemporaryDirectory(dir=directory) as tmp:
        t0 = time.perf_counter()
        index, centroids = _build_archive(
            Path(tmp) / "archive", db_rows, num_segments, sigma, rng
        )
        build_seconds = time.perf_counter() - t0
        with index:
            model = index.model
            home = rng.integers(0, num_segments, size=num_queries)
            queries = np.clip(
                centroids[home] + model.sample(num_queries, rng=rng),
                0.0, 255.0,
            )

            info = index.prefilter_info()
            timings: dict[str, float] = {}
            stats: dict[str, tuple[int, int]] = {}
            results: dict[str, list] = {}
            for mode in ("off", "on"):
                opts = QueryOptions(
                    alpha=alpha, batch_size=batch_size, prefilter=mode
                )
                with BatchQueryExecutor(index, options=opts) as executor:
                    t0 = time.perf_counter()
                    out = []
                    for start in range(0, num_queries, batch_size):
                        index.reset_threshold_cache()
                        out.extend(executor.query_batch(
                            queries[start:start + batch_size]
                        ))
                    timings[mode] = time.perf_counter() - t0
                    stats[mode] = (
                        executor.stats.segments_skipped,
                        executor.stats.blocks_skipped,
                    )
                    results[mode] = out
            bit_identical = all(
                _results_equal(a, b)
                for a, b in zip(results["off"], results["on"])
            )

            range_timings: dict[str, float] = {}
            range_skipped: dict[str, int] = {}
            range_results: dict[str, list] = {}
            for mode in ("off", "on"):
                opts = QueryOptions(alpha=alpha, prefilter=mode)
                t0 = time.perf_counter()
                out, skipped = [], 0
                for q in queries:
                    result = index.range_query(q, epsilon, options=opts)
                    skipped += result.stats.segments_skipped
                    out.append(result)
                range_timings[mode] = time.perf_counter() - t0
                range_skipped[mode] = skipped
                range_results[mode] = out
            range_bit_identical = all(
                _results_equal(a, b)
                for a, b in zip(range_results["off"], range_results["on"])
            )

            return PrefilterBenchResult(
                db_rows=len(index),
                num_segments=index.num_segments,
                num_queries=num_queries,
                batch_size=batch_size,
                alpha=alpha,
                epsilon=epsilon,
                sigma=sigma,
                ndims=NDIMS,
                depth=index.depth,
                sketch_depth=info["depth"],
                block_rows=info["block_rows"],
                resident_bytes=info["resident_bytes"],
                build_seconds=build_seconds,
                on_seconds=timings["on"],
                off_seconds=timings["off"],
                segments_skipped=stats["on"][0],
                blocks_skipped=stats["on"][1],
                bit_identical=bit_identical,
                range_on_seconds=range_timings["on"],
                range_off_seconds=range_timings["off"],
                range_segments_skipped=range_skipped["on"],
                range_bit_identical=range_bit_identical,
            )
