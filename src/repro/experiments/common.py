"""Shared result containers and rendering for the experiment modules.

Every experiment module (one per paper table/figure) produces a structured
result object holding the series the paper plots plus a ``render()`` method
printing them as aligned text tables — the form the benchmark harness
reports them in.
"""

from __future__ import annotations

import os
import platform
from dataclasses import dataclass, field
from typing import Sequence


def host_block(include_calibration: bool = True) -> dict:
    """The shared ``host`` block every ``BENCH_*.json`` record embeds.

    Benchmark numbers are meaningless without the host that produced
    them: a 1-core container's "speedup" and a 16-core bare-metal run
    must be distinguishable from the JSON alone.  Includes the measured
    planner calibration (see :mod:`repro.index.planner`) so readers can
    reconstruct *why* the executor planner chose what it chose.
    """
    from ..index.parallel import shared_memory_available

    block = {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "shared_memory": shared_memory_available(),
    }
    if include_calibration:
        try:
            from ..index.planner import get_calibration

            block["calibration"] = get_calibration().to_json()
        except Exception:  # pragma: no cover - defensive
            block["calibration"] = None
    return block


@dataclass
class Series:
    """One named data series (a curve of a paper figure)."""

    name: str
    x: list[float] = field(default_factory=list)
    y: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one (x, y) point."""
        self.x.append(float(x))
        self.y.append(float(y))

    def __len__(self) -> int:
        return len(self.x)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in cells)) if cells
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)
