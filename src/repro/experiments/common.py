"""Shared result containers and rendering for the experiment modules.

Every experiment module (one per paper table/figure) produces a structured
result object holding the series the paper plots plus a ``render()`` method
printing them as aligned text tables — the form the benchmark harness
reports them in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class Series:
    """One named data series (a curve of a paper figure)."""

    name: str
    x: list[float] = field(default_factory=list)
    y: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one (x, y) point."""
        self.x.append(float(x))
        self.y.append(float(y))

    def __len__(self) -> int:
        return len(self.x)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in cells)) if cells
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)
