"""Tiered storage — measured cold bytes vs the eq.-(5) disk model.

The paper's pseudo-disk experiment (§IV-B) predicts the loading cost of
a batch with ``T_tot = T + T_load / N_sig``: block selection is free,
and the bytes actually read are the selected sections times the row
stride.  The tiered-storage subsystem (:mod:`repro.storage`) makes that
model physical — cold segments live in a blob backend, and a batch
fetches exactly the coalesced row ranges its block selection chose, in
the same ``ndims + 4 + 8`` bytes/row units the pseudo-disk accounting
uses (:func:`repro.storage.coldseg.row_bytes`).

This experiment closes the loop between the two:

* build a segmented archive, answer a query batch **all-RAM** (the
  reference results and baseline timing);
* reopen it with a RAM budget below 25% of the archive so most
  segments demote to a real file-backed blob store, answer the same
  batch through the batched engine, and require **bit-identical**
  results;
* predict the batch's load volume from pre-demotion copies of the
  segments that went cold, and gate the measured backend bytes within
  :data:`MODEL_TOLERANCE` of the prediction.

The prediction comes in two readings of the same model.  The gated one
is the *fine-granularity limit* of eq. (5): stage-1 block selection
over each cold segment (run through the pseudo-disk's own layout and
threshold machinery, independent of the tier manager's sidecar path),
its per-query row ranges merged into the batch union, times the
``ndims + 4 + 8`` row stride — the bytes a disk that can seek to
arbitrary rows must read for this batch.  The second, reported as
context, is :class:`~repro.index.pseudodisk.PseudoDiskSearcher`'s own
``bytes_loaded`` with the curve split into ``2^r`` regular sections
(:data:`MODEL_SECTIONS` per segment): it rounds every load up to
section boundaries, so it upper-bounds the limit and converges to it
as ``r`` grows.

Both runs use ``prefilter="off"`` so measurement and model share the
same selection basis (the sketch tier only *removes* fetch bytes; its
effect is scored by ``BENCH_prefilter.json``).  Results serialise to
``BENCH_storage_tiers.json``.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from ..distortion.model import NormalDistortionModel
from ..index.batch import BatchQueryExecutor
from ..index.filtering import statistical_blocks_cached
from ..index.options import QueryOptions
from ..index.pseudodisk import PseudoDiskSearcher
from ..index.segmented import CompactionPolicy, SegmentedS3Index
from ..rng import SeedLike, resolve_rng
from ..storage import StorageConfig
from ..storage.coldseg import row_bytes
from .common import format_table, host_block

SCHEMA_VERSION = 1

NDIMS = 20

#: Acceptance gate: measured per-query backend bytes must land within
#: this relative distance of the eq.-(5) prediction.
MODEL_TOLERANCE = 0.20

#: Split exponent of the finite-granularity pseudo-disk emulation: the
#: curve is cut into ``2^MODEL_R`` regular sections per segment (paper
#: §IV-B).  Reported as context; the gate uses the fine-granularity
#: limit, which has no granularity knob to tune.
MODEL_R = 5


@dataclass
class StorageTiersResult:
    """One archive scale: all-RAM vs tiered vs the eq.-(5) model."""

    db_rows: int
    num_segments: int
    num_queries: int
    alpha: float
    sigma: float
    ndims: int
    depth: int
    archive_bytes: int
    budget_bytes: int
    tiers: dict
    build_seconds: float
    ram_seconds: float
    tiered_seconds: float
    measured_cold_bytes: int
    predicted_cold_bytes: int
    emulated_cold_bytes: int
    cold_segments_scanned: int
    cold_fetch_seconds: float
    prefetch_hit_ratio: float
    bit_identical: bool

    @property
    def budget_fraction(self) -> float:
        return self.budget_bytes / max(self.archive_bytes, 1)

    @property
    def measured_per_query(self) -> float:
        return self.measured_cold_bytes / max(self.num_queries, 1)

    @property
    def predicted_per_query(self) -> float:
        return self.predicted_cold_bytes / max(self.num_queries, 1)

    @property
    def model_error(self) -> float:
        """Relative distance of measured bytes from the prediction."""
        if self.predicted_cold_bytes == 0:
            return 0.0 if self.measured_cold_bytes == 0 else float("inf")
        return abs(
            self.measured_cold_bytes - self.predicted_cold_bytes
        ) / self.predicted_cold_bytes

    def gate_status(self) -> str:
        """Bit-identity and the eq.-(5) byte gate, as one line."""
        if not self.bit_identical:
            return "failed (tiered results diverge from all-RAM)"
        if self.model_error > MODEL_TOLERANCE:
            return (
                f"failed (measured bytes {self.model_error:.1%} from the "
                f"eq.-(5) prediction, tolerance {MODEL_TOLERANCE:.0%})"
            )
        return "passed"

    def render(self) -> str:
        table = format_table(
            ["engine", "total s", "ms/query", "cold MB/query"],
            [
                ("all-RAM", self.ram_seconds,
                 self.ram_seconds / self.num_queries * 1e3, 0.0),
                ("tiered", self.tiered_seconds,
                 self.tiered_seconds / self.num_queries * 1e3,
                 self.measured_per_query / 1e6),
                ("eq.-(5) model (limit)", "-", "-",
                 self.predicted_per_query / 1e6),
                (f"eq.-(5) model (2^{MODEL_R} sections)", "-", "-",
                 self.emulated_cold_bytes / max(self.num_queries, 1) / 1e6),
            ],
            title=(
                f"Tiered storage vs eq. (5) — {self.db_rows} rows in "
                f"{self.num_segments} segments, budget "
                f"{self.budget_fraction:.0%} of archive "
                f"(alpha={self.alpha})"
            ),
        )
        tiers = ", ".join(
            f"{name}={bucket['segments']}"
            for name, bucket in self.tiers.items()
        )
        return (
            table
            + f"\ntiers after open: {tiers}; "
            f"{self.cold_segments_scanned} cold segment scans, "
            f"prefetch hit ratio {self.prefetch_hit_ratio:.2f}\n"
            f"model error: {self.model_error:.1%} "
            f"(tolerance {MODEL_TOLERANCE:.0%}); "
            f"bit-identical to all-RAM: {self.bit_identical}\n"
            f"gate: {self.gate_status()}"
        )

    def to_json(self) -> dict:
        return {
            "config": {
                "db_rows": self.db_rows,
                "num_segments": self.num_segments,
                "num_queries": self.num_queries,
                "alpha": self.alpha,
                "sigma": self.sigma,
                "ndims": self.ndims,
                "depth": self.depth,
                "archive_bytes": self.archive_bytes,
                "budget_bytes": self.budget_bytes,
                "budget_fraction": self.budget_fraction,
            },
            "tiers": self.tiers,
            "timing": {
                "build_seconds": self.build_seconds,
                "ram_seconds": self.ram_seconds,
                "tiered_seconds": self.tiered_seconds,
                "cold_fetch_seconds": self.cold_fetch_seconds,
            },
            "bytes": {
                "measured_cold_bytes": self.measured_cold_bytes,
                "predicted_cold_bytes": self.predicted_cold_bytes,
                "emulated_cold_bytes": self.emulated_cold_bytes,
                "model_r": MODEL_R,
                "measured_per_query": self.measured_per_query,
                "predicted_per_query": self.predicted_per_query,
                "model_error": self.model_error,
                "tolerance": MODEL_TOLERANCE,
            },
            "prefetch": {
                "cold_segments_scanned": self.cold_segments_scanned,
                "hit_ratio": self.prefetch_hit_ratio,
            },
            "equivalence": {"bit_identical": self.bit_identical},
            "gate": self.gate_status(),
        }


def write_storage_tiers_json(
    results: Sequence[StorageTiersResult], path
) -> Path:
    """Write the suite record (one entry per archive scale)."""
    path = Path(path)
    payload = {
        "benchmark": "storage_tiers",
        "schema_version": SCHEMA_VERSION,
        "host": host_block(),
        "runs": [r.to_json() for r in results],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def _build_archive(
    directory: Path,
    db_rows: int,
    num_segments: int,
    sigma: float,
    rng: np.random.Generator,
) -> tuple[SegmentedS3Index, np.ndarray]:
    """A segmented archive, each segment sampling one global mixture.

    Segments model LSM flushes of a single fingerprint stream: every
    flush draws from the same clustered distribution (the shape
    extracted fingerprints have), so each sealed segment spans the full
    key space rather than one centroid.  That is also what keeps the
    pseudo-disk emulation tractable — regular curve sections converge
    on such data at small ``r``.
    """
    model = NormalDistortionModel(NDIMS, sigma)
    index = SegmentedS3Index.create(
        directory,
        ndims=NDIMS,
        model=model,
        flush_rows=db_rows + 1,
        policy=CompactionPolicy(max_segments=2 * num_segments + 4),
        auto_compact=False,
        sync=False,
    )
    num_centers = max(db_rows // 1000, 20)
    centers = rng.integers(25, 231, size=(num_centers, NDIMS)).astype(
        np.float64
    )
    per_segment = db_rows // num_segments
    for seg in range(num_segments):
        rows = per_segment + (db_rows % num_segments if seg == 0 else 0)
        assign = rng.integers(0, num_centers, size=rows)
        fingerprints = np.clip(
            centers[assign] + rng.normal(0.0, 12.0, size=(rows, NDIMS)),
            0.0, 255.0,
        ).astype(np.uint8)
        index.add(
            fingerprints,
            np.full(rows, seg, dtype=np.uint32),
            np.arange(rows, dtype=np.float64),
        )
        index.flush()
    return index, centers


def _union_ranges(range_lists: Sequence[list]) -> list[tuple[int, int]]:
    """Union of per-query (start, end) range lists, as disjoint spans.

    A deliberate re-implementation of the engine's range coalescing
    (simple sorted sweep), so prediction and measurement share no merge
    code.
    """
    spans = sorted(
        (s, e) for ranges in range_lists for s, e in ranges if e > s
    )
    merged: list[tuple[int, int]] = []
    for s, e in spans:
        if merged and s <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], e))
        else:
            merged.append((s, e))
    return merged


def _results_equal(a, b) -> bool:
    return (
        np.array_equal(a.rows, b.rows)
        and np.array_equal(a.ids, b.ids)
        and np.array_equal(a.timecodes, b.timecodes)
        and np.array_equal(a.fingerprints, b.fingerprints)
    )


def _query_batch(index, queries, options):
    """One timed batched-engine pass; returns (results, stats, seconds)."""
    index.reset_threshold_cache()
    with BatchQueryExecutor(index, options=options) as executor:
        t0 = time.perf_counter()
        out = executor.query_batch(queries)
        seconds = time.perf_counter() - t0
        stats = executor.stats
    return out, stats, seconds


def run_storage_tiers(
    db_rows: int = 48_000,
    num_segments: int = 8,
    num_queries: int = 32,
    alpha: float = 0.8,
    budget_fraction: float = 0.20,
    sigma: float = 18.0,
    seed: SeedLike = 0,
    directory: Optional[Path] = None,
) -> StorageTiersResult:
    """Score real tiered fetch bytes against the eq.-(5) prediction.

    The same query batch runs three ways: all-RAM (reference), tiered
    under a *budget_fraction* RAM budget over a file blob backend
    (measured), and through per-segment pseudo-disk searchers over
    pre-demotion copies of the segments that went cold (predicted).
    """
    rng = resolve_rng(seed)
    with tempfile.TemporaryDirectory(dir=directory) as tmp:
        tmp = Path(tmp)
        t0 = time.perf_counter()
        index, centers = _build_archive(
            tmp / "archive", db_rows, num_segments, sigma, rng
        )
        build_seconds = time.perf_counter() - t0

        model = index.model
        depth = index.depth
        home = rng.integers(0, len(centers), size=num_queries)
        queries = np.clip(
            centers[home] + model.sample(num_queries, rng=rng),
            0.0, 255.0,
        )
        # One batch on both sides, so the engine's per-batch fetch
        # unions and the pseudo-disk's per-batch section loads amortise
        # over the same query set.
        options = QueryOptions(
            alpha=alpha, batch_size=num_queries, prefilter="off"
        )

        # --- all-RAM reference pass -----------------------------------
        segments = [
            (seg.meta.name, seg.meta.count) for seg in index._segments
        ]
        ram_results, _, ram_seconds = _query_batch(index, queries, options)
        index.close()

        # Pre-demotion copies: the prediction needs each cold segment's
        # store file, which demotion deletes locally.
        model_dir = tmp / "model"
        model_dir.mkdir()
        for name, _count in segments:
            shutil.copy(
                tmp / "archive" / f"{name}.store",
                model_dir / f"{name}.store",
            )

        # --- tiered measured pass -------------------------------------
        archive_bytes = sum(
            (tmp / "archive" / f"{name}.store").stat().st_size
            for name, _count in segments
        )
        budget_bytes = int(budget_fraction * archive_bytes)
        index = SegmentedS3Index.open(
            tmp / "archive",
            storage=StorageConfig(
                budget_bytes=budget_bytes,
                cold_dir=str(tmp / "cold"),
                promote_after=10 ** 6,  # measure steady-state cold scans
            ),
        )
        tiers = index.storage_info()["tiers"]
        cold_names = {
            seg.meta.name
            for seg in index._segments
            if seg.meta.tier == "cold"
        }
        tiered_results, stats, tiered_seconds = _query_batch(
            index, queries, options
        )
        snapshot = index.storage_info()["manager"]
        index.close()

        bit_identical = all(
            _results_equal(a, b)
            for a, b in zip(ram_results, tiered_results)
        )

        # --- eq.-(5) prediction ---------------------------------------
        # The gated limit reuses the pseudo-disk's stage-1 machinery
        # (its own layout, rebuilt from the copied fingerprints — fully
        # independent of the tier manager's sidecar-keys path) and sums
        # each cold segment's merged batch-union row count.
        predicted = 0
        emulated = 0
        stride = row_bytes(NDIMS)
        for name, count in segments:
            if name not in cold_names:
                continue
            # memory_rows=count keeps construction trivial (r=0); the
            # finite-granularity emulation below uses an explicit
            # 2^MODEL_R regular split of the same layout instead.
            searcher = PseudoDiskSearcher(
                model_dir / f"{name}.store",
                model,
                memory_rows=count,
                depth=depth,
            )
            cache: dict = {}
            per_query = []
            for q in queries:
                sel = statistical_blocks_cached(
                    q, model, searcher.layout.curve, depth, alpha,
                    cache=cache,
                )
                per_query.append(
                    searcher.layout.block_row_ranges(
                        sel.prefixes, sel.depth
                    )
                )
            union = _union_ranges(per_query)
            predicted += sum(e - s for s, e in union) * stride
            # Pseudo-disk at 2^MODEL_R sections: every section the
            # batch union touches loads whole (§IV-B's cyclic pass).
            for sec_start, sec_stop in searcher.layout.curve_sections(
                MODEL_R
            ):
                if sec_start >= sec_stop:
                    continue
                if any(
                    s < sec_stop and e > sec_start for s, e in union
                ):
                    emulated += (sec_stop - sec_start) * stride

        return StorageTiersResult(
            db_rows=db_rows,
            num_segments=num_segments,
            num_queries=num_queries,
            alpha=alpha,
            sigma=sigma,
            ndims=NDIMS,
            depth=depth,
            archive_bytes=archive_bytes,
            budget_bytes=budget_bytes,
            tiers=tiers,
            build_seconds=build_seconds,
            ram_seconds=ram_seconds,
            tiered_seconds=tiered_seconds,
            measured_cold_bytes=stats.cold_bytes,
            predicted_cold_bytes=predicted,
            emulated_cold_bytes=emulated,
            cold_segments_scanned=stats.cold_segments,
            cold_fetch_seconds=stats.cold_fetch_seconds,
            prefetch_hit_ratio=snapshot["counters"]["prefetch_hit_ratio"],
            bit_identical=bit_identical,
        )
