"""Table I — retrieval rate for transformations of decreasing severity.

The distortion model is calibrated once, on the **most severe**
transformation (largest σ̂); statistical queries of expectation α = 85 %
are then issued for *every* transformation's distorted fingerprints.  The
paper's claims, which this experiment reproduces:

* the reference (most severe) transformation achieves ``R`` close to α;
* every milder transformation achieves a **higher** retrieval rate —
  calibrating on the worst case guarantees at least α elsewhere;
* ``R`` grows as σ̂ shrinks (with a possible saturation at the mild end).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..corpus.filler import scale_store
from ..distortion.model import NormalDistortionModel
from ..fingerprint.calibration import CalibrationPairs, collect_pairs
from ..fingerprint.extractor import FingerprintExtractor
from ..index.s3 import S3Index
from ..index.store import FingerprintStore
from ..rng import SeedLike, resolve_rng
from ..video.synthetic import generate_corpus
from ..video.transforms import Gamma, GaussianNoise, Resize, Transform
from .common import format_table


def paper_transform_ladder(noise_seed: int = 777) -> list[tuple[Transform, float]]:
    """The seven transformations of Table I with their ``δ_pix``."""
    return [
        (Resize(0.84), 1.0),
        (Resize(1.26), 1.0),
        (Resize(0.91), 1.0),
        (Resize(0.98), 1.0),
        (Gamma(2.08), 1.0),
        (Gamma(0.82), 1.0),
        (GaussianNoise(10.0, seed=noise_seed), 0.0),
    ]


@dataclass
class SeverityRow:
    """One transformation of Table I: σ̂ and measured retrieval."""

    label: str
    sigma_hat: float
    retrieval: float
    num_queries: int


@dataclass
class Table1Result:
    """Table I rows, sorted by decreasing severity."""

    alpha: float
    reference_sigma: float
    rows: list[SeverityRow]

    def render(self) -> str:
        body = [
            (r.label, r.sigma_hat, r.retrieval * 100, r.num_queries)
            for r in self.rows
        ]
        table = format_table(
            ["transformation", "sigma_hat", "R (%)", "queries"],
            body,
            title=(
                f"Table I — detection rate for decreasing severity "
                f"(alpha={self.alpha * 100:.0f}%, model sigma="
                f"{self.reference_sigma:.2f})"
            ),
        )
        return table + (
            "\nExpected shape: rows sorted by decreasing sigma_hat; "
            "R rises as severity falls; reference row close to alpha."
        )


def run_table1(
    alpha: float = 0.85,
    num_clips: int = 4,
    frames_per_clip: int = 100,
    db_rows: int = 50_000,
    max_queries: int = 300,
    transforms: list[tuple[Transform, float]] | None = None,
    seed: SeedLike = 0,
) -> Table1Result:
    """Reproduce Table I at laptop scale."""
    rng = resolve_rng(seed)
    ladder = transforms if transforms is not None else paper_transform_ladder()
    clips = generate_corpus(num_clips, frames_per_clip, seed=rng)
    extractor = FingerprintExtractor()

    all_pairs: list[CalibrationPairs] = []
    sigmas: list[float] = []
    for transform, delta_pix in ladder:
        pairs = collect_pairs(
            clips, transform, extractor=extractor, delta_pix=delta_pix, rng=rng
        )
        all_pairs.append(pairs)
        sigmas.append(pairs.estimate().sigma)

    # Calibrate the model on the most severe transformation.
    reference_sigma = max(sigmas)
    ndims = all_pairs[0].reference.shape[1]
    model = NormalDistortionModel(ndims, reference_sigma)

    # One shared database holding the originals of every ladder rung.
    originals = np.concatenate([p.reference for p in all_pairs])
    base = FingerprintStore(
        fingerprints=originals,
        ids=np.zeros(originals.shape[0], dtype=np.uint32),
        timecodes=np.arange(originals.shape[0], dtype=np.float64),
    )
    store = scale_store(base, db_rows, rng=rng)
    index = S3Index(store, model=model)

    rows: list[SeverityRow] = []
    for pairs, sigma_hat in zip(all_pairs, sigmas):
        keep = min(len(pairs), max_queries)
        sel = resolve_rng(rng).permutation(len(pairs))[:keep]
        hits = 0
        for i in sel:
            result = index.statistical_query(
                pairs.distorted[i].astype(np.float64), alpha
            )
            if len(result) and np.any(
                np.all(result.fingerprints == pairs.reference[i], axis=1)
            ):
                hits += 1
        rows.append(
            SeverityRow(
                label=pairs.transform_label,
                sigma_hat=sigma_hat,
                retrieval=hits / keep,
                num_queries=keep,
            )
        )

    rows.sort(key=lambda r: -r.sigma_hat)
    return Table1Result(alpha=alpha, reference_sigma=reference_sigma, rows=rows)
