"""Batched query engine — throughput versus the per-fingerprint loop.

The paper's deployment answers one statistical query per candidate
key-frame.  The batched engine (:mod:`repro.index.batch`) amortises that
work across a frame batch: one shared multi-query descent per threshold
probe, one coalesced scan of the union of the selected curve sections,
and an optional thread pool over the scan.  This experiment quantifies
the trade on a synthetic corpus and **verifies bit-identity** where the
engine promises it:

* **sequential (warm)** — the legacy production loop: one
  ``statistical_query`` per fingerprint, warm-start threshold cache
  chained from query to query;
* **sequential (deterministic)** — the history-free mode: the cache is
  reset before every query, so each runs the cold-start threshold
  search;
* **batched (deterministic)** — the engine with the cache reset before
  every batch: every query in a batch runs the same cold-start search,
  so each result is **bit-identical** to the deterministic sequential
  loop (the property tested in ``tests/index/test_batch.py``), and the
  voting stage therefore reports bit-identical detections.

The warm and deterministic sequential baselines bracket the engine's
speedup: the warm loop is the fastest sequential configuration, the
deterministic loop the one the engine's results exactly reproduce.

Results serialise to ``BENCH_batch_query.json`` (schema in
``docs/batch-query.md``) so later PRs have a perf trajectory to regress
against.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from ..cbcd.voting import QueryMatches, vote
from ..corpus.builder import build_reference_corpus
from ..corpus.filler import scale_store
from ..distortion.model import NormalDistortionModel
from ..index.batch import BatchQueryExecutor
from ..index.s3 import S3Index
from ..rng import SeedLike, resolve_rng
from .common import format_table, host_block

SCHEMA_VERSION = 2


@dataclass
class BatchQueryBenchResult:
    """Timings + equivalence checks of one batched-query benchmark run."""

    db_rows: int
    num_queries: int
    batch_size: int
    workers: int
    alpha: float
    depth: int
    sigma: float
    ndims: int
    sequential_warm_seconds: float
    sequential_deterministic_seconds: float
    batched_seconds: float
    logical_rows: int
    unique_rows: int
    bit_identical_results: bool
    identical_detections: bool
    num_detections: int

    @property
    def speedup_vs_warm(self) -> float:
        """Batched over the legacy warm-chained sequential loop."""
        return self.sequential_warm_seconds / max(self.batched_seconds, 1e-9)

    @property
    def speedup_vs_deterministic(self) -> float:
        """Batched over the sequential loop it bit-exactly reproduces."""
        return self.sequential_deterministic_seconds / max(
            self.batched_seconds, 1e-9
        )

    @property
    def coalescing_factor(self) -> float:
        """Logical rows scanned per physically gathered row."""
        if self.unique_rows == 0:
            return 1.0
        return self.logical_rows / self.unique_rows

    def render(self) -> str:
        per_q = 1e3 / max(self.num_queries, 1)
        table = format_table(
            ["strategy", "total s", "ms/query", "speedup"],
            [
                ("sequential (warm cache)", self.sequential_warm_seconds,
                 self.sequential_warm_seconds * per_q, "1.00x"),
                ("sequential (deterministic)",
                 self.sequential_deterministic_seconds,
                 self.sequential_deterministic_seconds * per_q,
                 f"{self.sequential_warm_seconds / max(self.sequential_deterministic_seconds, 1e-9):.2f}x"),
                (f"batched (B={self.batch_size}, workers={self.workers})",
                 self.batched_seconds, self.batched_seconds * per_q,
                 f"{self.speedup_vs_warm:.2f}x"),
            ],
            title=(
                f"Batched statistical queries — {self.num_queries} queries "
                f"against {self.db_rows} fingerprints "
                f"(alpha={self.alpha}, depth={self.depth})"
            ),
        )
        return (
            table
            + f"\nspeedup: {self.speedup_vs_warm:.2f}x over the warm "
            f"sequential loop, {self.speedup_vs_deterministic:.2f}x over "
            "the deterministic loop\n"
            f"coalescing: {self.logical_rows} logical rows -> "
            f"{self.unique_rows} gathered ({self.coalescing_factor:.2f}x)\n"
            f"bit-identical results: {self.bit_identical_results}; "
            f"identical detections: {self.identical_detections} "
            f"({self.num_detections} detections)"
        )

    def to_json(self) -> dict:
        """The machine-readable record (see docs/batch-query.md)."""
        return {
            "benchmark": "batch_query",
            "schema_version": SCHEMA_VERSION,
            "host": host_block(),
            "config": {
                "db_rows": self.db_rows,
                "num_queries": self.num_queries,
                "batch_size": self.batch_size,
                "workers": self.workers,
                "alpha": self.alpha,
                "depth": self.depth,
                "sigma": self.sigma,
                "ndims": self.ndims,
            },
            "timing": {
                "sequential_warm_seconds": self.sequential_warm_seconds,
                "sequential_deterministic_seconds":
                    self.sequential_deterministic_seconds,
                "batched_seconds": self.batched_seconds,
                "speedup_vs_warm": self.speedup_vs_warm,
                "speedup_vs_deterministic": self.speedup_vs_deterministic,
            },
            "coalescing": {
                "logical_rows": self.logical_rows,
                "unique_rows": self.unique_rows,
                "factor": self.coalescing_factor,
            },
            "equivalence": {
                "bit_identical_results": self.bit_identical_results,
                "identical_detections": self.identical_detections,
                "num_detections": self.num_detections,
            },
        }

    def write_json(self, path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return path


def _detections(results, timecodes, decision_threshold=5):
    """Run the temporal voting stage and report comparable detections."""
    matches = [
        QueryMatches(timecode=float(tc), ids=r.ids, timecodes=r.timecodes)
        for r, tc in zip(results, timecodes)
        if len(r)
    ]
    return [
        (v.video_id, round(v.offset, 9), v.nsim)
        for v in vote(matches, tolerance=2.0, tukey_c=6.0, min_matches=2)
        if v.nsim >= decision_threshold
    ]


def run_batch_query(
    db_rows: int = 50_000,
    num_queries: int = 256,
    batch_size: int = 64,
    workers: int = 1,
    alpha: float = 0.8,
    sigma: float = 10.0,
    seed: SeedLike = 0,
    json_path: Optional[Path] = None,
) -> BatchQueryBenchResult:
    """Benchmark the batched engine against the per-fingerprint loop.

    Builds a *db_rows* synthetic corpus, simulates a candidate clip as a
    contiguous run of referenced key-frames under the distortion model,
    then times the three strategies and verifies bit-identity between
    the deterministic sequential loop and the deterministic batched run.
    """
    rng = resolve_rng(seed)
    corpus = build_reference_corpus(8, 120, seed=rng)
    store = scale_store(corpus.store, db_rows, rng=rng)
    model = NormalDistortionModel(store.ndims, sigma)
    index = S3Index(store, model=model)

    # Candidate clip: num_queries consecutive referenced key-frames,
    # distorted by the model — temporally adjacent queries select
    # overlapping blocks, the workload coalescing targets.
    base_rows = np.arange(num_queries) % len(corpus.store)
    queries = np.clip(
        corpus.store.fingerprints[base_rows].astype(np.float64)
        + model.sample(num_queries, rng=rng),
        0.0, 255.0,
    )
    timecodes = corpus.store.timecodes[base_rows]

    # Legacy production loop: warm-start cache chained across queries.
    index.reset_threshold_cache()
    t0 = time.perf_counter()
    for q in queries:
        index.statistical_query(q, alpha)
    sequential_warm = time.perf_counter() - t0

    # Deterministic loop: cold threshold search per query.
    t0 = time.perf_counter()
    seq_results = []
    for q in queries:
        index.reset_threshold_cache()
        seq_results.append(index.statistical_query(q, alpha))
    sequential_det = time.perf_counter() - t0

    # Deterministic batched: cold start per batch — every query runs the
    # same cold search the deterministic loop ran, so results must be
    # bit-identical.
    executor = BatchQueryExecutor(
        index, alpha, batch_size=batch_size, workers=workers
    )
    t0 = time.perf_counter()
    batch_results = []
    for start in range(0, num_queries, batch_size):
        index.reset_threshold_cache()
        batch_results.extend(
            executor.query_batch(queries[start:start + batch_size])
        )
    batched = time.perf_counter() - t0

    bit_identical = all(
        np.array_equal(a.rows, b.rows)
        and np.array_equal(a.ids, b.ids)
        and np.array_equal(a.timecodes, b.timecodes)
        and np.array_equal(a.fingerprints, b.fingerprints)
        for a, b in zip(seq_results, batch_results)
    )
    det_seq = _detections(seq_results, timecodes)
    det_batch = _detections(batch_results, timecodes)

    result = BatchQueryBenchResult(
        db_rows=len(store),
        num_queries=num_queries,
        batch_size=batch_size,
        workers=workers,
        alpha=alpha,
        depth=index.depth,
        sigma=sigma,
        ndims=store.ndims,
        sequential_warm_seconds=sequential_warm,
        sequential_deterministic_seconds=sequential_det,
        batched_seconds=batched,
        logical_rows=executor.stats.logical_rows,
        unique_rows=executor.stats.unique_rows,
        bit_identical_results=bit_identical,
        identical_detections=det_seq == det_batch,
        num_detections=len(det_batch),
    )
    if json_path is not None:
        result.write_json(json_path)
    return result
