"""Fig. 9 — detection-rate abacuses vs. transformation severity, by α.

The paper fixes the database (~3500 hours) and sweeps the statistical-query
expectation α over {95, 90, 80, 70, 50} %.  Headline result: the detection
rate **stays nearly invariant as α drops from 95 % to 70 %** while the
search gets ~4× faster, only collapsing around α = 50 % for the most severe
transformations — an approximate search is especially profitable when a
voting strategy follows, because the least distortion-invariant
fingerprints cost search time without adding robustness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..rng import SeedLike
from .abacus import (
    AbacusResult,
    AbacusSetup,
    build_setup,
    make_detector,
    sweep_transforms_shared,
)


@dataclass
class Fig9Result:
    """Fig. 9 abacuses; `rate_at` averages one α configuration."""

    db_rows: int
    alphas: list[float]
    abacus: AbacusResult

    def render(self) -> str:
        return self.abacus.render() + (
            "\nExpected shape: rates stable from alpha=95% down to ~70% "
            "with falling search time; degradation appears near alpha=50% "
            "on the severest transformations."
        )

    def rate_at(self, alpha: float) -> float:
        """Mean detection rate over every cell of one α configuration."""
        label = _label(alpha)
        rates = [
            c.detection_rate for c in self.abacus.cells if c.config_label == label
        ]
        return float(np.mean(rates)) if rates else 0.0


def _label(alpha: float) -> str:
    return f"alpha={alpha * 100:.0f}%"


def run_fig9(
    alphas: Sequence[float] = (0.95, 0.9, 0.8, 0.7, 0.5),
    db_rows: int = 80_000,
    setup: AbacusSetup | None = None,
    decision_threshold: int = 5,
    seed: SeedLike = 0,
) -> Fig9Result:
    """Reproduce Fig. 9 at laptop scale (DB fixed, α swept)."""
    setup = setup if setup is not None else build_setup(seed=seed)
    abacus = AbacusResult(
        title=f"Fig. 9 — alpha abacuses (DB={db_rows} rows)"
    )
    detectors = {
        _label(alpha): make_detector(
            setup, db_rows, alpha, decision_threshold=decision_threshold
        )
        for alpha in sorted(alphas, reverse=True)
    }
    abacus.cells = sweep_transforms_shared(detectors, setup.candidates)
    for label in detectors:
        cells = [c for c in abacus.cells if c.config_label == label]
        abacus.search_times[label] = float(
            np.mean([c.mean_search_seconds for c in cells])
        )
    return Fig9Result(db_rows=db_rows, alphas=list(alphas), abacus=abacus)
