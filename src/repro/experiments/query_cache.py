"""Serve-path caching — Zipf repeat traffic, warm vs cold.

The monitoring workload the paper targets repeats its material: the
same jingles, idents and ad breaks recur across every monitored
channel, so the fingerprints hitting the service follow a heavy-tailed
rank-frequency law rather than a uniform draw.  The serve-path cache
stack (:mod:`repro.serve.cache` — result LRU, in-flight dedupe,
hot-block gather cache) converts that repetition into skipped engine
work while preserving the contract that every answer is bit-identical
to a cold solo ``statistical_query``.

This experiment serves the same Zipf-distributed query trace twice over
real sockets with concurrent clients:

* **cold** — ``cache="off"``: every request runs the engine, the
  pre-cache serving baseline;
* **warm** — ``cache="on"``: the first pass primes the LRU, the timed
  second pass is answered from it.

The warm pass's served results are verified bit-identical to solo
in-process queries, and the acceptance gate requires the warm pass to
clear :data:`GATE_MIN_SPEEDUP` x the cold QPS.  Results serialise to
``BENCH_query_cache.json``.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from ..corpus.builder import build_reference_corpus
from ..corpus.filler import scale_store
from ..distortion.model import NormalDistortionModel
from ..index.s3 import S3Index
from ..rng import SeedLike, resolve_rng
from ..serve.client import ServeClient
from ..serve.runner import ServerThread
from ..serve.server import ServeConfig
from .common import format_table, host_block

SCHEMA_VERSION = 1

#: Acceptance gate: the cache-warm pass must clear this many times the
#: cold (cache-off) throughput on the repeat-heavy trace.
GATE_MIN_SPEEDUP = 3.0


@dataclass
class QueryCacheBenchResult:
    """Warm-over-cold serving comparison on one Zipf repeat trace."""

    db_rows: int
    unique_queries: int
    num_queries: int
    num_clients: int
    zipf_s: float
    alpha: float
    depth: int
    sigma: float
    ndims: int
    cold_seconds: float
    warm_seconds: float
    prime_seconds: float
    cache_hits: int
    cache_misses: int
    hit_rate: float
    inflight_deduped: int
    cache_entries: int
    bit_identical_results: bool

    @property
    def speedup(self) -> float:
        """Warm (cached) pass over the cold cache-off pass."""
        return self.cold_seconds / max(self.warm_seconds, 1e-9)

    @property
    def cold_qps(self) -> float:
        return self.num_queries / max(self.cold_seconds, 1e-9)

    @property
    def warm_qps(self) -> float:
        return self.num_queries / max(self.warm_seconds, 1e-9)

    def gate_status(self) -> str:
        """Did the >= 3x warm-over-cold gate pass."""
        if self.speedup >= GATE_MIN_SPEEDUP:
            return "passed"
        return (
            f"failed ({self.speedup:.2f}x warm-over-cold, "
            f"needs >= {GATE_MIN_SPEEDUP:.1f}x)"
        )

    def render(self) -> str:
        table = format_table(
            ["serving mode", "total s", "queries/s", "speedup"],
            [
                ("cold (cache off)", self.cold_seconds,
                 self.cold_qps, "1.00x"),
                ("warm (cache primed)", self.warm_seconds,
                 self.warm_qps, f"{self.speedup:.2f}x"),
            ],
            title=(
                f"Serve-path cache — {self.num_queries} Zipf"
                f"(s={self.zipf_s}) queries over {self.unique_queries} "
                f"distinct fingerprints, {self.num_clients} clients, "
                f"{self.db_rows} rows (alpha={self.alpha})"
            ),
        )
        return (
            table
            + f"\ncache: {self.cache_hits} hits / {self.cache_misses} "
            f"misses (rate {self.hit_rate:.2f}), "
            f"{self.inflight_deduped} deduped in flight, "
            f"{self.cache_entries} entries resident\n"
            f"bit-identical to solo in-process queries: "
            f"{self.bit_identical_results}\n"
            f"gate: {self.gate_status()}"
        )

    def to_json(self) -> dict:
        """The machine-readable record (see docs/serving.md)."""
        return {
            "benchmark": "query_cache",
            "schema_version": SCHEMA_VERSION,
            "host": host_block(),
            "config": {
                "db_rows": self.db_rows,
                "unique_queries": self.unique_queries,
                "num_queries": self.num_queries,
                "num_clients": self.num_clients,
                "zipf_s": self.zipf_s,
                "alpha": self.alpha,
                "depth": self.depth,
                "sigma": self.sigma,
                "ndims": self.ndims,
            },
            "timing": {
                "cold_seconds": self.cold_seconds,
                "prime_seconds": self.prime_seconds,
                "warm_seconds": self.warm_seconds,
                "cold_qps": self.cold_qps,
                "warm_qps": self.warm_qps,
                "speedup": self.speedup,
            },
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": self.hit_rate,
                "inflight_deduped": self.inflight_deduped,
                "entries": self.cache_entries,
            },
            "equivalence": {
                "bit_identical_results": self.bit_identical_results,
            },
            "gate": self.gate_status(),
        }

    def write_json(self, path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return path


def zipf_trace(
    pool: np.ndarray, num_queries: int, s: float, rng
) -> np.ndarray:
    """Draw *num_queries* rows from *pool* under a Zipf(s) rank law.

    Rank ``k`` (1-based, in pool order) is drawn with probability
    proportional to ``1 / k**s`` — the classic heavy-tailed repeat
    shape of broadcast monitoring traffic.
    """
    ranks = np.arange(1, pool.shape[0] + 1, dtype=np.float64)
    weights = 1.0 / ranks**s
    picks = rng.choice(pool.shape[0], size=num_queries, p=weights / weights.sum())
    return pool[picks]


def _serve_passes(
    index: S3Index,
    chunks: list[np.ndarray],
    config: ServeConfig,
    passes: int,
    collect_last: bool,
) -> tuple[list[float], dict, Optional[list[list]]]:
    """Serve the chunked trace *passes* times; time each pass.

    Every client thread holds one chunk and one connection for the
    whole run; barriers align pass boundaries so each pass's wall time
    is the full concurrent replay of the trace.  With *collect_last*,
    the final pass's served results (with fingerprints) are returned
    for the equivalence check.
    """
    served: list[Optional[list]] = [None] * len(chunks)
    errors: list[BaseException] = []
    parties = len(chunks) + 1
    starts = [threading.Barrier(parties) for _ in range(passes)]
    dones = [threading.Barrier(parties) for _ in range(passes)]

    with ServerThread(index, config) as server:
        def run_client(i: int) -> None:
            try:
                with ServeClient(
                    port=server.port, timeout=60.0, backoff=0.002
                ) as client:
                    for p in range(passes):
                        collect = collect_last and p == passes - 1
                        starts[p].wait()
                        results = []
                        for query in chunks[i]:
                            (result,) = client.query(
                                query, include_fingerprints=collect
                            )
                            if collect:
                                results.append(result)
                        if collect:
                            served[i] = results
                        dones[p].wait()
            except BaseException as exc:
                errors.append(exc)
                for barrier in starts + dones:
                    barrier.abort()

        threads = [
            threading.Thread(target=run_client, args=(i,))
            for i in range(len(chunks))
        ]
        for t in threads:
            t.start()
        seconds = []
        for p in range(passes):
            starts[p].wait()
            t0 = time.perf_counter()
            dones[p].wait()
            seconds.append(time.perf_counter() - t0)
        for t in threads:
            t.join()
        stats = server.server.stats_snapshot()
    if errors:
        raise errors[0]
    return seconds, stats, served if collect_last else None


def run_query_cache(
    db_rows: int = 50_000,
    unique_queries: int = 64,
    num_queries: int = 512,
    num_clients: int = 8,
    zipf_s: float = 1.1,
    max_batch: int = 32,
    max_wait_ms: float = 2.0,
    alpha: float = 0.8,
    sigma: float = 10.0,
    seed: SeedLike = 0,
    json_path: Optional[Path] = None,
) -> QueryCacheBenchResult:
    """Benchmark cached serving against cache-off serving.

    Builds a *db_rows* synthetic corpus, draws a *num_queries*-long
    Zipf repeat trace over *unique_queries* distinct distorted
    fingerprints, splits it across *num_clients* concurrent clients,
    and serves it cold (``cache="off"``) and warm (``cache="on"``,
    primed by a first pass).
    """
    rng = resolve_rng(seed)
    corpus = build_reference_corpus(8, 120, seed=rng)
    store = scale_store(corpus.store, db_rows, rng=rng)
    model = NormalDistortionModel(store.ndims, sigma)
    index = S3Index(store, model=model)

    base_rows = np.arange(unique_queries) % len(corpus.store)
    pool = np.clip(
        corpus.store.fingerprints[base_rows].astype(np.float64)
        + model.sample(unique_queries, rng=rng),
        0.0, 255.0,
    )
    trace = zipf_trace(pool, num_queries, zipf_s, rng)
    chunks = np.array_split(trace, num_clients)

    def config(cache: str) -> ServeConfig:
        return ServeConfig(
            port=0,
            alpha=alpha,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            queue_limit=max(1024, num_queries),
            cache=cache,
        )

    (cold_seconds,), _, _ = _serve_passes(
        index, chunks, config("off"), passes=1, collect_last=False
    )
    (prime_seconds, warm_seconds), stats, served = _serve_passes(
        index, chunks, config("on"), passes=2, collect_last=True
    )
    cache_stats = stats["cache"]

    bit_identical = True
    for chunk, results in zip(chunks, served):
        for query, result in zip(chunk, results):
            index.reset_threshold_cache()
            solo = index.statistical_query(query, alpha)
            if not (
                np.array_equal(solo.rows, result.rows)
                and np.array_equal(solo.ids, result.ids)
                and np.array_equal(solo.timecodes, result.timecodes)
                and np.array_equal(solo.fingerprints, result.fingerprints)
            ):
                bit_identical = False

    result = QueryCacheBenchResult(
        db_rows=len(store),
        unique_queries=unique_queries,
        num_queries=num_queries,
        num_clients=num_clients,
        zipf_s=zipf_s,
        alpha=alpha,
        depth=index.depth,
        sigma=sigma,
        ndims=store.ndims,
        cold_seconds=cold_seconds,
        prime_seconds=prime_seconds,
        warm_seconds=warm_seconds,
        cache_hits=cache_stats["hits"],
        cache_misses=cache_stats["misses"],
        hit_rate=cache_stats["hit_rate"],
        inflight_deduped=cache_stats["inflight_deduped"],
        cache_entries=cache_stats["entries"],
        bit_identical_results=bit_identical,
    )
    if json_path is not None:
        result.write_json(json_path)
    return result
