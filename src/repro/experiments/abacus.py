"""Shared machinery for the detection-rate abacuses (Figs. 8 & 9).

Both figures run the complete CBCD pipeline — extraction, statistical
search, voting — over candidate clips transformed with the five kinds of
transformations at a grid of severities, and report the good-detection
rate.  Fig. 8 varies the database size at fixed α; Fig. 9 varies α at
fixed database size.  The per-configuration mean single-fingerprint search
time feeds the small tables below each figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..cbcd.detector import CopyDetector, DetectorConfig
from ..cbcd.evaluation import (
    DetectionRateResult,
    GroundTruth,
    evaluate_extracted,
    extract_candidates,
)
from ..corpus.builder import ReferenceCorpus, build_reference_corpus
from ..corpus.filler import scale_store
from ..distortion.model import NormalDistortionModel
from ..index.s3 import S3Index
from ..rng import SeedLike, resolve_rng
from ..video.synthetic import VideoClip
from ..video.transforms import (
    Contrast,
    Gamma,
    GaussianNoise,
    Resize,
    Transform,
    VerticalShift,
)

#: The paper's five transformation families, with the abacus grids of
#: Figs. 8/9 condensed to three severities each (mild → severe).
DEFAULT_TRANSFORM_GRIDS: dict[str, list[Callable[[], Transform]]] = {
    "shift": [
        lambda: VerticalShift(0.05),
        lambda: VerticalShift(0.15),
        lambda: VerticalShift(0.30),
    ],
    "scale": [
        lambda: Resize(0.95),
        lambda: Resize(0.85),
        lambda: Resize(0.70),
    ],
    "gamma": [
        lambda: Gamma(1.2),
        lambda: Gamma(1.8),
        lambda: Gamma(2.5),
    ],
    "contrast": [
        lambda: Contrast(1.2),
        lambda: Contrast(1.8),
        lambda: Contrast(2.5),
    ],
    "noise": [
        lambda: GaussianNoise(5.0, seed=101),
        lambda: GaussianNoise(15.0, seed=102),
        lambda: GaussianNoise(30.0, seed=103),
    ],
}


@dataclass
class AbacusCell:
    """One (transform family, severity, configuration) measurement."""

    family: str
    severity: float
    config_label: str
    detection_rate: float
    mean_search_seconds: float
    num_trials: int


@dataclass
class AbacusSetup:
    """Reusable fixtures shared across the abacus sweeps."""

    corpus: ReferenceCorpus
    candidates: list[tuple[VideoClip, GroundTruth]]
    sigma: float
    rng: np.random.Generator


def build_setup(
    num_videos: int = 12,
    frames_per_video: int = 150,
    num_candidates: int = 10,
    candidate_frames: int = 80,
    sigma: float = 20.0,
    seed: SeedLike = 0,
) -> AbacusSetup:
    """Build the reference corpus and candidate clips once."""
    rng = resolve_rng(seed)
    corpus = build_reference_corpus(num_videos, frames_per_video, seed=rng)
    candidates = corpus.random_candidates(num_candidates, candidate_frames, rng=rng)
    return AbacusSetup(corpus=corpus, candidates=candidates, sigma=sigma, rng=rng)


def make_detector(
    setup: AbacusSetup,
    db_rows: int,
    alpha: float,
    decision_threshold: int = 5,
    depth: int = 20,
) -> CopyDetector:
    """Index the corpus scaled to *db_rows* rows; wrap it in a detector.

    The partition depth defaults deeper than the index's own heuristic:
    detection precision benefits from tight blocks (fewer coincidental
    votes), and the warm-started threshold search keeps the filtering cost
    moderate.
    """
    store = scale_store(setup.corpus.store, db_rows, rng=setup.rng)
    model = NormalDistortionModel(store.ndims, setup.sigma)
    index = S3Index(store, model=model, depth=min(depth, 2 * store.ndims))
    config = DetectorConfig(alpha=alpha, decision_threshold=decision_threshold)
    return CopyDetector(index, config)


def severity_of(transform: Transform) -> float:
    """The single numeric knob of a grid transform (for table axes)."""
    params = transform.params()
    return float(next(iter(params.values()))) if params else 0.0


def sweep_transforms_shared(
    detectors: dict[str, CopyDetector],
    candidates: Sequence[tuple[VideoClip, GroundTruth]],
    grids: dict[str, list[Callable[[], Transform]]] | None = None,
) -> list[AbacusCell]:
    """Run every (family, severity) cell against several detectors.

    Transforming and fingerprinting the candidates is detector-independent,
    so each cell is extracted **once** and evaluated against every
    configuration — the big cost saver for the Fig. 8/9 sweeps.
    """
    grids = grids if grids is not None else DEFAULT_TRANSFORM_GRIDS
    cells: list[AbacusCell] = []
    for family, factories in grids.items():
        for factory in factories:
            transform = factory()
            extracted = extract_candidates(candidates, transform=transform)
            for label, detector in detectors.items():
                result: DetectionRateResult = evaluate_extracted(
                    detector, extracted
                )
                cells.append(
                    AbacusCell(
                        family=family,
                        severity=severity_of(transform),
                        config_label=label,
                        detection_rate=result.detection_rate,
                        mean_search_seconds=result.mean_search_seconds,
                        num_trials=result.num_trials,
                    )
                )
    return cells


def sweep_transforms(
    detector: CopyDetector,
    candidates: Sequence[tuple[VideoClip, GroundTruth]],
    config_label: str,
    grids: dict[str, list[Callable[[], Transform]]] | None = None,
) -> list[AbacusCell]:
    """Run every (family, severity) cell against one detector."""
    return sweep_transforms_shared({config_label: detector}, candidates, grids)


@dataclass
class AbacusResult:
    """Cells plus the per-configuration search-time table."""

    title: str
    cells: list[AbacusCell] = field(default_factory=list)
    search_times: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        from .common import format_table

        families = sorted({c.family for c in self.cells})
        blocks = [self.title]
        for family in families:
            rows = [
                (c.severity, c.config_label, c.detection_rate, c.num_trials)
                for c in self.cells
                if c.family == family
            ]
            rows.sort(key=lambda r: (r[0], r[1]))
            blocks.append(
                format_table(
                    ["severity", "config", "detection rate", "trials"],
                    rows,
                    title=f"\ntransform family: {family}",
                )
            )
        time_rows = [(k, v * 1e3) for k, v in self.search_times.items()]
        blocks.append(
            format_table(
                ["config", "search time (ms/fingerprint)"],
                time_rows,
                title="\nmean single-fingerprint search time",
            )
        )
        return "\n".join(blocks)
