"""Process-parallel scan — escaping the GIL on the coalesced gather.

The batched engine's thread sharding (:mod:`repro.index.batch`) is
bounded by the GIL: numpy releases it inside a fancy-index gather, but
the per-query demux, refinement and result assembly serialize.  The
process pool (:mod:`repro.index.parallel`) moves the gather into scan
worker processes that attach the store zero-copy (mmap of the on-disk
layout, or one shared-memory block for in-RAM stores) and write into a
per-call shared arena — no fingerprint bytes cross a pipe, ever.

This experiment times the same deterministic workload under the three
strategies and **verifies bit-identity** between all of them:

* **serial** — the batched engine, one gather shard (``workers=1``);
* **threads** — the engine's thread sharding (``executor="threads"``);
* **processes** — the zero-copy process pool (``executor="processes"``).

Each row scale is measured separately (the process pool only pays for
itself once the scan volume escapes the GIL-bound regime — the reason
``executor="auto"`` keeps small indexes on threads).  Results serialise
to ``BENCH_parallel_scan.json`` (schema versioned below) including
``cpu_count``, so CI readers can tell a 1-core container's numbers from
a real parallel run.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from ..corpus.builder import build_reference_corpus
from ..corpus.filler import scale_store
from ..distortion.model import NormalDistortionModel
from ..index.batch import BatchQueryExecutor
from ..index.parallel import shared_memory_available
from ..index.planner import choose_executor, get_calibration
from ..index.s3 import S3Index
from ..rng import SeedLike, resolve_rng
from .common import format_table, host_block

SCHEMA_VERSION = 3

STRATEGIES = ("serial", "threads", "processes")

#: The GIL-escape acceptance gate: the process pool must beat the
#: thread shards by this factor on the largest scale — but only on
#: hosts with enough cores for the comparison to mean anything.
GATE_MIN_SPEEDUP = 2.0
GATE_MIN_CORES = 4

#: The measured planner must match (or beat) the fixed threshold rule
#: within this factor at every scale.
PLANNER_GATE_TOLERANCE = 1.05

#: EMA rounds folding each strategy's measured per-batch timing into
#: the calibration before the warmed planning decision — enough for
#: the observed rates to dominate the cold micro-benchmarks
#: ((1 - 0.2)^15 ~ 3.5% residual).
_OBSERVE_ROUNDS = 15


@dataclass
class ParallelScanBenchResult:
    """One row scale's timings under the three executor strategies."""

    db_rows: int
    num_queries: int
    batch_size: int
    workers: int
    alpha: float
    depth: int
    sigma: float
    ndims: int
    serial_seconds: float
    threads_seconds: float
    processes_seconds: Optional[float]
    pool_build_seconds: Optional[float]
    bit_identical_results: bool
    fingerprint_bytes_serialized: Optional[int]
    rows_gathered: Optional[int]
    tasks: Optional[int]
    worker_deaths: Optional[int]
    #: The measured-planner comparison (see :func:`_planner_comparison`);
    #: ``None`` on records predating schema 3.
    planner: Optional[dict] = None

    @property
    def processes_available(self) -> bool:
        return self.processes_seconds is not None

    @property
    def threads_speedup(self) -> float:
        """Threads over the serial single-shard engine."""
        return self.serial_seconds / max(self.threads_seconds, 1e-9)

    @property
    def processes_speedup(self) -> Optional[float]:
        """Processes over the serial single-shard engine."""
        if self.processes_seconds is None:
            return None
        return self.serial_seconds / max(self.processes_seconds, 1e-9)

    @property
    def processes_over_threads(self) -> Optional[float]:
        """The GIL-escape factor: process pool over the thread shards."""
        if self.processes_seconds is None:
            return None
        return self.threads_seconds / max(self.processes_seconds, 1e-9)

    def render(self) -> str:
        per_q = 1e3 / max(self.num_queries, 1)
        rows = [
            ("serial (1 shard)", self.serial_seconds,
             self.serial_seconds * per_q, "1.00x"),
            (f"threads (workers={self.workers})", self.threads_seconds,
             self.threads_seconds * per_q, f"{self.threads_speedup:.2f}x"),
        ]
        if self.processes_seconds is not None:
            rows.append((
                f"processes (workers={self.workers})",
                self.processes_seconds, self.processes_seconds * per_q,
                f"{self.processes_speedup:.2f}x",
            ))
        table = format_table(
            ["strategy", "total s", "ms/query", "speedup"],
            rows,
            title=(
                f"Executor strategies — {self.num_queries} queries against "
                f"{self.db_rows} fingerprints (alpha={self.alpha}, "
                f"depth={self.depth})"
            ),
        )
        lines = [table]
        if self.processes_seconds is None:
            lines.append(
                "processes: unavailable (no shared memory on this host)"
            )
        else:
            lines.append(
                f"processes over threads: {self.processes_over_threads:.2f}x"
                f" — zero-copy transport: "
                f"{self.fingerprint_bytes_serialized} fingerprint bytes "
                f"serialized across {self.tasks} tasks "
                f"({self.rows_gathered} rows gathered in shared arenas)"
            )
        lines.append(
            f"bit-identical across strategies: {self.bit_identical_results}"
        )
        if self.planner is not None:
            p = self.planner
            lines.append(
                f"planner: cold={p['cold_strategy']} "
                f"warmed={p['warmed_strategy']} (fixed rule: "
                f"{p['fixed_strategy']}) — planned "
                f"{p['planned_seconds']:.3f}s vs fixed "
                f"{p['fixed_seconds']:.3f}s"
            )
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "config": {
                "db_rows": self.db_rows,
                "num_queries": self.num_queries,
                "batch_size": self.batch_size,
                "workers": self.workers,
                "alpha": self.alpha,
                "depth": self.depth,
                "sigma": self.sigma,
                "ndims": self.ndims,
            },
            "timing": {
                "serial_seconds": self.serial_seconds,
                "threads_seconds": self.threads_seconds,
                "processes_seconds": self.processes_seconds,
                "pool_build_seconds": self.pool_build_seconds,
                "threads_speedup": self.threads_speedup,
                "processes_speedup": self.processes_speedup,
                "processes_over_threads": self.processes_over_threads,
            },
            "transport": {
                "available": self.processes_available,
                "fingerprint_bytes_serialized":
                    self.fingerprint_bytes_serialized,
                "rows_gathered": self.rows_gathered,
                "tasks": self.tasks,
                "worker_deaths": self.worker_deaths,
            },
            "equivalence": {
                "bit_identical_results": self.bit_identical_results,
            },
            "planner": self.planner,
        }


@dataclass
class ParallelScanSuiteResult:
    """The full sweep: one :class:`ParallelScanBenchResult` per row scale."""

    cpu_count: Optional[int]
    scales: list[ParallelScanBenchResult] = field(default_factory=list)

    @property
    def bit_identical_results(self) -> bool:
        return all(s.bit_identical_results for s in self.scales)

    def gate_status(self) -> str:
        """Did the >=2x GIL-escape gate run, and what did it say.

        Previously a small container passed the gate *silently* — the
        JSON was indistinguishable from a real pass.  Now the record
        says which it was: ``"passed"``, ``"failed (...)"`` or an
        explicit ``"skipped (N cores)"`` / ``"skipped (processes
        unavailable)"``.
        """
        if not self.scales:
            return "skipped (no scales ran)"
        big = self.scales[-1]
        if not big.processes_available:
            return "skipped (processes unavailable)"
        if (self.cpu_count or 1) < GATE_MIN_CORES:
            return f"skipped ({self.cpu_count or 1} cores)"
        factor = big.processes_over_threads
        if factor >= GATE_MIN_SPEEDUP:
            return "passed"
        return (
            f"failed ({factor:.2f}x processes-over-threads, "
            f"needs >= {GATE_MIN_SPEEDUP:.1f}x)"
        )

    def planner_gate_status(self) -> str:
        """Does the measured planner beat or tie the fixed rule.

        At every scale the strategy the warmed planner picks must land
        within :data:`PLANNER_GATE_TOLERANCE` of the strategy the
        legacy fixed thresholds would have run.
        """
        compared = [s for s in self.scales if s.planner is not None]
        if not compared:
            return "skipped (no planner comparison ran)"
        for scale in compared:
            p = scale.planner
            if p["planned_seconds"] > (
                p["fixed_seconds"] * PLANNER_GATE_TOLERANCE
            ):
                return (
                    f"failed ({scale.db_rows} rows: planned "
                    f"{p['warmed_strategy']} {p['planned_seconds']:.3f}s "
                    f"vs fixed {p['fixed_strategy']} "
                    f"{p['fixed_seconds']:.3f}s)"
                )
        return "passed"

    def render(self) -> str:
        parts = [s.render() for s in self.scales]
        parts.append(
            f"cpu_count: {self.cpu_count}\n"
            f"gate: {self.gate_status()}\n"
            f"planner gate: {self.planner_gate_status()}"
        )
        return "\n\n".join(parts)

    def to_json(self) -> dict:
        """The machine-readable record (see docs/parallel-execution.md)."""
        return {
            "benchmark": "parallel_scan",
            "schema_version": SCHEMA_VERSION,
            "cpu_count": self.cpu_count,
            "host": host_block(),
            "gate": self.gate_status(),
            "planner_gate": self.planner_gate_status(),
            "scales": [s.to_json() for s in self.scales],
        }

    def write_json(self, path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return path


def _result_key(result) -> tuple:
    return (
        result.rows.tobytes(),
        result.ids.tobytes(),
        result.timecodes.tobytes(),
        result.fingerprints.tobytes(),
    )


def _timed_run(index, queries, alpha, batch_size, executor_kwargs):
    """Deterministic batched run: cache reset per batch, like the engine
    bench — every strategy repeats the exact same cold-start searches."""
    with BatchQueryExecutor(
        index, alpha, batch_size=batch_size, **executor_kwargs
    ) as executor:
        build_seconds = None
        if executor_kwargs.get("executor") == "processes":
            t0 = time.perf_counter()
            executor.warm()
            build_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        results = []
        for start in range(0, queries.shape[0], batch_size):
            index.reset_threshold_cache()
            results.extend(
                executor.query_batch(queries[start:start + batch_size])
            )
        elapsed = time.perf_counter() - t0
        stats = executor.pool_stats()
    return results, elapsed, build_seconds, stats


def _planner_comparison(
    serial_results,
    timings: dict,
    db_rows: int,
    batch_size: int,
    num_queries: int,
    workers: int,
    can_processes: bool,
) -> dict:
    """Compare the measured planner against the legacy fixed rule.

    Plans twice: **cold** with the startup micro-calibration alone, and
    **warmed** after folding each strategy's measured per-batch timing
    back in through :meth:`Calibration.observe` — the same rolling
    refresh the engine applies from its own serve stats.  The warmed
    decision is the one the gate judges, against the strategy the fixed
    row/cpu thresholds would have run; both sides are scored with the
    timings actually measured above, so the comparison never trusts the
    model it is auditing.
    """
    n_batches = max(1, -(-num_queries // batch_size))
    rows_per_batch = int(
        sum(r.stats.rows_scanned for r in serial_results) / n_batches
    )
    cpus = os.cpu_count() or 1
    kwargs = dict(
        workers=workers, index_rows=db_rows, can_processes=can_processes,
    )
    cold = choose_executor(
        rows_per_batch, batch_size, cpus,
        calibration=get_calibration(), **kwargs,
    )
    cal = get_calibration()
    for strategy, seconds in timings.items():
        for _ in range(_OBSERVE_ROUNDS):
            cal = cal.observe(strategy, rows_per_batch, seconds / n_batches)
    warmed = choose_executor(
        rows_per_batch, batch_size, cpus, calibration=cal, **kwargs,
    )
    fixed = choose_executor(
        rows_per_batch, batch_size, cpus, mode="fixed", **kwargs,
    )
    # "serial" was timed as workers=1 threads — same single-shard path.
    planned_seconds = timings[warmed.strategy]
    fixed_seconds = timings.get(
        fixed.strategy, timings.get("threads", timings["serial"])
    )
    return {
        "rows_per_batch": rows_per_batch,
        "cold_strategy": cold.strategy,
        "warmed_strategy": warmed.strategy,
        "fixed_strategy": fixed.strategy,
        "planned_seconds": planned_seconds,
        "fixed_seconds": fixed_seconds,
        "within_tolerance": bool(
            planned_seconds <= fixed_seconds * PLANNER_GATE_TOLERANCE
        ),
        "predicted_ns": {
            k: round(v, 1)
            for k, v in cal.predict_ns(rows_per_batch, workers).items()
        },
    }


def run_parallel_scan(
    db_rows: int = 50_000,
    num_queries: int = 256,
    batch_size: int = 64,
    workers: int = 4,
    alpha: float = 0.8,
    sigma: float = 10.0,
    seed: SeedLike = 0,
    parallel_gather_min_rows: Optional[int] = None,
) -> ParallelScanBenchResult:
    """Benchmark one row scale under serial / threads / processes.

    Builds a *db_rows* synthetic corpus, simulates a candidate clip of
    referenced key-frames under the distortion model, runs the same
    deterministic workload under each strategy and verifies all three
    produce bit-identical results.
    """
    rng = resolve_rng(seed)
    corpus = build_reference_corpus(8, 120, seed=rng)
    store = scale_store(corpus.store, db_rows, rng=rng)
    model = NormalDistortionModel(store.ndims, sigma)
    index = S3Index(store, model=model)

    base_rows = np.arange(num_queries) % len(corpus.store)
    queries = np.clip(
        corpus.store.fingerprints[base_rows].astype(np.float64)
        + model.sample(num_queries, rng=rng),
        0.0, 255.0,
    )

    common = dict(parallel_gather_min_rows=parallel_gather_min_rows)
    serial_results, serial_seconds, _, _ = _timed_run(
        index, queries, alpha, batch_size,
        dict(workers=1, executor="threads", **common),
    )
    thread_results, threads_seconds, _, _ = _timed_run(
        index, queries, alpha, batch_size,
        dict(workers=workers, executor="threads", **common),
    )
    if shared_memory_available():
        proc_results, processes_seconds, pool_build, pool_stats = _timed_run(
            index, queries, alpha, batch_size,
            dict(workers=workers, executor="processes", **common),
        )
    else:  # pragma: no cover - host without /dev/shm
        proc_results, processes_seconds, pool_build, pool_stats = (
            None, None, None, None
        )

    timings = {
        "serial": serial_seconds, "threads": threads_seconds,
    }
    if processes_seconds is not None:
        timings["processes"] = processes_seconds
    planner = _planner_comparison(
        serial_results, timings, len(store), batch_size, num_queries,
        workers, shared_memory_available(),
    )

    serial_keys = [_result_key(r) for r in serial_results]
    bit_identical = serial_keys == [_result_key(r) for r in thread_results]
    if proc_results is not None:
        bit_identical = bit_identical and serial_keys == [
            _result_key(r) for r in proc_results
        ]
    pool_stats = pool_stats or {}

    return ParallelScanBenchResult(
        db_rows=len(store),
        num_queries=num_queries,
        batch_size=batch_size,
        workers=workers,
        alpha=alpha,
        depth=index.depth,
        sigma=sigma,
        ndims=store.ndims,
        serial_seconds=serial_seconds,
        threads_seconds=threads_seconds,
        processes_seconds=processes_seconds,
        pool_build_seconds=pool_build,
        bit_identical_results=bit_identical,
        fingerprint_bytes_serialized=pool_stats.get(
            "fingerprint_bytes_serialized"
        ),
        rows_gathered=pool_stats.get("rows_gathered"),
        tasks=pool_stats.get("tasks"),
        worker_deaths=pool_stats.get("worker_deaths"),
        planner=planner,
    )


def run_parallel_scan_suite(
    row_scales: Sequence[int] = (50_000, 500_000),
    num_queries: int = 256,
    batch_size: int = 64,
    workers: int = 4,
    alpha: float = 0.8,
    sigma: float = 10.0,
    seed: SeedLike = 0,
    parallel_gather_min_rows: Optional[int] = None,
    json_path: Optional[Path] = None,
) -> ParallelScanSuiteResult:
    """Run :func:`run_parallel_scan` at each scale and serialise the sweep."""
    suite = ParallelScanSuiteResult(cpu_count=os.cpu_count())
    for db_rows in row_scales:
        suite.scales.append(
            run_parallel_scan(
                db_rows=db_rows,
                num_queries=num_queries,
                batch_size=batch_size,
                workers=workers,
                alpha=alpha,
                sigma=sigma,
                seed=seed,
                parallel_gather_min_rows=parallel_gather_min_rows,
            )
        )
    if json_path is not None:
        suite.write_json(json_path)
    return suite
