"""Fig. 3 — retrieval rate ``R`` vs. statistical-query expectation ``α``.

Validation of the i.i.d. normal distortion model on *real* distorted
fingerprints (paper §IV-C): the transformation is a combination of
resizing, gamma modification, noise addition and a 1-pixel interest-point
imprecision.  The model's σ is calibrated on that transformation; then, for
a sweep of α, distorted fingerprints are submitted as statistical queries
and ``R(α)`` is the fraction whose original fingerprint appears in the
results.  The paper validates the model because ``|R − α|`` never exceeds
7 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..corpus.filler import scale_store
from ..distortion.model import NormalDistortionModel
from ..errors import ConfigurationError
from ..fingerprint.calibration import collect_pairs
from ..fingerprint.extractor import FingerprintExtractor
from ..index.s3 import S3Index
from ..index.store import FingerprintStore
from ..rng import SeedLike, resolve_rng
from ..video.synthetic import generate_corpus
from ..video.transforms import Compose, Gamma, GaussianNoise, Resize, Transform
from .common import Series, format_table


def combined_transform(seed: int = 12345) -> Transform:
    """The paper's §IV-C validation transformation."""
    return Compose([Resize(0.9), Gamma(1.5), GaussianNoise(5.0, seed=seed)])


@dataclass
class Fig3Result:
    """R(α) sweep of Fig. 3, with the calibrated σ̂ and max |R − α|."""

    sigma_hat: float
    alphas: list[float]
    retrieval: Series
    max_error: float
    num_queries: int

    def render(self) -> str:
        rows = [
            (a * 100, r * 100, (r - a) * 100)
            for a, r in zip(self.retrieval.x, self.retrieval.y)
        ]
        table = format_table(
            ["alpha (%)", "retrieval R (%)", "R - alpha (pts)"],
            rows,
            title=(
                f"Fig. 3 — model validation (sigma_hat={self.sigma_hat:.2f}, "
                f"{self.num_queries} queries)"
            ),
        )
        return table + (
            f"\nmax |R - alpha| = {self.max_error * 100:.1f} pts "
            "(paper: <= 7 pts)"
        )


def run_fig3(
    alphas: Sequence[float] = (0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95),
    num_clips: int = 4,
    frames_per_clip: int = 100,
    db_rows: int = 50_000,
    transform: Transform | None = None,
    delta_pix: float = 1.0,
    max_queries: int = 400,
    exact_blocks: bool = True,
    model_kind: str = "normal",
    seed: SeedLike = 0,
) -> Fig3Result:
    """Reproduce Fig. 3 at laptop scale.

    The reference fingerprints go into a filler-scaled database of
    *db_rows* rows; their distorted versions are the queries.

    ``exact_blocks=True`` (default) selects blocks with the best-first
    search so the selection's probability mass is *exactly* α — the figure
    validates the distortion model, and the production threshold
    iteration's tendency to overshoot coverage at low α would mask the
    model error being measured.
    """
    rng = resolve_rng(seed)
    transform = transform if transform is not None else combined_transform()
    clips = generate_corpus(num_clips, frames_per_clip, seed=rng)
    extractor = FingerprintExtractor()
    pairs = collect_pairs(
        clips, transform, extractor=extractor, delta_pix=delta_pix, rng=rng
    )
    estimate = pairs.estimate()
    sigma_hat = estimate.sigma
    if model_kind == "normal":
        model = NormalDistortionModel(pairs.reference.shape[1], sigma_hat)
    elif model_kind == "empirical":
        # The sec VI refinement: empirical marginals track alpha much more
        # tightly than the single-sigma normal on heavy-tailed distortions.
        model = pairs.empirical_model()
    else:
        raise ConfigurationError(
            f"model_kind must be 'normal' or 'empirical', got {model_kind!r}"
        )

    keep = min(len(pairs), max_queries)
    sel = resolve_rng(rng).permutation(len(pairs))[:keep]
    originals = pairs.reference[sel]
    queries = pairs.distorted[sel].astype(np.float64)

    base = FingerprintStore(
        fingerprints=originals,
        ids=np.zeros(keep, dtype=np.uint32),
        timecodes=np.arange(keep, dtype=np.float64),
    )
    store = scale_store(base, db_rows, rng=rng)
    index = S3Index(store, model=model)

    retrieval = Series("retrieval rate")
    max_error = 0.0
    for alpha in alphas:
        hits = 0
        for i in range(keep):
            result = index.statistical_query(
                queries[i], alpha, exact_blocks=exact_blocks
            )
            if len(result) and np.any(
                np.all(result.fingerprints == originals[i], axis=1)
            ):
                hits += 1
        rate = hits / keep
        retrieval.add(alpha, rate)
        max_error = max(max_error, abs(rate - alpha))

    return Fig3Result(
        sigma_hat=sigma_hat,
        alphas=list(alphas),
        retrieval=retrieval,
        max_error=max_error,
        num_queries=keep,
    )
