"""Sharded cluster — scatter-gather serving vs one node, under failure.

The cluster acceptance run: plan a sealed corpus into shards, launch the
full stack (supervisor-managed replica servers plus the scatter-gather
router), and drive it like the deployed service would be driven:

* **identity** — a query batch served through the router must come back
  bit-identical to the single-node engine's
  ``statistical_query_batch`` over the unsharded index;
* **storm** — concurrent wire clients stream mixed query/ingest
  traffic while one replica is killed outright (SIGKILL in process
  mode); the run records every client-visible error, and the accepted
  outcome is **none** — failover plus shard-side ingest dedupe absorb
  the loss;
* **bookkeeping** — per-shard fanout/skip/failover counters and
  supervisor restarts, so a regression in routing or healing shows up
  in the JSON (``BENCH_cluster.json``), not just in wall-clock.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

import numpy as np

from ..cluster.plan import ClusterManifest, plan_cluster
from ..cluster.router import ClusterRouter, RouterConfig
from ..cluster.supervisor import ClusterSupervisor
from ..corpus.builder import build_reference_corpus
from ..corpus.filler import scale_store
from ..distortion.model import NormalDistortionModel
from ..index.segmented.lsm import SegmentedS3Index
from ..rng import SeedLike, resolve_rng
from ..serve.client import ServeClient
from ..serve.runner import ServiceThread
from ..serve.server import ServeConfig
from .common import format_table, host_block

SCHEMA_VERSION = 2


@dataclass
class ClusterBenchResult:
    """One cluster run: identity check, storm outcome, counters."""

    db_rows: int
    num_shards: int
    replicas: int
    mode: str
    num_clients: int
    requests_per_client: int
    alpha: float
    sigma: float
    identity_queries: int
    bit_identical: bool
    requests_sent: int
    request_errors: list = field(default_factory=list)
    replica_killed: bool = False
    supervisor_restarts: int = 0
    shard_fanouts: list = field(default_factory=list)
    shard_skips: list = field(default_factory=list)
    shard_failovers: list = field(default_factory=list)
    storm_seconds: float = 0.0
    startup_seconds: float = 0.0

    @property
    def zero_client_errors(self) -> bool:
        return not self.request_errors

    def render(self) -> str:
        rows = [
            (f"shard {i}", fan, skip, fo)
            for i, (fan, skip, fo) in enumerate(zip(
                self.shard_fanouts, self.shard_skips,
                self.shard_failovers,
            ))
        ]
        table = format_table(
            ["shard", "fanouts", "skips", "failovers"],
            rows,
            title=(
                f"Cluster {self.num_shards} shard(s) x {self.replicas} "
                f"replica(s) ({self.mode}) over {self.db_rows} rows"
            ),
        )
        lines = [
            table,
            f"bit-identical to single node over {self.identity_queries} "
            f"queries: {self.bit_identical}",
            f"storm: {self.requests_sent} requests from "
            f"{self.num_clients} client(s) in {self.storm_seconds:.2f}s, "
            f"{len(self.request_errors)} client-visible error(s)"
            + (" [replica SIGKILLed mid-storm]"
               if self.replica_killed else ""),
            f"supervisor restarts: {self.supervisor_restarts} "
            f"(startup {self.startup_seconds:.1f}s)",
        ]
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "benchmark": "cluster",
            "schema_version": SCHEMA_VERSION,
            "host": host_block(),
            "config": {
                "db_rows": self.db_rows,
                "num_shards": self.num_shards,
                "replicas": self.replicas,
                "mode": self.mode,
                "num_clients": self.num_clients,
                "requests_per_client": self.requests_per_client,
                "alpha": self.alpha,
                "sigma": self.sigma,
            },
            "equivalence": {
                "identity_queries": self.identity_queries,
                "bit_identical": self.bit_identical,
            },
            "storm": {
                "requests_sent": self.requests_sent,
                "client_errors": self.request_errors,
                "zero_client_errors": self.zero_client_errors,
                "replica_killed": self.replica_killed,
                "seconds": self.storm_seconds,
            },
            "routing": {
                "fanouts": self.shard_fanouts,
                "skips": self.shard_skips,
                "failovers": self.shard_failovers,
                "supervisor_restarts": self.supervisor_restarts,
            },
            "startup_seconds": self.startup_seconds,
        }

    def write_json(self, path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return path


def _build_source(directory: Path, db_rows: int, sigma: float,
                  num_segments: int, seed) -> np.ndarray:
    """Seal *db_rows* clustered fingerprints into *num_segments* runs."""
    rng = resolve_rng(seed)
    corpus = build_reference_corpus(
        num_videos=4, frames_per_video=60, seed=rng
    )
    store = scale_store(corpus.store, db_rows, rng=rng)
    chunk = max(1, (len(store) + num_segments - 1) // num_segments)
    index = SegmentedS3Index.create(
        directory,
        ndims=store.ndims,
        model=NormalDistortionModel(store.ndims, sigma),
        flush_rows=chunk,
        auto_compact=False,
    )
    for start in range(0, len(store), chunk):
        end = start + chunk
        index.add(
            store.fingerprints[start:end],
            store.ids[start:end],
            store.timecodes[start:end],
        )
    index.flush()
    index.close()
    return np.asarray(store.fingerprints)


def run_cluster_bench(
    db_rows: int = 50_000,
    num_shards: int = 2,
    replicas: int = 2,
    num_clients: int = 4,
    requests_per_client: int = 9,
    identity_queries: int = 16,
    alpha: float = 0.8,
    sigma: float = 10.0,
    seed: SeedLike = 0,
    mode: str = "process",
    kill_replica_mid_storm: bool = True,
    work_dir: Optional[Path] = None,
    json_path: Optional[Path] = None,
) -> ClusterBenchResult:
    """Run the full cluster acceptance scenario; see the module docstring.

    ``mode="process"`` (the default, and what CI runs) gives every
    replica its own interpreter and exercises real SIGKILL healing;
    ``mode="thread"`` is the fast in-process variant.
    """
    rng = resolve_rng(seed)
    owned_tmp = work_dir is None
    work_dir = Path(work_dir or tempfile.mkdtemp(prefix="cluster-bench-"))
    try:
        return _run(
            work_dir, db_rows, num_shards, replicas, num_clients,
            requests_per_client, identity_queries, alpha, sigma, rng,
            mode, kill_replica_mid_storm, json_path,
        )
    finally:
        if owned_tmp:
            shutil.rmtree(work_dir, ignore_errors=True)


def _run(
    work_dir, db_rows, num_shards, replicas, num_clients,
    requests_per_client, identity_queries, alpha, sigma, rng,
    mode, kill_replica_mid_storm, json_path,
) -> ClusterBenchResult:
    source = work_dir / "source"
    fingerprints = _build_source(
        source, db_rows, sigma,
        num_segments=max(2 * num_shards, 4), seed=rng,
    )
    cluster_dir = work_dir / "cluster"
    plan_cluster(source, cluster_dir, num_shards=num_shards,
                 replicas=replicas)

    picks = rng.integers(0, fingerprints.shape[0], size=identity_queries)
    queries = fingerprints[picks].astype(np.float64)
    queries += rng.normal(0.0, 2.0, queries.shape)

    # Single-node baseline from the same cold-cache state the serving
    # path uses (the micro-batcher resets the cache per engine batch).
    with SegmentedS3Index.open(
        source, auto_compact=False, mmap=True
    ) as index:
        index.reset_threshold_cache()
        baseline = index.statistical_query_batch(queries, alpha)

    t0 = time.perf_counter()
    supervisor = ClusterSupervisor(
        cluster_dir,
        mode=mode,
        serve_config=ServeConfig(port=0, alpha=alpha),
        extra_serve_args=["--alpha", str(alpha)],
    ).start()
    result = ClusterBenchResult(
        db_rows=db_rows,
        num_shards=num_shards,
        replicas=replicas,
        mode=mode,
        num_clients=num_clients,
        requests_per_client=requests_per_client,
        alpha=alpha,
        sigma=sigma,
        identity_queries=identity_queries,
        bit_identical=False,
        requests_sent=0,
    )
    try:
        router = ClusterRouter(
            ClusterManifest.load(cluster_dir),
            supervisor.endpoints(),
            RouterConfig(port=0, alpha=alpha),
        )
        with ServiceThread(router) as thread:
            result.startup_seconds = time.perf_counter() - t0
            port = thread.port
            with ServeClient(port=port, timeout=60.0) as client:
                served = client.query(queries)
                result.bit_identical = all(
                    np.array_equal(b.rows, s.rows)
                    and np.array_equal(b.ids, s.ids)
                    and np.array_equal(b.timecodes, s.timecodes)
                    for b, s in zip(baseline, served)
                ) and len(baseline) == len(served)

                _storm(
                    result, port, queries, fingerprints, rng,
                    supervisor, kill_replica_mid_storm,
                )

                stats = client.stats()["cluster"]["per_shard"]
                result.shard_fanouts = [s["fanouts"] for s in stats]
                result.shard_skips = [s["skips"] for s in stats]
                result.shard_failovers = [s["failovers"] for s in stats]
                result.supervisor_restarts = sum(
                    h["restarts"] for h in supervisor.status()
                )
    finally:
        supervisor.stop()
    if json_path is not None:
        result.write_json(json_path)
    return result


def _storm(
    result, port, queries, fingerprints, rng, supervisor, kill_mid_storm
) -> None:
    """Concurrent mixed query/ingest clients racing one replica kill."""
    ndims = fingerprints.shape[1]
    errors: list = []
    sent = [0] * result.num_clients
    barrier = threading.Barrier(result.num_clients + 1)

    def run_client(idx: int) -> None:
        local = np.random.default_rng(1000 + idx)
        with ServeClient(port=port, timeout=60.0, retries=8) as client:
            barrier.wait()
            for i in range(result.requests_per_client):
                try:
                    if i % 3 == 2:
                        fresh = local.integers(
                            0, 256, size=(2, ndims), dtype=np.uint8
                        ).astype(np.float64)
                        client.ingest(
                            fresh,
                            np.arange(2) + 9000 + idx,
                            np.zeros(2),
                        )
                    else:
                        client.query(queries[: 1 + (i % 4)])
                    sent[idx] += 1
                except Exception as exc:  # noqa: BLE001 - recorded
                    errors.append(f"client {idx} req {i}: {exc!r}")
                # A small stagger keeps the storm overlapping the kill.
                time.sleep(0.02)

    threads = [
        threading.Thread(target=run_client, args=(idx,))
        for idx in range(result.num_clients)
    ]
    for thread in threads:
        thread.start()
    t0 = time.perf_counter()
    barrier.wait()
    if kill_mid_storm:
        time.sleep(0.3)
        supervisor.kill_replica(0, 0)
        result.replica_killed = True
    for thread in threads:
        thread.join()
    result.storm_seconds = time.perf_counter() - t0
    result.requests_sent = sum(sent)
    result.request_errors = errors
