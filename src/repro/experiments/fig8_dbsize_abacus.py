"""Fig. 8 — detection-rate abacuses vs. transformation severity, by DB size.

The paper fixes α = 80 % and evaluates the complete CBCD system on
databases of 110 / 875 / 3500 / 10000 hours.  Headline result: **the
database size barely affects the detection rate** — the statistical query
guarantees the same expectation whatever the size, and the voting strategy
absorbs the extra false matches a denser database produces.  The
accompanying table shows the single-fingerprint search time growing
(sub-linearly) with the size.

Our ladder uses filler-scaled row counts (DESIGN.md §2); the claim under
test is the *flatness across sizes* of each severity curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..rng import SeedLike
from .abacus import (
    AbacusResult,
    AbacusSetup,
    build_setup,
    make_detector,
    sweep_transforms_shared,
)


@dataclass
class Fig8Result:
    """Fig. 8 abacuses; `max_rate_spread` quantifies the flatness claim."""

    alpha: float
    db_sizes: list[int]
    abacus: AbacusResult

    def render(self) -> str:
        return self.abacus.render() + (
            "\nExpected shape: detection-rate curves nearly identical "
            "across DB sizes; search time grows sub-linearly with size."
        )

    def max_rate_spread(self) -> float:
        """Largest detection-rate spread across sizes at equal severity."""
        spread = 0.0
        keys = {(c.family, c.severity) for c in self.abacus.cells}
        for family, severity in keys:
            rates = [
                c.detection_rate
                for c in self.abacus.cells
                if c.family == family and c.severity == severity
            ]
            if len(rates) > 1:
                spread = max(spread, max(rates) - min(rates))
        return spread


def run_fig8(
    db_sizes: Sequence[int] = (20_000, 80_000, 320_000),
    alpha: float = 0.8,
    setup: AbacusSetup | None = None,
    decision_threshold: int = 5,
    seed: SeedLike = 0,
) -> Fig8Result:
    """Reproduce Fig. 8 at laptop scale (α fixed, DB size swept)."""
    setup = setup if setup is not None else build_setup(seed=seed)
    abacus = AbacusResult(
        title=f"Fig. 8 — DB-size abacuses (alpha={alpha * 100:.0f}%)"
    )
    detectors = {
        f"{size} rows": make_detector(
            setup, size, alpha, decision_threshold=decision_threshold
        )
        for size in sorted(db_sizes)
    }
    abacus.cells = sweep_transforms_shared(detectors, setup.candidates)
    for label in detectors:
        cells = [c for c in abacus.cells if c.config_label == label]
        abacus.search_times[label] = float(
            np.mean([c.mean_search_seconds for c in cells])
        )
    return Fig8Result(alpha=alpha, db_sizes=sorted(db_sizes), abacus=abacus)
