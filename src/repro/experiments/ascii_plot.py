"""Terminal line plots for the experiment figures.

The paper's evaluation is all figures; the benchmark harness prints the
same series as text tables *and* as compact ASCII charts so the shape —
crossovers, slopes, plateaus — is visible straight from ``pytest -s``
output without a plotting stack.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError
from .common import Series

_MARKERS = "ox+*#@"


def render_plot(
    series: list[Series],
    width: int = 64,
    height: int = 16,
    logx: bool = False,
    logy: bool = False,
    title: str | None = None,
) -> str:
    """Render one or more series as an ASCII scatter/line chart.

    Each series gets its own marker; the legend maps markers to names.
    Log axes are supported for the paper's log-log scaling figures.
    """
    series = [s for s in series if len(s) > 0]
    if not series:
        raise ConfigurationError("nothing to plot: all series empty")
    if width < 16 or height < 4:
        raise ConfigurationError("plot must be at least 16x4 characters")

    def fx(v: float) -> float:
        if logx:
            if v <= 0:
                raise ConfigurationError("log x-axis requires positive x")
            return math.log10(v)
        return v

    def fy(v: float) -> float:
        if logy:
            if v <= 0:
                raise ConfigurationError("log y-axis requires positive y")
            return math.log10(v)
        return v

    xs = [fx(x) for s in series for x in s.x]
    ys = [fy(y) for s in series for y in s.y]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, s in enumerate(series):
        marker = _MARKERS[si % len(_MARKERS)]
        for x, y in zip(s.x, s.y):
            col = int((fx(x) - x_lo) / x_span * (width - 1))
            row = int((fy(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{10**y_hi:.3g}" if logy else f"{y_hi:.3g}"
    bottom_label = f"{10**y_lo:.3g}" if logy else f"{y_lo:.3g}"
    label_width = max(len(top_label), len(bottom_label))
    for i, row in enumerate(grid):
        if i == 0:
            label = top_label.rjust(label_width)
        elif i == height - 1:
            label = bottom_label.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    left = f"{10**x_lo:.3g}" if logx else f"{x_lo:.3g}"
    right = f"{10**x_hi:.3g}" if logx else f"{x_hi:.3g}"
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    gap = max(width - len(left) - len(right), 1)
    lines.append(" " * (label_width + 2) + left + " " * gap + right)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {s.name}" for i, s in enumerate(series)
    )
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)
