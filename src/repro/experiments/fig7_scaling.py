"""Fig. 7 — mean search time vs. database size: S³ vs. sequential scan.

The paper grows the database exponentially from ~77 k to ~1.5 G
fingerprints: the sequential scan is linear throughout, while the S³
search stays sub-linear (constant log-log slope < 1) until the pseudo-disk
regime adds a linear component; at the largest size the gain exceeds
×2500.  At our scale the same protocol (exponential ladder, α = 80 %,
σ = 20, ε matched to the same expectation) reproduces the *shape*: linear
scan vs. sub-linear S³ with an exponentially growing gain.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..corpus.workload import stream_queries
from ..distortion.model import NormalDistortionModel
from ..distortion.radial import radius_for_expectation
from ..index.s3 import S3Index
from ..index.seqscan import SequentialScanIndex
from ..index.vafile import VAFile
from ..rng import SeedLike, resolve_rng
from .common import Series, format_table
from .fig56_alpha_sweep import _synthetic_store


@dataclass
class ScalingRow:
    """One DB size of Fig. 7: per-method mean search times."""

    db_rows: int
    s3_seconds: float
    scan_seconds: float
    vafile_seconds: float
    s3_rows_scanned: float

    @property
    def gain(self) -> float:
        """Sequential-scan time over S³ time (the paper's "gain")."""
        if self.s3_seconds <= 0:
            return float("inf")
        return self.scan_seconds / self.s3_seconds


@dataclass
class Fig7Result:
    """The scaling ladder of Fig. 7 with fitted log-log slopes."""

    alpha: float
    sigma: float
    epsilon: float
    rows: list[ScalingRow]
    s3_series: Series
    scan_series: Series

    def render(self) -> str:
        body = [
            (
                r.db_rows,
                r.s3_seconds * 1e3,
                r.scan_seconds * 1e3,
                r.vafile_seconds * 1e3,
                r.gain,
                r.s3_rows_scanned,
            )
            for r in self.rows
        ]
        table = format_table(
            [
                "DB rows", "S3 (ms)", "seq scan (ms)", "VA-file (ms)",
                "gain", "S3 rows scanned",
            ],
            body,
            title=(
                f"Fig. 7 — search time vs DB size (alpha={self.alpha*100:.0f}%, "
                f"sigma={self.sigma}, eps={self.epsilon:.1f})"
            ),
        )
        from .ascii_plot import render_plot

        figure = render_plot(
            [self.s3_series, self.scan_series],
            width=56, height=12, logx=True, logy=True,
            title="\nFig. 7 — mean search time (s) vs DB size (log-log)",
        )
        return table + "\n" + figure + (
            "\nExpected shape: sequential scan linear in DB size; S3 "
            "sub-linear with a growing gain (paper reaches x2500)."
        )

    def loglog_slopes(self) -> tuple[float, float]:
        """Fitted log-log slopes (S³, scan); scan ≈ 1, S³ < 1."""
        sizes = np.log([r.db_rows for r in self.rows])
        s3 = np.log([max(r.s3_seconds, 1e-9) for r in self.rows])
        scan = np.log([max(r.scan_seconds, 1e-9) for r in self.rows])
        s3_slope = float(np.polyfit(sizes, s3, 1)[0])
        scan_slope = float(np.polyfit(sizes, scan, 1)[0])
        return s3_slope, scan_slope


def run_fig7(
    db_sizes: Sequence[int] = (10_000, 40_000, 160_000, 640_000),
    num_queries: int = 60,
    num_scan_queries: int = 8,
    alpha: float = 0.8,
    sigma: float = 20.0,
    seed: SeedLike = 0,
) -> Fig7Result:
    """Reproduce Fig. 7 at laptop scale (exponential DB ladder)."""
    rng = resolve_rng(seed)
    epsilon = radius_for_expectation(alpha, 20, sigma)
    model = NormalDistortionModel(20, sigma)

    # One big store; each ladder rung takes a prefix, like the paper's
    # nested databases of exponentially growing size.
    full = _synthetic_store(max(db_sizes), rng)
    queries = stream_queries(full, num_queries, rng=rng)

    rows: list[ScalingRow] = []
    s3_series = Series("statistical method")
    scan_series = Series("sequential scan")
    for size in sorted(db_sizes):
        store = full.row_slice(0, size)
        index = S3Index(store, model=model)
        scan = SequentialScanIndex(store)
        vafile = VAFile(store, bits=4)

        t0 = time.perf_counter()
        scanned = 0
        for q in queries:
            result = index.statistical_query(q, alpha)
            scanned += result.stats.rows_scanned
        s3_seconds = (time.perf_counter() - t0) / num_queries

        t0 = time.perf_counter()
        for q in queries[:num_scan_queries]:
            scan.range_query(q, epsilon)
        scan_seconds = (time.perf_counter() - t0) / num_scan_queries

        # VA-file: the related-work "improved sequential technique"; its
        # approximation scan is still linear in the DB size.
        t0 = time.perf_counter()
        for q in queries[:num_scan_queries]:
            vafile.range_query(q, epsilon)
        vafile_seconds = (time.perf_counter() - t0) / num_scan_queries

        row = ScalingRow(
            db_rows=size,
            s3_seconds=s3_seconds,
            scan_seconds=scan_seconds,
            vafile_seconds=vafile_seconds,
            s3_rows_scanned=scanned / num_queries,
        )
        rows.append(row)
        s3_series.add(size, s3_seconds)
        scan_series.add(size, scan_seconds)

    return Fig7Result(
        alpha=alpha,
        sigma=sigma,
        epsilon=epsilon,
        rows=rows,
        s3_series=s3_series,
        scan_series=scan_series,
    )
