"""Segmented live index — ingestion throughput and query-latency cost.

The paper's deployment keeps referencing new broadcast material "more
than 20,000 hours of archives" strong; with a monolithic
:class:`~repro.index.s3.S3Index` every insertion batch forces a full
curve re-sort of the archive.  The segmented index
(:mod:`repro.index.segmented`) amortises that: batches land in a
WAL-backed memtable, seal into sorted segments, and compaction bounds
the segment count.

This experiment measures the trade on one corpus:

* **ingestion throughput** — rows/second of streaming batches into the
  segmented index (including flushes and auto-compaction) versus
  rebuilding a monolithic index from scratch after every batch, the
  only way a static index stays queryable while growing;
* **query-latency degradation** — mean statistical-query latency
  against the same data held in 1, 2, 4, ... sealed segments, versus
  the monolithic baseline, quantifying the fan-out cost per extra
  segment.

Durability fsyncs are disabled (``sync=False``) so both sides measure
indexing work, not disk-flush stalls.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..corpus.builder import build_reference_corpus
from ..corpus.filler import scale_store
from ..distortion.model import NormalDistortionModel
from ..index.s3 import S3Index
from ..index.segmented import CompactionPolicy, SegmentedS3Index
from ..rng import SeedLike, resolve_rng
from .common import format_table


@dataclass
class LatencyPoint:
    """Mean statistical-query latency at one segment count."""

    num_segments: int
    mean_ms: float


@dataclass
class SegmentedIngestResult:
    """Throughput and latency series of the ingestion experiment."""

    total_rows: int
    batch_rows: int
    num_batches: int
    segmented_seconds: float
    rebuild_seconds: float
    final_segments: int
    compactions: int
    latency: list[LatencyPoint] = field(default_factory=list)
    monolithic_ms: float = 0.0

    @property
    def segmented_rows_per_s(self) -> float:
        return self.total_rows / max(self.segmented_seconds, 1e-9)

    @property
    def rebuild_rows_per_s(self) -> float:
        return self.total_rows / max(self.rebuild_seconds, 1e-9)

    @property
    def speedup(self) -> float:
        """Segmented ingest throughput over rebuild-per-batch."""
        return self.rebuild_seconds / max(self.segmented_seconds, 1e-9)

    def render(self) -> str:
        ingest = format_table(
            ["strategy", "total s", "rows/s"],
            [
                ("segmented ingest", self.segmented_seconds,
                 self.segmented_rows_per_s),
                ("rebuild per batch", self.rebuild_seconds,
                 self.rebuild_rows_per_s),
            ],
            title=(
                f"Segmented live ingestion — {self.total_rows} rows in "
                f"{self.num_batches} batches of {self.batch_rows} "
                f"(final: {self.final_segments} segments, "
                f"{self.compactions} compactions)"
            ),
        )
        latency = format_table(
            ["segments", "mean query ms", "vs monolithic"],
            [
                (p.num_segments, p.mean_ms,
                 f"{p.mean_ms / max(self.monolithic_ms, 1e-9):.2f}x")
                for p in self.latency
            ],
            title=(
                "Query latency vs segment count "
                f"(monolithic baseline: {self.monolithic_ms:.3f} ms)"
            ),
        )
        return (
            ingest
            + f"\ningest speedup: {self.speedup:.1f}x over rebuild\n\n"
            + latency
        )


def _make_queries(
    store_fp: np.ndarray, num: int, sigma: float, rng: np.random.Generator
) -> np.ndarray:
    rows = rng.integers(0, store_fp.shape[0], size=num)
    noisy = store_fp[rows].astype(np.float64) + rng.normal(
        0.0, sigma / 2.0, size=(num, store_fp.shape[1])
    )
    return np.clip(noisy, 0.0, 255.0)


def _mean_query_ms(index, queries: np.ndarray, alpha: float) -> float:
    index.reset_threshold_cache()
    index.statistical_query(queries[0], alpha)  # warm the threshold cache
    t0 = time.perf_counter()
    for q in queries:
        index.statistical_query(q, alpha)
    return (time.perf_counter() - t0) / queries.shape[0] * 1e3


def run_segmented_ingest(
    db_rows: int = 24_000,
    num_batches: int = 16,
    segment_counts: tuple[int, ...] = (1, 2, 4, 8),
    num_queries: int = 40,
    max_segments: int = 8,
    depth: int = 16,
    sigma: float = 20.0,
    alpha: float = 0.8,
    seed: SeedLike = 0,
) -> SegmentedIngestResult:
    """Stream a corpus into the segmented index and score the trade."""
    rng = resolve_rng(seed)
    corpus = build_reference_corpus(6, 140, seed=rng)
    store = scale_store(corpus.store, db_rows, rng=rng)
    ndims = store.ndims
    batch_rows = len(store) // num_batches
    total = batch_rows * num_batches
    model = NormalDistortionModel(ndims, sigma)
    queries = _make_queries(store.fingerprints[:total], num_queries,
                            sigma, rng)

    with tempfile.TemporaryDirectory(prefix="s3-ingest-") as tmp:
        tmpdir = Path(tmp)

        # --- segmented: stream the batches in ------------------------
        index = SegmentedS3Index.create(
            tmpdir / "live", ndims=ndims, depth=depth, model=model,
            flush_rows=batch_rows,
            policy=CompactionPolicy(max_segments=max_segments),
            sync=False,
        )
        compactions = 0
        t0 = time.perf_counter()
        with index:
            for b in range(num_batches):
                lo, hi = b * batch_rows, (b + 1) * batch_rows
                before = index.num_segments
                index.add(
                    store.fingerprints[lo:hi],
                    store.ids[lo:hi],
                    store.timecodes[lo:hi],
                )
                # Each batch seals one segment; a net gain below +1
                # means auto-compaction merged some away.
                if index.num_segments <= before:
                    compactions += 1
            index.flush()
            segmented_seconds = time.perf_counter() - t0
            final_segments = index.num_segments

        # --- baseline: rebuild + persist the monolith per batch ------
        # A static index must be re-sorted over ALL rows so far and
        # saved back to disk to stay queryable after a restart — the
        # same durability the segmented WAL provides continuously.
        t0 = time.perf_counter()
        for b in range(num_batches):
            part = store.row_slice(0, (b + 1) * batch_rows)
            S3Index(part, depth=depth, model=model).save(tmpdir / "mono")
        rebuild_seconds = time.perf_counter() - t0

        # --- query latency as a function of segment count ------------
        latency: list[LatencyPoint] = []
        for k in segment_counts:
            directory = tmpdir / f"seg-{k}"
            per = total // k
            with SegmentedS3Index.create(
                directory, ndims=ndims, depth=depth, model=model,
                flush_rows=per, auto_compact=False, sync=False,
            ) as idx:
                for j in range(k):
                    lo, hi = j * per, (j + 1) * per
                    idx.add(store.fingerprints[lo:hi], store.ids[lo:hi],
                            store.timecodes[lo:hi])
                idx.flush()
                latency.append(
                    LatencyPoint(idx.num_segments,
                                 _mean_query_ms(idx, queries, alpha))
                )

        mono = S3Index(store.row_slice(0, total), depth=depth, model=model)
        monolithic_ms = _mean_query_ms(mono, queries, alpha)

    return SegmentedIngestResult(
        total_rows=total,
        batch_rows=batch_rows,
        num_batches=num_batches,
        segmented_seconds=segmented_seconds,
        rebuild_seconds=rebuild_seconds,
        final_segments=final_segments,
        compactions=compactions,
        latency=latency,
        monolithic_ms=monolithic_ms,
    )
