"""Fig. 2 — the space partition induced by the Hilbert curve (D=2).

The paper illustrates the ``2^p`` p-blocks at depths ``p = 3, 4, 5`` for a
2-D, order-4 curve: hyper-rectangles of equal volume and (up to orientation)
equal shape.  This experiment regenerates the partitions, verifies those
properties and renders them as ASCII art.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hilbert.butz import HilbertCurve
from ..hilbert.partition import blocks_at_depth, partition_grid_2d
from .common import format_table


@dataclass
class PartitionSummary:
    """Invariant checks of one depth's partition."""

    depth: int
    num_blocks: int
    block_volume: int
    distinct_shapes: list[tuple[int, ...]]
    covers_grid: bool
    disjoint: bool


@dataclass
class Fig2Result:
    """Partition summaries and the 2-D label grids of Fig. 2."""

    order: int
    summaries: list[PartitionSummary]
    grids: dict[int, np.ndarray]

    def render(self) -> str:
        rows = [
            (
                s.depth,
                s.num_blocks,
                s.block_volume,
                "/".join("x".join(map(str, shape)) for shape in s.distinct_shapes),
                s.covers_grid and s.disjoint,
            )
            for s in self.summaries
        ]
        table = format_table(
            ["depth p", "blocks", "cells/block", "shapes", "exact partition"],
            rows,
            title=f"Fig. 2 — Hilbert p-block partitions (D=2, K={self.order})",
        )
        art = [table]
        for depth, grid in self.grids.items():
            art.append(f"\ndepth p={depth}:")
            art.append(render_ascii(grid))
        return "\n".join(art)


def run_fig2(order: int = 4, depths: tuple[int, ...] = (3, 4, 5)) -> Fig2Result:
    """Regenerate the paper's Fig. 2 partitions and verify their geometry."""
    curve = HilbertCurve(2, order)
    summaries = []
    grids: dict[int, np.ndarray] = {}
    total_cells = curve.side ** 2
    for depth in depths:
        blocks = blocks_at_depth(curve, depth)
        volumes = {node.volume() for node in blocks}
        shapes = sorted(
            {tuple(sorted(h - l for l, h in zip(n.lo, n.hi))) for n in blocks}
        )
        grid = partition_grid_2d(curve, depth)
        covered = len(np.unique(grid)) == len(blocks)
        summaries.append(
            PartitionSummary(
                depth=depth,
                num_blocks=len(blocks),
                block_volume=volumes.pop() if len(volumes) == 1 else -1,
                distinct_shapes=shapes,
                covers_grid=covered,
                disjoint=sum(n.volume() for n in blocks) == total_cells,
            )
        )
        grids[depth] = grid
    return Fig2Result(order=order, summaries=summaries, grids=grids)


def render_ascii(grid: np.ndarray) -> str:
    """Render a 2-D block-label grid with one glyph per block."""
    glyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    labels = np.unique(grid)
    mapping = {int(lab): glyphs[i % len(glyphs)] for i, lab in enumerate(labels)}
    lines = []
    for row in grid[::-1]:  # y grows upward in the figure
        lines.append("".join(mapping[int(v)] for v in row))
    return "\n".join(lines)
