"""One module per table/figure of the paper's evaluation (see DESIGN.md §4).

Each ``run_*`` function accepts laptop-scale defaults, returns a structured
result object with a ``render()`` text table, and is driven by the
corresponding benchmark in ``benchmarks/``.
"""

from .abacus import (
    AbacusCell,
    AbacusResult,
    AbacusSetup,
    build_setup,
    make_detector,
    sweep_transforms,
    sweep_transforms_shared,
)
from .ascii_plot import render_plot
from .batch_query import BatchQueryBenchResult, run_batch_query
from .cluster_bench import ClusterBenchResult, run_cluster_bench
from .common import Series, format_table
from .fig1_distance import Fig1Result, run_fig1
from .fig10_monitoring import Fig10Result, run_fig10
from .fig2_partition import Fig2Result, run_fig2
from .fig3_model_validation import Fig3Result, combined_transform, run_fig3
from .fig56_alpha_sweep import Fig56Result, run_fig56
from .fig7_scaling import Fig7Result, run_fig7
from .fig8_dbsize_abacus import Fig8Result, run_fig8
from .fig9_alpha_abacus import Fig9Result, run_fig9
from .ingest_pipeline import (
    IngestPipelineResult,
    run_ingest_pipeline,
    write_ingest_pipeline_json,
)
from .parallel_scan import (
    ParallelScanBenchResult,
    ParallelScanSuiteResult,
    run_parallel_scan,
    run_parallel_scan_suite,
)
from .prefilter import (
    PrefilterBenchResult,
    run_prefilter,
    write_prefilter_json,
)
from .query_cache import QueryCacheBenchResult, run_query_cache
from .segmented_ingest import SegmentedIngestResult, run_segmented_ingest
from .serve_bench import ServeBenchResult, run_serve_bench
from .storage_tiers import (
    StorageTiersResult,
    run_storage_tiers,
    write_storage_tiers_json,
)
from .table1_severity import Table1Result, paper_transform_ladder, run_table1

__all__ = [
    "AbacusCell",
    "AbacusResult",
    "AbacusSetup",
    "BatchQueryBenchResult",
    "ClusterBenchResult",
    "Fig1Result",
    "Fig10Result",
    "Fig2Result",
    "Fig3Result",
    "Fig56Result",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "IngestPipelineResult",
    "ParallelScanBenchResult",
    "ParallelScanSuiteResult",
    "SegmentedIngestResult",
    "Series",
    "PrefilterBenchResult",
    "QueryCacheBenchResult",
    "ServeBenchResult",
    "StorageTiersResult",
    "Table1Result",
    "build_setup",
    "combined_transform",
    "format_table",
    "make_detector",
    "paper_transform_ladder",
    "render_plot",
    "run_batch_query",
    "run_cluster_bench",
    "run_fig1",
    "run_fig10",
    "run_fig2",
    "run_fig3",
    "run_fig56",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_ingest_pipeline",
    "run_parallel_scan",
    "run_parallel_scan_suite",
    "run_prefilter",
    "run_query_cache",
    "run_segmented_ingest",
    "run_serve_bench",
    "run_storage_tiers",
    "run_table1",
    "sweep_transforms",
    "sweep_transforms_shared",
    "write_ingest_pipeline_json",
    "write_prefilter_json",
    "write_storage_tiers_json",
]
