"""Fig. 1 — distribution of the distortion distance ``‖ΔS‖``.

The paper overlays three curves for a resized video (``w_scale = 0.8``):

* the *real* distribution of the distance between referenced fingerprints
  and their distorted versions at the same interest points;
* the distance law implied by the i.i.d. zero-mean **normal** distortion
  model (close to the real one);
* the distance law of a **uniform spherical** distribution (what taking
  volume percentage as the error measure would assume) — far off, with all
  its mass near the sphere surface.

The experiment rebuilds all three from procedural clips and quantifies the
fit of each model with a Kolmogorov–Smirnov statistic against the empirical
sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..distortion.estimate import distortion_vectors
from ..distortion.radial import norm_cdf, norm_pdf, radius_for_expectation, uniform_sphere_pdf
from ..fingerprint.calibration import collect_pairs
from ..fingerprint.extractor import FingerprintExtractor
from ..rng import SeedLike, resolve_rng
from ..video.synthetic import generate_corpus
from ..video.transforms import Resize, Transform
from .common import Series, format_table


@dataclass
class Fig1Result:
    """Empirical distance histogram and the two model densities."""

    distances: np.ndarray
    sigma_hat: float
    ndims: int
    real: Series
    normal_model: Series
    spherical_uniform: Series
    ks_normal: float
    ks_uniform: float

    def render(self) -> str:
        rows = list(
            zip(
                self.real.x,
                self.real.y,
                self.normal_model.y,
                self.spherical_uniform.y,
            )
        )
        table = format_table(
            ["distance", "real pdf", "normal pdf", "uniform pdf"],
            rows,
            title=(
                f"Fig. 1 — pdf of ||dS|| (sigma_hat={self.sigma_hat:.2f}, "
                f"D={self.ndims})"
            ),
        )
        summary = (
            f"\nKS(real, normal model)  = {self.ks_normal:.4f}"
            f"\nKS(real, spherical uni) = {self.ks_uniform:.4f}"
            "\nExpected shape: normal model close to real; uniform far off."
        )
        return table + summary


def run_fig1(
    num_clips: int = 3,
    frames_per_clip: int = 100,
    transform: Transform | None = None,
    delta_pix: float = 1.0,
    num_bins: int = 24,
    seed: SeedLike = 0,
) -> Fig1Result:
    """Reproduce Fig. 1 (default transformation: resize ``w_scale = 0.8``)."""
    rng = resolve_rng(seed)
    transform = transform if transform is not None else Resize(0.8)
    clips = generate_corpus(num_clips, frames_per_clip, seed=rng)
    extractor = FingerprintExtractor()
    pairs = collect_pairs(
        clips, transform, extractor=extractor, delta_pix=delta_pix, rng=rng
    )
    delta = distortion_vectors(pairs.reference, pairs.distorted)
    distances = np.linalg.norm(delta, axis=1)
    ndims = delta.shape[1]
    sigma_hat = float(np.sqrt(np.mean(delta * delta, axis=0)).mean())

    hist, edges = np.histogram(distances, bins=num_bins, density=True)
    centers = 0.5 * (edges[:-1] + edges[1:])
    real = Series("real distribution", list(centers), list(hist))

    normal = Series("normal model")
    uniform = Series("spherical uniform")
    sphere_radius = radius_for_expectation(0.99, ndims, sigma_hat)
    for r in centers:
        normal.add(r, float(norm_pdf(np.array(r), ndims, sigma_hat)))
        uniform.add(
            r, float(uniform_sphere_pdf(np.array(r), ndims, sphere_radius))
        )

    ks_normal = _ks_statistic(distances, lambda r: norm_cdf(r, ndims, sigma_hat))
    ks_uniform = _ks_statistic(
        distances,
        lambda r: np.clip(r / sphere_radius, 0.0, 1.0) ** ndims,
    )
    return Fig1Result(
        distances=distances,
        sigma_hat=sigma_hat,
        ndims=ndims,
        real=real,
        normal_model=normal,
        spherical_uniform=uniform,
        ks_normal=float(ks_normal),
        ks_uniform=float(ks_uniform),
    )


def _ks_statistic(sample: np.ndarray, cdf) -> float:
    ordered = np.sort(sample)
    n = ordered.size
    model = np.asarray(cdf(ordered), dtype=np.float64)
    empirical_hi = np.arange(1, n + 1) / n
    empirical_lo = np.arange(0, n) / n
    return float(
        max(np.abs(empirical_hi - model).max(), np.abs(model - empirical_lo).max())
    )
