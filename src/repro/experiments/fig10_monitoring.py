"""§V-D / Fig. 10 — continuous TV monitoring.

The paper's deployment claim: a CBCD system built on S³ "is continuously
monitoring a french TV channel with a reference DB including more than
20,000 hours of archives.  The average monitoring time is 2 times faster
than real time", producing robust detections (Fig. 10's examples).

This experiment assembles a broadcast stream with referenced excerpts
(one distorted) spliced between foreign filler, runs the stateful
:class:`~repro.cbcd.monitor.StreamMonitor` over it and measures

* detection completeness (every spliced copy found, correctly aligned),
* false alarms on the filler stretches,
* **throughput**: processed stream seconds per wall-clock second — the
  real-time factor the paper quotes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..cbcd.monitor import MonitorConfig, StreamMonitor
from ..corpus.builder import build_reference_corpus
from ..corpus.filler import scale_store
from ..distortion.model import NormalDistortionModel
from ..index.s3 import S3Index
from ..rng import SeedLike, resolve_rng
from ..video.synthetic import generate_corpus
from ..video.transforms import Gamma
from .common import format_table


@dataclass
class SplicedCopy:
    """Ground truth for one excerpt spliced into the stream."""

    video_id: int
    stream_start: float
    source_start: float

    @property
    def expected_offset(self) -> float:
        """Stream-time alignment the monitor should report."""
        return self.stream_start - self.source_start


@dataclass
class Fig10Result:
    """Monitoring run outcome: detections, misses, false alarms, speed."""

    copies: list[SplicedCopy]
    found: list[bool]
    false_alarms: int
    stream_seconds: float
    wall_seconds: float
    db_rows: int

    @property
    def realtime_factor(self) -> float:
        """Stream seconds processed per wall-clock second."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.stream_seconds / self.wall_seconds

    @property
    def recall(self) -> float:
        if not self.copies:
            return 1.0
        return sum(self.found) / len(self.copies)

    def render(self) -> str:
        rows = [
            (c.video_id, c.stream_start, c.expected_offset, ok)
            for c, ok in zip(self.copies, self.found)
        ]
        table = format_table(
            ["video id", "spliced at (frame)", "expected offset", "detected"],
            rows,
            title=(
                f"Sec V-D — TV monitoring (DB={self.db_rows} rows, "
                f"{self.stream_seconds:.0f}s of stream)"
            ),
        )
        return table + (
            f"\nfalse alarms: {self.false_alarms}"
            f"\nthroughput: {self.realtime_factor:.2f}x real time "
            "(paper: 2x on 2003 hardware at full archive scale)"
        )


def run_fig10(
    num_videos: int = 8,
    frames_per_video: int = 150,
    db_rows: int = 40_000,
    num_copies: int = 3,
    filler_frames: int = 70,
    copy_frames: int = 90,
    decision_threshold: int = 25,
    alpha: float = 0.8,
    seed: SeedLike = 0,
) -> Fig10Result:
    """Assemble a stream, monitor it, and score the run."""
    rng = resolve_rng(seed)
    corpus = build_reference_corpus(num_videos, frames_per_video, seed=rng)
    store = scale_store(corpus.store, db_rows, rng=rng)
    index = S3Index(store, model=NormalDistortionModel(20, 20.0), depth=20)

    fillers = generate_corpus(num_copies + 1, filler_frames, seed=rng)
    segments = [fillers[0].frames]
    copies: list[SplicedCopy] = []
    cursor = fillers[0].num_frames
    for k in range(num_copies):
        vid = int(rng.integers(0, num_videos))
        start = int(
            rng.integers(0, frames_per_video - copy_frames + 1)
        )
        clip, _ = corpus.candidate(vid, start, copy_frames)
        if k == 1:
            clip = Gamma(1.7).apply_clip(clip)  # one off-air distortion
        segments.append(clip.frames)
        copies.append(
            SplicedCopy(
                video_id=vid,
                stream_start=float(cursor),
                source_start=float(start),
            )
        )
        cursor += copy_frames
        segments.append(fillers[k + 1].frames)
        cursor += fillers[k + 1].num_frames
    stream = np.concatenate(segments)
    frame_rate = 25.0

    monitor = StreamMonitor(
        index,
        MonitorConfig(
            alpha=alpha,
            window_frames=80,
            hop_frames=40,
            decision_threshold=decision_threshold,
        ),
    )
    t0 = time.perf_counter()
    detections = monitor.feed(stream)
    wall = time.perf_counter() - t0

    found = []
    matched = set()
    for copy in copies:
        ok = False
        for i, det in enumerate(detections):
            if i in matched:
                continue
            if (
                det.video_id == copy.video_id
                and abs(det.stream_offset - copy.expected_offset) <= 4.0
            ):
                matched.add(i)
                ok = True
                break
        found.append(ok)
    false_alarms = len(detections) - len(matched)

    return Fig10Result(
        copies=copies,
        found=found,
        false_alarms=false_alarms,
        stream_seconds=stream.shape[0] / frame_rate,
        wall_seconds=wall,
        db_rows=len(store),
    )
