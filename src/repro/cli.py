"""Command-line interface: ``repro-s3``.

Drives the whole system from the shell — generate material, extract
fingerprints, build an index, query it, run copy detection::

    repro-s3 synth --frames 200 --seed 1 --out clip.npy
    repro-s3 extract clip.npy --video-id 0 --out db.fp
    repro-s3 merge db0.fp db1.fp --out db.fp
    repro-s3 build db.fp --sigma 20 --out archive
    repro-s3 query archive --alpha 0.8 --from-row 7
    repro-s3 detect archive candidate.npy --alpha 0.8 --threshold 10
    repro-s3 info db.fp

Videos are exchanged as ``.npy`` arrays of shape ``(T, H, W)`` uint8;
fingerprint stores use the single-file binary format of
:mod:`repro.index.store`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from .cbcd.detector import CopyDetector, DetectorConfig
from .distortion.model import NormalDistortionModel
from .errors import ReproError
from .fingerprint.extractor import FingerprintExtractor
from .index.s3 import S3Index
from .index.store import FingerprintStore, read_header
from .video.synthetic import VideoClip, generate_clip


def _cmd_synth(args: argparse.Namespace) -> int:
    clip = generate_clip(args.frames, seed=args.seed)
    np.save(args.out, clip.frames)
    print(f"wrote {args.frames} frames ({clip.height}x{clip.width}) to {args.out}")
    return 0


def _load_clip(path: str) -> VideoClip:
    frames = np.load(path)
    return VideoClip(frames)


def _cmd_extract(args: argparse.Namespace) -> int:
    clip = _load_clip(args.video)
    extractor = FingerprintExtractor()
    result = extractor.extract(clip, video_id=args.video_id)
    result.store.save(args.out)
    print(
        f"extracted {len(result.store)} fingerprints "
        f"({result.keyframes.size} key-frames) -> {args.out}"
    )
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    stores = [FingerprintStore.load(path) for path in args.stores]
    merged = FingerprintStore.concatenate(stores)
    merged.save(args.out)
    print(f"merged {len(stores)} stores ({len(merged)} fingerprints) -> {args.out}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    store = FingerprintStore.load(args.store)
    model = NormalDistortionModel(store.ndims, args.sigma)
    index = S3Index(store, depth=args.depth, model=model)
    index.save(args.out)
    print(
        f"indexed {len(index)} fingerprints at depth p={index.depth} "
        f"-> {args.out}.store / {args.out}.meta.json"
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    index = S3Index.load(args.index)
    if args.queries is not None:
        queries = np.load(args.queries).astype(np.float64)
        if queries.ndim == 1:
            queries = queries[None, :]
    elif args.from_row is not None:
        queries = index.store.fingerprints[args.from_row][None, :].astype(
            np.float64
        )
    else:
        print("error: pass --queries FILE or --from-row N", file=sys.stderr)
        return 2
    for i, q in enumerate(queries):
        result = index.statistical_query(q, args.alpha)
        stats = result.stats
        print(
            f"query {i}: {len(result)} results, "
            f"{stats.blocks_selected} blocks, "
            f"{stats.total_seconds * 1e3:.2f} ms"
        )
        for row in range(min(len(result), args.limit)):
            print(
                f"  id={result.ids[row]} tc={result.timecodes[row]:.1f}"
            )
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    index = S3Index.load(args.index)
    config = DetectorConfig(alpha=args.alpha, decision_threshold=args.threshold)
    detector = CopyDetector(index, config)
    clip = _load_clip(args.video)
    report = detector.detect_clip(clip)
    if not report.detections:
        print("no copy detected")
        return 1
    for det in report.detections:
        print(
            f"copy of video {det.video_id}: offset b={det.offset:.1f} frames, "
            f"n_sim={det.nsim}/{det.num_candidates}"
        )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    count, ndims = read_header(args.store)
    size = Path(args.store).stat().st_size
    print(f"{args.store}: {count} fingerprints, dimension {ndims}, "
          f"{size / 1e6:.2f} MB")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro-s3`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-s3",
        description="Statistical similarity search / video copy detection",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("synth", help="generate a procedural test clip")
    p.add_argument("--frames", type=int, default=150)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_synth)

    p = sub.add_parser("extract", help="extract fingerprints from a video")
    p.add_argument("video", help="(T, H, W) uint8 .npy file")
    p.add_argument("--video-id", type=int, required=True)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_extract)

    p = sub.add_parser("merge", help="concatenate fingerprint stores")
    p.add_argument("stores", nargs="+")
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_merge)

    p = sub.add_parser("build", help="build an S3 index from a store")
    p.add_argument("store")
    p.add_argument("--sigma", type=float, default=20.0)
    p.add_argument("--depth", type=int, default=None)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_build)

    p = sub.add_parser("query", help="run statistical queries")
    p.add_argument("index", help="index prefix (from `build --out`)")
    p.add_argument("--alpha", type=float, default=0.8)
    p.add_argument("--queries", default=None, help="(N, D) .npy of queries")
    p.add_argument("--from-row", type=int, default=None,
                   help="query with a stored fingerprint (sanity check)")
    p.add_argument("--limit", type=int, default=5,
                   help="matches to print per query")
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("detect", help="detect copies in a candidate video")
    p.add_argument("index", help="index prefix")
    p.add_argument("video", help="(T, H, W) uint8 .npy file")
    p.add_argument("--alpha", type=float, default=0.8)
    p.add_argument("--threshold", type=int, default=10)
    p.set_defaults(func=_cmd_detect)

    p = sub.add_parser("info", help="describe a fingerprint store file")
    p.add_argument("store")
    p.set_defaults(func=_cmd_info)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
