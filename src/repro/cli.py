"""Command-line interface: ``repro-s3``.

Drives the whole system from the shell — generate material, extract
fingerprints, build an index, query it, run copy detection::

    repro-s3 synth --frames 200 --seed 1 --out clip.npy
    repro-s3 extract clip.npy --video-id 0 --out db.fp
    repro-s3 merge db0.fp db1.fp --out db.fp
    repro-s3 build db.fp --sigma 20 --out archive
    repro-s3 query archive --alpha 0.8 --from-row 7
    repro-s3 detect archive candidate.npy --alpha 0.8 --threshold 10
    repro-s3 info db.fp

The segmented live index (online ingestion, see
:mod:`repro.index.segmented`) lives in a *directory* instead of a file
prefix; ``query``, ``detect`` and ``info`` accept either form::

    repro-s3 ingest live/ db0.fp db1.fp --sigma 20
    repro-s3 ingest live/ db2.fp --flush
    repro-s3 compact live/ --force
    repro-s3 info live/
    repro-s3 query live/ --from-row 7

The detection service (:mod:`repro.serve`) exposes either index over a
socket, micro-batching queries across clients; ``request`` is the
matching wire client::

    repro-s3 serve live/ --port 8765 --max-batch 32 --max-wait-ms 2
    repro-s3 request query --port 8765 --queries q.npy
    repro-s3 request health --port 8765
    repro-s3 info live/ --json

Videos are exchanged as ``.npy`` arrays of shape ``(T, H, W)`` uint8;
fingerprint stores use the single-file binary format of
:mod:`repro.index.store`.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

import numpy as np

from .cbcd.detector import CopyDetector, DetectorConfig
from .distortion.model import NormalDistortionModel
from .errors import ConfigurationError, ReproError
from .fingerprint.extractor import FingerprintExtractor
from .index.batch import BatchQueryExecutor
from .index.options import (
    EXECUTOR_STRATEGIES,
    PREFILTER_MODES,
    QueryOptions,
    validate_durability,
)
from .index.planner import PLANNER_MODES
from .index.s3 import S3Index
from .index.segmented import CompactionPolicy, Manifest, SegmentedS3Index
from .index.store import FingerprintStore, expected_file_size, read_header
from .index.summary import index_summary, store_file_summary
from .video.synthetic import VideoClip, generate_clip


def _validate_common_args(args: argparse.Namespace) -> None:
    """Reject out-of-domain engine knobs with a friendly message.

    Shared by ``query``, ``detect``, ``serve`` and ``request`` so a typo
    like ``--batch-size 0`` fails as a one-line ``error:`` instead of a
    traceback from deep inside the engine.
    """
    batch_size = getattr(args, "batch_size", None)
    if batch_size is not None and batch_size < 1:
        raise ConfigurationError(
            f"--batch-size must be >= 1, got {batch_size}"
        )
    workers = getattr(args, "workers", None)
    if workers is not None and workers < 1:
        raise ConfigurationError(f"--workers must be >= 1, got {workers}")
    executor = getattr(args, "executor", None)
    if executor is not None and executor not in EXECUTOR_STRATEGIES:
        raise ConfigurationError(
            f"--executor must be one of {', '.join(EXECUTOR_STRATEGIES)}, "
            f"got {executor!r}"
        )
    planner = getattr(args, "planner", None)
    if planner is not None and planner not in PLANNER_MODES:
        raise ConfigurationError(
            f"--planner must be one of {', '.join(PLANNER_MODES)}, "
            f"got {planner!r}"
        )
    alpha = getattr(args, "alpha", None)
    if alpha is not None and not 0.0 < alpha <= 1.0:
        raise ConfigurationError(
            f"--alpha must be in (0, 1], got {alpha}"
        )
    durability = getattr(args, "durability", None)
    if durability is not None:
        validate_durability(durability, api="--durability")


def _parse_bytes(text: str) -> int:
    """Parse a byte budget like ``64M``, ``2G``, ``512K`` or ``1048576``."""
    raw = text.strip()
    scale = 1
    suffixes = {"K": 1024, "M": 1024 ** 2, "G": 1024 ** 3}
    if raw and raw[-1].upper() in suffixes:
        scale = suffixes[raw[-1].upper()]
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"invalid byte size {text!r}; expected e.g. 64M, 2G or a "
            "plain byte count"
        ) from None
    if value < 0:
        raise ConfigurationError(f"byte size must be >= 0, got {text!r}")
    return int(value * scale)


def _storage_config(args: argparse.Namespace):
    """The tiered-storage config the flags describe, or ``None``.

    ``None`` (no flag passed) keeps whatever the index directory's
    manifest already records — an explicit config overrides and
    re-persists it (see ``SegmentedS3Index.attach_storage``).
    """
    budget = getattr(args, "storage_budget", None)
    cold_dir = getattr(args, "cold_dir", None)
    if budget is None and cold_dir is None:
        return None
    from .storage import StorageConfig

    return StorageConfig(
        budget_bytes=None if budget is None else _parse_bytes(budget),
        cold_dir=cold_dir,
    )


def _query_options(args: argparse.Namespace) -> QueryOptions:
    """The unified :class:`QueryOptions` a subcommand's flags describe.

    Built directly (rather than through the per-class legacy kwargs) so
    CLI runs never trip the deprecation shims.
    """
    fields = {}
    for name, attr in (
        ("alpha", "alpha"),
        ("batch_size", "batch_size"),
        ("workers", "workers"),
        ("executor", "executor"),
        ("prefilter", "prefilter"),
        ("planner", "planner"),
    ):
        value = getattr(args, attr, None)
        if value is not None:
            fields[name] = value
    return QueryOptions(**fields)


def _cmd_synth(args: argparse.Namespace) -> int:
    clip = generate_clip(args.frames, seed=args.seed)
    np.save(args.out, clip.frames)
    print(f"wrote {args.frames} frames ({clip.height}x{clip.width}) to {args.out}")
    return 0


def _load_clip(path: str) -> VideoClip:
    frames = np.load(path)
    return VideoClip(frames)


def _cmd_extract(args: argparse.Namespace) -> int:
    clip = _load_clip(args.video)
    extractor = FingerprintExtractor()
    result = extractor.extract(clip, video_id=args.video_id)
    result.store.save(args.out)
    print(
        f"extracted {len(result.store)} fingerprints "
        f"({result.keyframes.size} key-frames) -> {args.out}"
    )
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    stores = [FingerprintStore.load(path) for path in args.stores]
    merged = FingerprintStore.concatenate(stores)
    merged.save(args.out)
    print(f"merged {len(stores)} stores ({len(merged)} fingerprints) -> {args.out}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    store = FingerprintStore.load(args.store)
    model = NormalDistortionModel(store.ndims, args.sigma)
    index = S3Index(store, depth=args.depth, model=model)
    index.save(args.out)
    print(
        f"indexed {len(index)} fingerprints at depth p={index.depth} "
        f"-> {args.out}.store / {args.out}.meta.json"
    )
    return 0


def _load_index(
    path: str, mmap: bool = False, storage=None, durability=None
) -> "S3Index | SegmentedS3Index":
    """Open *path* as a segmented directory or a static index prefix.

    ``mmap=True`` maps fingerprint bytes from disk instead of reading
    them — long-lived consumers (the service) get zero-copy file-backed
    stores that scan worker processes attach without any duplication.
    ``storage`` (a :class:`repro.storage.StorageConfig`) attaches tiered
    segment storage; directories whose manifest already records a
    storage block attach it automatically even when ``storage=None``.
    ``durability`` selects the WAL fsync policy of the ingest path
    (segmented directories only; static indexes have no WAL and
    silently ignore it).
    """
    if Path(path).is_dir():
        return SegmentedS3Index.open(
            path, mmap=mmap, storage=storage, durability=durability
        )
    if storage is not None:
        raise ConfigurationError(
            "--storage-budget/--cold-dir apply to segmented index "
            "directories only"
        )
    return S3Index.load(path, mmap=mmap)


def _cmd_query(args: argparse.Namespace) -> int:
    _validate_common_args(args)
    index = _load_index(args.index)
    if args.queries is not None:
        queries = np.load(args.queries).astype(np.float64)
        if queries.ndim == 1:
            queries = queries[None, :]
    elif args.from_row is not None:
        if isinstance(index, SegmentedS3Index):
            fp, _id, _tc = index.record(args.from_row)
        else:
            fp = index.store.fingerprints[args.from_row]
        queries = fp[None, :].astype(np.float64)
    else:
        print("error: pass --queries FILE or --from-row N", file=sys.stderr)
        return 2
    with BatchQueryExecutor(index, options=_query_options(args)) as executor:
        for i, result in enumerate(executor.query_all(queries)):
            stats = result.stats
            print(
                f"query {i}: {len(result)} results, "
                f"{stats.blocks_selected} blocks, "
                f"{stats.total_seconds * 1e3:.2f} ms"
            )
            for row in range(min(len(result), args.limit)):
                print(
                    f"  id={result.ids[row]} tc={result.timecodes[row]:.1f}"
                )
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    _validate_common_args(args)
    index = _load_index(args.index)
    config = DetectorConfig(
        decision_threshold=args.threshold,
        options=_query_options(args),
    )
    detector = CopyDetector(index, config)
    clip = _load_clip(args.video)
    report = detector.detect_clip(clip)
    if not report.detections:
        print("no copy detected")
        return 1
    for det in report.detections:
        print(
            f"copy of video {det.video_id}: offset b={det.offset:.1f} frames, "
            f"n_sim={det.nsim}/{det.num_candidates}"
        )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    path = Path(args.store)
    if args.json:
        print(json.dumps(_info_payload(path), indent=2))
        return 0
    if path.is_dir():
        return _segmented_info(path)
    count, ndims = read_header(args.store)
    size = path.stat().st_size
    print(f"{args.store}: {count} fingerprints, dimension {ndims}, "
          f"{size / 1e6:.2f} MB")
    if path.with_suffix(".meta.json").is_file():
        index = S3Index.load(str(path.with_suffix("")))
        supported = "supported" if index.supports_coalesced_scans \
            else "not supported"
        print(f"  coalesced scans: {supported} "
              "(contiguous curve-ordered layout)")
    return 0


def _info_payload(path: Path) -> dict:
    """The machine-readable ``info --json`` summary of *path*.

    Same schema as the detection service's ``health`` payload (both are
    built by :mod:`repro.index.summary`), so monitoring can consume
    either interchangeably.
    """
    if path.is_dir():
        with SegmentedS3Index.open(path) as index:
            payload = index_summary(index)
            payload["path"] = str(path)
            for seg in payload["segments"]:
                store_path = path / (seg["name"] + ".store")
                # Cold segments have no local .store — report the size
                # their blob holds (byte-identical to the file it was).
                seg["bytes"] = (
                    store_path.stat().st_size if store_path.is_file()
                    else expected_file_size(seg["count"], payload["ndims"])
                )
            return payload
    payload = store_file_summary(path)
    if path.with_suffix(".meta.json").is_file():
        payload["index"] = index_summary(
            S3Index.load(str(path.with_suffix("")))
        )
    return payload


def _segmented_info(directory: Path) -> int:
    manifest = Manifest.load(directory)
    with SegmentedS3Index.open(directory) as index:
        print(f"{directory}: segmented index, {len(index)} fingerprints, "
              f"dimension {manifest.ndims}")
        print(f"  geometry: order={manifest.order} "
              f"key_levels={manifest.key_levels} depth={manifest.depth} "
              f"sigma={manifest.sigma}")
        print(f"  wal: {manifest.wal} "
              f"({index.pending_rows} unsealed fingerprints)")
        supported = "supported" if index.supports_coalesced_scans \
            else "not supported"
        print(f"  coalesced scans: {supported} (per sealed segment)")
        print(f"  segments: {index.num_segments}")
        for seg in index.segments:
            store_path = directory / (seg.name + ".store")
            size = (
                store_path.stat().st_size if store_path.is_file()
                else expected_file_size(seg.count, manifest.ndims)
            )
            tier_note = f" [{seg.tier}]" if seg.tier != "hot" else ""
            print(f"    {seg.name}: {seg.count} fingerprints, "
                  f"{size / 1e6:.2f} MB{tier_note}")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    validate_durability(args.durability, api="--durability")
    directory = Path(args.directory)
    stores = [FingerprintStore.load(path) for path in args.stores]
    if Manifest.exists(directory):
        index = SegmentedS3Index.open(
            directory, flush_rows=args.memtable_rows,
            policy=CompactionPolicy(max_segments=args.max_segments),
            durability=args.durability,
        )
    else:
        ndims = args.ndims if args.ndims is not None else stores[0].ndims
        index = SegmentedS3Index.create(
            directory, ndims=ndims, depth=args.depth,
            model=NormalDistortionModel(ndims, args.sigma),
            flush_rows=args.memtable_rows,
            policy=CompactionPolicy(max_segments=args.max_segments),
            durability=args.durability,
        )
        print(f"created segmented index at {directory} "
              f"(ndims={ndims}, depth={index.depth})")
    with index:
        added = 0
        for store in stores:
            added += index.add(
                store.fingerprints, store.ids, store.timecodes
            )
        if args.flush:
            index.flush()
        print(f"ingested {added} fingerprints -> {directory} "
              f"({index.num_segments} segments, "
              f"{index.pending_rows} unsealed)")
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    with SegmentedS3Index.open(
        args.directory,
        policy=CompactionPolicy(max_segments=args.max_segments),
        auto_compact=False,
    ) as index:
        if args.flush:
            index.flush()
        before = index.num_segments
        result = index.compact(force=args.force)
        if result is None:
            print(f"nothing to compact ({before} segments, "
                  f"max {index.policy.max_segments})")
        else:
            print(f"compacted {result.merged_segments} segments "
                  f"({result.merged_rows} fingerprints) into "
                  f"{result.segment_name} in {result.seconds:.2f} s; "
                  f"{before} -> {index.num_segments} segments")
    return 0


def _cmd_tier_status(args: argparse.Namespace) -> int:
    directory = Path(args.directory)
    if not directory.is_dir():
        raise ConfigurationError(
            f"tier status needs a segmented index directory, "
            f"got {args.directory}"
        )
    with SegmentedS3Index.open(directory) as index:
        info = index.storage_info()
    return _print_tier_info(args, info)


def _cmd_tier_attach(args: argparse.Namespace) -> int:
    directory = Path(args.directory)
    if not directory.is_dir():
        raise ConfigurationError(
            f"tier attach needs a segmented index directory, "
            f"got {args.directory}"
        )
    storage = _storage_config(args)
    if storage is None:
        raise ConfigurationError(
            "tier attach needs --storage-budget and/or --cold-dir"
        )
    # Opening with an explicit config persists it to MANIFEST.json and
    # demotes down to the budget before returning, so later opens (the
    # CLI, serve, the cluster supervisor) inherit the tiering.
    with SegmentedS3Index.open(directory, storage=storage) as index:
        info = index.storage_info()
    return _print_tier_info(args, info)


def _print_tier_info(args: argparse.Namespace, info: dict) -> int:
    if args.json:
        print(json.dumps(info, indent=2))
        return 0
    manager = info.get("manager")
    if info["tiered"] and manager is not None:
        budget = manager["budget_bytes"]
        print(f"{args.directory}: tiered storage attached "
              f"(budget {'unlimited' if budget is None else budget} bytes, "
              f"backend {manager['backend']}, "
              f"cold_dir {manager['cold_dir']})")
    else:
        print(f"{args.directory}: tiered storage not attached "
              "(every segment resident)")
    for tier in ("hot", "warm", "cold"):
        t = info["tiers"][tier]
        print(f"  {tier}: {t['segments']} segment(s), {t['rows']} rows, "
              f"{t['bytes'] / 1e6:.2f} MB")
    if info["tiered"] and manager is not None:
        counters = manager["counters"]
        print(f"  resident: {manager['resident_bytes'] / 1e6:.2f} MB")
        print(f"  activity: {counters['fetches']} range fetch(es) "
              f"({counters['fetch_bytes']} bytes), "
              f"{counters['promotions']} promotion(s), "
              f"{counters['demotions']} demotion(s), "
              f"prefetch hit ratio "
              f"{counters['prefetch_hit_ratio']:.2f}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve.server import DetectionServer, ServeConfig

    _validate_common_args(args)
    # mmap: the server is long-lived, and file-backed stores let the
    # scan worker processes attach segments without copying them.
    storage = _storage_config(args)
    index = _load_index(
        args.index, mmap=True, storage=storage,
        durability=args.durability,
    )
    cache_kwargs = {}
    if args.cache_capacity is not None:
        cache_kwargs["cache_capacity"] = args.cache_capacity
    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_limit=args.queue_limit,
        cache=args.cache,
        storage_budget=None if storage is None else storage.budget_bytes,
        cold_dir=None if storage is None else storage.cold_dir,
        durability=args.durability,
        maintenance=not args.no_maintenance,
        backpressure_rows=args.backpressure_rows,
        compact_mb_per_s=args.compact_mb_per_s,
        options=_query_options(args),
        **cache_kwargs,
    )

    async def _run() -> None:
        server = DetectionServer(index, config)
        await server.start()
        if args.port_file:
            # Atomic write: a supervisor polling the file never reads a
            # partial port number.
            tmp = Path(args.port_file).with_suffix(".tmp")
            tmp.write_text(f"{server.port}\n")
            os.replace(tmp, args.port_file)
        print(
            f"serving {args.index} on {config.host}:{server.port} "
            f"(alpha={config.alpha}, max_batch={config.max_batch}, "
            f"max_wait_ms={config.max_wait_ms}, "
            f"queue_limit={config.queue_limit}, "
            f"executor={config.executor})",
            flush=True,
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            print("draining and shutting down ...")
            await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_cluster_plan(args: argparse.Namespace) -> int:
    from .cluster import plan_cluster

    budget = (
        None if args.storage_budget is None
        else _parse_bytes(args.storage_budget)
    )
    manifest = plan_cluster(
        args.source,
        args.cluster_dir,
        num_shards=args.shards,
        replicas=args.replicas,
        seal=args.seal,
        storage_budget=budget,
        cold_dir=args.cold_dir,
    )
    print(
        f"planned {manifest.num_shards} shard(s) x "
        f"{manifest.replicas_per_shard} replica(s) over "
        f"{manifest.total_rows} rows -> {args.cluster_dir}"
    )
    for spec in manifest.shards:
        print(
            f"  shard {spec.shard}: {spec.rows} rows, "
            f"{len(spec.segments)} segment(s), "
            f"keys [{spec.key_lo}, {spec.key_hi})"
        )
    return 0


def _cmd_cluster_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .cluster import ClusterManifest, ClusterRouter, ClusterSupervisor
    from .cluster.router import RouterConfig
    from .serve.server import ServeConfig

    manifest = ClusterManifest.load(args.cluster_dir)
    supervisor = ClusterSupervisor(
        args.cluster_dir,
        mode=args.mode,
        serve_config=ServeConfig(port=0, alpha=args.alpha),
        extra_serve_args=["--alpha", str(args.alpha)],
    )
    cache_kwargs = {}
    if args.cache_capacity is not None:
        cache_kwargs["cache_capacity"] = args.cache_capacity
    config = RouterConfig(
        host=args.host, port=args.port, alpha=args.alpha,
        shard_timeout=args.shard_timeout, cache=args.cache,
        **cache_kwargs,
    )

    async def _run(router: ClusterRouter) -> None:
        await router.start()
        print(
            f"cluster router for {args.cluster_dir} on "
            f"{config.host}:{router.port} "
            f"({manifest.num_shards} shard(s) x "
            f"{manifest.replicas_per_shard} replica(s), "
            f"alpha={config.alpha}, mode={args.mode})",
            flush=True,
        )
        try:
            await router.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            print("draining and shutting down ...")
            await router.stop()

    supervisor.start()
    try:
        router = ClusterRouter(manifest, supervisor.endpoints(), config)
        try:
            asyncio.run(_run(router))
        except KeyboardInterrupt:
            pass
    finally:
        supervisor.stop()
    return 0


def _cmd_cluster_status(args: argparse.Namespace) -> int:
    from .cluster import ClusterManifest

    manifest = ClusterManifest.load(args.cluster_dir)
    payload = {
        "cluster_dir": str(args.cluster_dir),
        "source": manifest.source,
        "shards": manifest.num_shards,
        "replicas_per_shard": manifest.replicas_per_shard,
        "total_rows": manifest.total_rows,
        "key_bits": manifest.key_bits,
        "plan": [
            {
                "shard": s.shard,
                "rows": s.rows,
                "segments": [a.name for a in s.segments],
                "key_lo": s.key_lo,
                "key_hi": s.key_hi,
                "replicas": list(s.replicas),
            }
            for s in manifest.shards
        ],
    }
    if args.port is not None:
        from .serve.client import ServeClient

        with ServeClient(host=args.host, port=args.port) as client:
            payload["router"] = {
                "health": client.health(),
                "stats": client.stats(),
            }
    print(json.dumps(payload, indent=2))
    return 0


def _cmd_request(args: argparse.Namespace) -> int:
    from .serve.client import ServeClient

    _validate_common_args(args)
    with ServeClient(
        host=args.host, port=args.port, timeout=args.timeout,
        retries=args.retries,
    ) as client:
        if args.op in ("health", "stats"):
            payload = client.health() if args.op == "health" \
                else client.stats()
            print(json.dumps(payload, indent=2))
            return 0
        if args.op == "query":
            if args.queries is None:
                print("error: query needs --queries FILE", file=sys.stderr)
                return 2
            queries = np.load(args.queries).astype(np.float64)
            results = client.query(queries, deadline_ms=args.deadline_ms)
            for i, result in enumerate(results):
                print(f"query {i}: {len(result)} results")
                for row in range(min(len(result), args.limit)):
                    print(f"  id={result.ids[row]} "
                          f"tc={result.timecodes[row]:.1f}")
            return 0
        if args.op == "detect":
            if args.queries is None:
                print("error: detect needs --queries FILE (fingerprints)",
                      file=sys.stderr)
                return 2
            fingerprints = np.load(args.queries).astype(np.float64)
            timecodes = (
                np.load(args.timecodes).astype(np.float64)
                if args.timecodes is not None
                else np.arange(fingerprints.shape[0], dtype=np.float64)
            )
            detections = client.detect(
                fingerprints, timecodes, threshold=args.threshold,
                deadline_ms=args.deadline_ms,
            )
            if not detections:
                print("no copy detected")
                return 1
            for det in detections:
                print(
                    f"copy of video {det['video_id']}: "
                    f"offset b={det['offset']:.1f} frames, "
                    f"n_sim={det['nsim']}/{det['num_candidates']}"
                )
            return 0
        # ingest
        if not args.stores:
            print("error: ingest needs store files", file=sys.stderr)
            return 2
        for path in args.stores:
            store = FingerprintStore.load(path)
            reply = client.ingest(
                store.fingerprints, store.ids, store.timecodes
            )
            print(
                f"ingested {reply['added']} fingerprints from {path} "
                f"({reply['num_segments']} segments, "
                f"{reply['pending_rows']} unsealed)"
            )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro-s3`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-s3",
        description="Statistical similarity search / video copy detection",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("synth", help="generate a procedural test clip")
    p.add_argument("--frames", type=int, default=150)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_synth)

    p = sub.add_parser("extract", help="extract fingerprints from a video")
    p.add_argument("video", help="(T, H, W) uint8 .npy file")
    p.add_argument("--video-id", type=int, required=True)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_extract)

    p = sub.add_parser("merge", help="concatenate fingerprint stores")
    p.add_argument("stores", nargs="+")
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_merge)

    p = sub.add_parser("build", help="build an S3 index from a store")
    p.add_argument("store")
    p.add_argument("--sigma", type=float, default=20.0)
    p.add_argument("--depth", type=int, default=None)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_build)

    p = sub.add_parser(
        "ingest",
        help="add fingerprint stores to a segmented live index directory",
    )
    p.add_argument("directory", help="segmented index directory "
                   "(created on first ingest)")
    p.add_argument("stores", nargs="+", help="fingerprint store files")
    p.add_argument("--ndims", type=int, default=None,
                   help="dimension when creating (default: first store's)")
    p.add_argument("--sigma", type=float, default=20.0,
                   help="distortion severity when creating")
    p.add_argument("--depth", type=int, default=None,
                   help="partition depth when creating")
    p.add_argument("--memtable-rows", type=int, default=8192,
                   help="seal the memtable past this many rows")
    p.add_argument("--max-segments", type=int, default=8,
                   help="compaction trigger (segment-count cap)")
    p.add_argument("--flush", action="store_true",
                   help="seal the memtable after ingesting")
    p.add_argument("--durability", default="group",
                   help="WAL fsync policy: always (fsync every append), "
                        "group (one fsync per batch of concurrent "
                        "appends; default), async (no fsync — fastest, "
                        "a crash can lose the unsealed tail)")
    p.set_defaults(func=_cmd_ingest)

    p = sub.add_parser(
        "compact", help="merge segments of a segmented index directory"
    )
    p.add_argument("directory")
    p.add_argument("--max-segments", type=int, default=8)
    p.add_argument("--flush", action="store_true",
                   help="seal the memtable before compacting")
    p.add_argument("--force", action="store_true",
                   help="merge everything into a single segment")
    p.set_defaults(func=_cmd_compact)

    p = sub.add_parser("query", help="run statistical queries")
    p.add_argument("index", help="index prefix (from `build --out`) "
                   "or segmented index directory")
    p.add_argument("--alpha", type=float, default=0.8)
    p.add_argument("--queries", default=None, help="(N, D) .npy of queries")
    p.add_argument("--from-row", type=int, default=None,
                   help="query with a stored fingerprint (sanity check)")
    p.add_argument("--limit", type=int, default=5,
                   help="matches to print per query")
    p.add_argument("--batch-size", type=int, default=32,
                   help="queries per batched engine call")
    p.add_argument("--workers", type=int, default=1,
                   help="scan shards (threads or processes)")
    p.add_argument("--executor", choices=list(EXECUTOR_STRATEGIES),
                   default="auto",
                   help="scan execution strategy: threads shard inside "
                        "the GIL, processes attach the store zero-copy "
                        "and scan in parallel, auto picks by index size")
    p.add_argument("--prefilter", choices=list(PREFILTER_MODES),
                   default="auto",
                   help="segment-sketch pre-filter: skip segments the "
                        "always-resident sketches prove empty for the "
                        "query (admissible — results are bit-identical); "
                        "off disables, auto/on enable")
    p.add_argument("--planner", choices=list(PLANNER_MODES),
                   default="auto",
                   help="executor planning for --executor auto: measured "
                        "uses the host's micro-calibrated cost model, "
                        "fixed keeps the legacy row/cpu thresholds, auto "
                        "prefers measured and falls back to fixed")
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("detect", help="detect copies in a candidate video")
    p.add_argument("index", help="index prefix or segmented index directory")
    p.add_argument("video", help="(T, H, W) uint8 .npy file")
    p.add_argument("--alpha", type=float, default=0.8)
    p.add_argument("--threshold", type=int, default=10)
    p.add_argument("--batch-size", type=int, default=32,
                   help="queries per batched engine call")
    p.add_argument("--workers", type=int, default=1,
                   help="scan shards (threads or processes)")
    p.add_argument("--executor", choices=list(EXECUTOR_STRATEGIES),
                   default="auto",
                   help="scan execution strategy (see `query --help`)")
    p.add_argument("--prefilter", choices=list(PREFILTER_MODES),
                   default="auto",
                   help="segment-sketch pre-filter (see `query --help`)")
    p.add_argument("--planner", choices=list(PLANNER_MODES),
                   default="auto",
                   help="executor planning for --executor auto: measured "
                        "uses the host's micro-calibrated cost model, "
                        "fixed keeps the legacy row/cpu thresholds, auto "
                        "prefers measured and falls back to fixed")
    p.set_defaults(func=_cmd_detect)

    p = sub.add_parser(
        "info",
        help="describe a fingerprint store file or segmented index directory",
    )
    p.add_argument("store")
    p.add_argument("--json", action="store_true",
                   help="emit a machine-readable summary (same schema as "
                        "the detection service's health payload)")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser(
        "serve",
        help="run the detection service over an index (Ctrl-C drains)",
    )
    p.add_argument("index", help="index prefix or segmented index directory")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765,
                   help="0 binds an ephemeral port")
    p.add_argument("--alpha", type=float, default=0.8,
                   help="the expectation every request is served at")
    p.add_argument("--max-batch", type=int, default=32,
                   help="fingerprints per coalesced engine call")
    p.add_argument("--max-wait-ms", type=float, default=2.0,
                   help="micro-batching window")
    p.add_argument("--queue-limit", type=int, default=1024,
                   help="queued fingerprints before requests are shed")
    p.add_argument("--workers", type=int, default=1,
                   help="scan shards (threads or processes)")
    p.add_argument("--executor", choices=list(EXECUTOR_STRATEGIES),
                   default="auto",
                   help="scan execution strategy (see `query --help`); "
                        "the scan pool is warmed before the socket opens")
    p.add_argument("--prefilter", choices=list(PREFILTER_MODES),
                   default="auto",
                   help="segment-sketch pre-filter (see `query --help`)")
    p.add_argument("--planner", choices=list(PLANNER_MODES),
                   default="auto",
                   help="executor planning for --executor auto: measured "
                        "uses the host's micro-calibrated cost model, "
                        "fixed keeps the legacy row/cpu thresholds, auto "
                        "prefers measured and falls back to fixed")
    p.add_argument("--cache", choices=["auto", "on", "off"],
                   default="auto",
                   help="serve-path caching: result LRU, in-flight "
                        "dedupe and hot-block gather cache (answers "
                        "stay bit-identical; invalidated on ingest)")
    p.add_argument("--cache-capacity", type=int, default=None,
                   help="result-cache entries kept (default 4096)")
    p.add_argument("--storage-budget", default=None, metavar="BYTES",
                   help="tiered-storage resident budget (accepts K/M/G "
                        "suffixes, e.g. 64M); segments beyond it demote "
                        "to the cold blob tier")
    p.add_argument("--cold-dir", default=None,
                   help="cold-tier blob directory (default: cold/ inside "
                        "the index directory)")
    p.add_argument("--port-file", default=None,
                   help="write the bound port here after startup "
                        "(atomically; used by the cluster supervisor)")
    p.add_argument("--durability", default="group",
                   help="WAL fsync policy for ingest: always / group "
                        "(default; concurrent appends share one fsync) "
                        "/ async (see `ingest --help`)")
    p.add_argument("--no-maintenance", action="store_true",
                   help="run seal/compaction inline on the write path "
                        "instead of the background maintenance worker "
                        "(debugging aid; stalls are visible in "
                        "stats.batcher.engine_stall)")
    p.add_argument("--backpressure-rows", type=int, default=None,
                   help="unsealed rows above which ingest is shed with "
                        "the retryable `unavailable` code (default: "
                        "4x the memtable seal threshold)")
    p.add_argument("--compact-mb-per-s", type=float, default=None,
                   help="background-compaction I/O rate limit "
                        "(default: unlimited)")
    p.set_defaults(func=_cmd_serve, batch_size=None)

    p = sub.add_parser(
        "tier",
        help="inspect tiered segment storage (see docs/storage-tiers.md)",
    )
    tsub = p.add_subparsers(dest="tier_cmd", required=True)
    tp = tsub.add_parser(
        "status",
        help="per-tier residency and activity of a segmented index",
    )
    tp.add_argument("directory", help="segmented index directory")
    tp.add_argument("--json", action="store_true",
                    help="emit the machine-readable storage block (same "
                         "schema as the serve stats payload)")
    tp.set_defaults(func=_cmd_tier_status)
    tp = tsub.add_parser(
        "attach",
        help="persist a tier budget/cold directory into the manifest "
             "and demote down to it",
    )
    tp.add_argument("directory", help="segmented index directory")
    tp.add_argument("--storage-budget", default=None, metavar="BYTES",
                    help="resident budget (accepts K/M/G suffixes); "
                         "segments beyond it demote to the cold tier")
    tp.add_argument("--cold-dir", default=None,
                    help="cold-tier blob directory (default: cold/ "
                         "inside the index directory)")
    tp.add_argument("--json", action="store_true",
                    help="emit the resulting storage block as JSON")
    tp.set_defaults(func=_cmd_tier_attach)

    p = sub.add_parser(
        "cluster",
        help="shard a sealed segmented index and serve it scatter-gather",
    )
    csub = p.add_subparsers(dest="cluster_cmd", required=True)

    cp = csub.add_parser(
        "plan",
        help="partition a sealed segmented index into shard directories",
    )
    cp.add_argument("source", help="sealed segmented index directory")
    cp.add_argument("cluster_dir", help="output cluster directory")
    cp.add_argument("--shards", type=int, required=True,
                    help="number of shards (<= number of segments)")
    cp.add_argument("--replicas", type=int, default=1,
                    help="full copies per shard (failover targets)")
    cp.add_argument("--seal", action="store_true",
                    help="flush unsealed rows in the source first")
    cp.add_argument("--storage-budget", default=None, metavar="BYTES",
                    help="stamp a tiered-storage budget (K/M/G suffixes) "
                         "into every replica manifest; replicas demote "
                         "to their cold tier on first open")
    cp.add_argument("--cold-dir", default=None,
                    help="cold-tier blob directory for replicas "
                         "(default: cold/ inside each replica)")
    cp.set_defaults(func=_cmd_cluster_plan)

    cp = csub.add_parser(
        "serve",
        help="launch all shard replicas plus the scatter-gather router",
    )
    cp.add_argument("cluster_dir", help="planned cluster directory")
    cp.add_argument("--host", default="127.0.0.1")
    cp.add_argument("--port", type=int, default=8765,
                    help="router port (0 binds an ephemeral port)")
    cp.add_argument("--alpha", type=float, default=0.8,
                    help="cluster-wide alpha (router and every shard)")
    cp.add_argument("--mode", choices=["process", "thread"],
                    default="process",
                    help="replica isolation: one process per replica "
                         "(production) or in-process threads (tests)")
    cp.add_argument("--shard-timeout", type=float, default=30.0,
                    help="per-attempt cap on one replica answering")
    cp.add_argument("--cache", choices=["auto", "on", "off"],
                    default="auto",
                    help="per-shard wire-result cache at the router "
                         "(dirty shards always bypass it)")
    cp.add_argument("--cache-capacity", type=int, default=None,
                    help="cached results kept per shard (default 4096)")
    cp.set_defaults(func=_cmd_cluster_serve)

    cp = csub.add_parser(
        "status",
        help="print the cluster plan (and live router stats with --port)",
    )
    cp.add_argument("cluster_dir", help="planned cluster directory")
    cp.add_argument("--host", default="127.0.0.1")
    cp.add_argument("--port", type=int, default=None,
                    help="also query a running router at this port")
    cp.set_defaults(func=_cmd_cluster_status)

    p = sub.add_parser(
        "request",
        help="send one request to a running detection service",
    )
    p.add_argument("op", choices=["query", "detect", "ingest",
                                  "stats", "health"])
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765)
    p.add_argument("--queries", default=None,
                   help="(N, D) .npy of fingerprints (query/detect)")
    p.add_argument("--timecodes", default=None,
                   help="(N,) .npy of candidate timecodes (detect)")
    p.add_argument("stores", nargs="*",
                   help="fingerprint store files (ingest)")
    p.add_argument("--threshold", type=int, default=None,
                   help="detection decision threshold (detect)")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="per-request deadline propagated to the server")
    p.add_argument("--limit", type=int, default=5,
                   help="matches to print per query")
    p.add_argument("--timeout", type=float, default=10.0)
    p.add_argument("--retries", type=int, default=4)
    p.set_defaults(func=_cmd_request)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
