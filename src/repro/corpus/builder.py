"""Reference-corpus construction for the experiments.

Bundles the video generator and the extraction pipeline into the objects
the experiments consume: a set of referenced clips, their merged
fingerprint store (one identifier per clip) and helpers to cut ground-truth
candidate segments out of them — the paper's "we extract randomly 100 video
sequences of 10 seconds each from the reference databases".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cbcd.evaluation import GroundTruth
from ..errors import ConfigurationError
from ..fingerprint.extractor import (
    ExtractionResult,
    ExtractorConfig,
    FingerprintExtractor,
)
from ..index.store import FingerprintStore
from ..rng import SeedLike, resolve_rng
from ..video.synthetic import SceneConfig, VideoClip, generate_corpus


@dataclass
class ReferenceCorpus:
    """Referenced clips plus their extracted fingerprints."""

    clips: list[VideoClip]
    extractions: list[ExtractionResult]
    store: FingerprintStore
    extractor: FingerprintExtractor

    @property
    def num_videos(self) -> int:
        """Number of referenced programmes in the corpus."""
        return len(self.clips)

    def fingerprints_per_clip(self) -> np.ndarray:
        """Number of fingerprints each referenced clip contributed."""
        return np.array([len(e) for e in self.extractions], dtype=np.int64)

    def candidate(
        self,
        video_id: int,
        start_frame: int,
        num_frames: int,
    ) -> tuple[VideoClip, GroundTruth]:
        """Cut a candidate segment with its ground truth."""
        if not 0 <= video_id < self.num_videos:
            raise ConfigurationError(
                f"video_id must be in [0, {self.num_videos}), got {video_id}"
            )
        clip = self.clips[video_id]
        sub = clip.subclip(start_frame, start_frame + num_frames)
        return sub, GroundTruth(video_id=video_id, start_frame=float(start_frame))

    def random_candidates(
        self,
        num: int,
        num_frames: int,
        rng: SeedLike = None,
    ) -> list[tuple[VideoClip, GroundTruth]]:
        """Draw *num* random candidate segments (paper §V-C protocol)."""
        gen = resolve_rng(rng)
        candidates = []
        for _ in range(num):
            vid = int(gen.integers(0, self.num_videos))
            max_start = self.clips[vid].num_frames - num_frames
            if max_start < 0:
                raise ConfigurationError(
                    f"clips of {self.clips[vid].num_frames} frames cannot "
                    f"provide {num_frames}-frame candidates"
                )
            start = int(gen.integers(0, max_start + 1))
            candidates.append(self.candidate(vid, start, num_frames))
        return candidates


def build_reference_corpus(
    num_videos: int,
    frames_per_video: int,
    scene: SceneConfig | None = None,
    extractor_config: ExtractorConfig | None = None,
    seed: SeedLike = None,
) -> ReferenceCorpus:
    """Generate clips and extract the reference fingerprint database.

    Clip ``i`` gets identifier ``i``; time-codes are frame indices within
    each clip.
    """
    if num_videos < 1:
        raise ConfigurationError(f"num_videos must be >= 1, got {num_videos}")
    rng = resolve_rng(seed)
    clips = generate_corpus(
        num_videos, frames_per_video, config=scene, seed=rng
    )
    extractor = FingerprintExtractor(extractor_config)
    extractions = [
        extractor.extract(clip, video_id=i) for i, clip in enumerate(clips)
    ]
    store = FingerprintStore.concatenate([e.store for e in extractions])
    return ReferenceCorpus(
        clips=clips, extractions=extractions, store=store, extractor=extractor
    )
