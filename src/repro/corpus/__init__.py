"""Experiment data plumbing: reference corpora, filler, query workloads."""

from .builder import ReferenceCorpus, build_reference_corpus
from .filler import FILLER_ID_BASE, resample_fingerprints, scale_store
from .workload import ModelQueryWorkload, model_queries, stream_queries

__all__ = [
    "FILLER_ID_BASE",
    "ModelQueryWorkload",
    "ReferenceCorpus",
    "build_reference_corpus",
    "model_queries",
    "resample_fingerprints",
    "scale_store",
    "stream_queries",
]
