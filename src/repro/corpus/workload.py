"""Query workload generators for the search benchmarks (paper §V-A/B).

Two workload styles appear in the paper:

* **model queries** (§V-A): pick real stored fingerprints ``S`` and query
  ``Q = S + ΔS`` with ``ΔS`` drawn from the distortion model — ground truth
  is known exactly (did the search return ``S``?);
* **stream queries** (§V-B): fingerprints extracted from an unrelated
  stream, i.e. realistic candidate material with no planted answer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..index.store import FingerprintStore
from ..rng import SeedLike, resolve_rng


@dataclass
class ModelQueryWorkload:
    """Planted queries with known originals.

    ``queries[i]`` is a distorted copy of store row ``rows[i]``; a search
    *retrieves* the original when that row's fingerprint appears in its
    results.
    """

    queries: np.ndarray
    rows: np.ndarray
    originals: np.ndarray
    sigma: float

    def __len__(self) -> int:
        return int(self.queries.shape[0])

    def retrieved(self, i: int, result_fingerprints: np.ndarray) -> bool:
        """Did result *i* include its original fingerprint?"""
        if result_fingerprints.shape[0] == 0:
            return False
        return bool(
            np.any(np.all(result_fingerprints == self.originals[i], axis=1))
        )


def model_queries(
    store: FingerprintStore,
    num: int,
    sigma: float,
    rng: SeedLike = None,
    clip_to_grid: bool = True,
) -> ModelQueryWorkload:
    """Build the §V-A workload: ``Q = S + ΔS`` with i.i.d. ``N(0, σ)``."""
    if num < 1:
        raise ConfigurationError(f"num must be >= 1, got {num}")
    if sigma <= 0:
        raise ConfigurationError(f"sigma must be > 0, got {sigma}")
    gen = resolve_rng(rng)
    rows = gen.integers(0, len(store), size=num)
    originals = store.fingerprints[rows].copy()
    queries = originals.astype(np.float64) + gen.normal(
        0.0, sigma, size=(num, store.ndims)
    )
    if clip_to_grid:
        queries = np.clip(queries, 0.0, 255.0)
    return ModelQueryWorkload(
        queries=queries, rows=rows, originals=originals, sigma=float(sigma)
    )


def stream_queries(
    pool: FingerprintStore,
    num: int,
    jitter_sigma: float = 12.0,
    rng: SeedLike = None,
) -> np.ndarray:
    """Build §V-B-style candidate queries: realistic, no planted answer.

    Pool rows perturbed well beyond the distortion model's severity, so
    they are distributed like real extracted fingerprints without being
    exact copies of stored ones.
    """
    if num < 1:
        raise ConfigurationError(f"num must be >= 1, got {num}")
    gen = resolve_rng(rng)
    rows = gen.integers(0, len(pool), size=num)
    queries = pool.fingerprints[rows].astype(np.float64)
    if jitter_sigma > 0:
        queries = queries + gen.normal(0.0, jitter_sigma, queries.shape)
    return np.clip(queries, 0.0, 255.0)
