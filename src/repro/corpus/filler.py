"""Resampling-based database up-scaling (DESIGN.md §2, substitution).

The paper sweeps databases up to 1.5 billion fingerprints — 30,000 hours of
real television.  Extracting that many fingerprints from procedural video
is pointless (the pixels are synthetic anyway); what matters for index
behaviour is the *distribution* of the stored points, because it drives
p-block occupancy.  The filler therefore draws rows from a pool of
genuinely extracted fingerprints and perturbs them slightly, preserving the
empirical marginals and local clustering while producing arbitrarily many
rows.

Filler fingerprints carry identifiers from a reserved range so experiment
code can always distinguish real referenced material from ballast.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..index.kernels import clip_round_u8
from ..index.store import FingerprintStore
from ..rng import SeedLike, resolve_rng

#: Identifiers at or above this value denote filler material.
FILLER_ID_BASE = 1_000_000


def resample_fingerprints(
    pool: FingerprintStore,
    count: int,
    jitter_sigma: float = 4.0,
    id_base: int = FILLER_ID_BASE,
    rows_per_id: int = 500,
    timecode_span: float = 250.0,
    rng: SeedLike = None,
) -> FingerprintStore:
    """Draw *count* filler fingerprints from *pool*.

    Each row is a pool row plus i.i.d. normal jitter of *jitter_sigma*
    (clipped to bytes).  Identifiers are assigned in blocks of
    *rows_per_id* rows, each block mimicking one archived programme with
    time-codes uniform over *timecode_span* frames — matching the
    fingerprint-per-frame density of real extracted clips, so the chance
    of coincidental temporal coherence on ballast identifiers is the same
    as on genuine ones.
    """
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    if len(pool) == 0:
        raise ConfigurationError("pool store is empty")
    if jitter_sigma < 0:
        raise ConfigurationError(f"jitter_sigma must be >= 0, got {jitter_sigma}")
    if rows_per_id < 1:
        raise ConfigurationError(f"rows_per_id must be >= 1, got {rows_per_id}")
    if timecode_span <= 0:
        raise ConfigurationError(
            f"timecode_span must be > 0, got {timecode_span}"
        )
    gen = resolve_rng(rng)

    if count == 0:
        return FingerprintStore.empty(pool.ndims)
    rows = gen.integers(0, len(pool), size=count)
    fps = pool.fingerprints[rows]
    if jitter_sigma > 0:
        # One float buffer (the jitter), rounded/clipped in place by the
        # integer-domain kernel epilogue — not a float64 copy of the pool
        # rows plus another for the sum.  Values are unchanged: uint8 +
        # float64 upcasts exactly, and round/clip of exact integers is
        # the identity.
        fps = clip_round_u8(fps + gen.normal(0.0, jitter_sigma, fps.shape))

    block = np.arange(count) // rows_per_id
    ids = (id_base + block).astype(np.uint32)
    timecodes = gen.uniform(0.0, timecode_span, size=count)
    return FingerprintStore(fingerprints=fps, ids=ids, timecodes=timecodes)


def scale_store(
    base: FingerprintStore,
    target_rows: int,
    jitter_sigma: float = 4.0,
    rng: SeedLike = None,
) -> FingerprintStore:
    """Grow *base* to *target_rows* rows by appending filler.

    The base rows (real referenced material) are kept verbatim at the
    front; the remainder is resampled ballast.  With ``target_rows <=
    len(base)`` the base is returned unchanged.
    """
    if target_rows <= len(base):
        return base
    filler = resample_fingerprints(
        base, target_rows - len(base), jitter_sigma=jitter_sigma, rng=rng
    )
    return FingerprintStore.concatenate([base, filler])
