"""Tiered segment storage: RAM-hot / mmap-warm / blob-cold.

See :mod:`repro.storage.manager` for the architecture overview and
``docs/storage-tiers.md`` for the operator's guide.

Import-cycle rule: this package imports :mod:`repro.index` at module
level; nothing in :mod:`repro.index` may import :mod:`repro.storage`
at module level (only lazily inside functions).
"""

from .blob import BLOB_SUFFIX, BlobBackend, FakeBlobBackend, FileBlobBackend
from .coldseg import (
    ColdSegmentReader,
    fetch_columns,
    keys_filename,
    load_keys,
    row_bytes,
    save_keys,
    store_from_blob,
)
from .manager import (
    DEFAULT_COLD_DIR,
    TIER_COLD,
    TIER_HOT,
    TIER_WARM,
    TIERS,
    StorageConfig,
    TierManager,
    TierStats,
)
from .prefetch import Prefetcher, PrefetchHandle

__all__ = [
    "BLOB_SUFFIX",
    "BlobBackend",
    "FakeBlobBackend",
    "FileBlobBackend",
    "ColdSegmentReader",
    "fetch_columns",
    "keys_filename",
    "load_keys",
    "row_bytes",
    "save_keys",
    "store_from_blob",
    "DEFAULT_COLD_DIR",
    "TIER_COLD",
    "TIER_HOT",
    "TIER_WARM",
    "TIERS",
    "StorageConfig",
    "TierManager",
    "TierStats",
    "Prefetcher",
    "PrefetchHandle",
]
