"""The tier manager: residency, budget, promotion/demotion, fetch.

Every sealed segment of a :class:`~repro.index.segmented.lsm.SegmentedS3Index`
is in exactly one tier:

* **hot** — its :class:`~repro.index.store.FingerprintStore` is in RAM
  (freshly sealed segments, or ``open(mmap=False)``);
* **warm** — the store is an ``np.memmap`` of the local ``save()`` file
  (``open(mmap=True)``, and the landing tier of a promotion);
* **cold** — the store bytes live only in the blob backend; locally the
  segment keeps its ``.sketch`` and ``.keys`` sidecars, so block
  selection and sketch pruning never touch the backend.

The :class:`TierManager` enforces a byte budget over the *resident*
(hot + warm) tiers with LRU-by-last-scan demotion, promotes cold
segments back up after ``promote_after`` scans (hysteresis — one
stray query does not trigger a full segment download), and records
every segment's tier in ``MANIFEST.json`` so a reopened directory
resumes in the same shape.

All tier **transitions** are **copy-on-write**: a transition builds a
*replacement* :class:`Segment` (new meta, new index or cold reader) and
swaps it into the index's live view atomically
(:meth:`SegmentedS3Index._swap_segment`).  The old Segment object is
never mutated, so a query pinned on a snapshot view keeps a working
store or reader however the live tiering moves — the slow I/O (blob
upload/download) happens entirely outside the index's locks.
Transitions run inside :meth:`settle`, which the engine serialises
under its maintenance lock — inline after a query/flush/compaction, or
on the background maintenance worker when one is running (queries then
only *request* a settle and never perform transitions themselves).

Crash safety mirrors the LSM protocol: a demotion uploads the blob and
fsyncs the ``.keys`` sidecar *before* the manifest flips the tier to
``cold``, and deletes the local store file only *after*; a crash at any
point leaves either a resident segment (plus a harmless early blob) or
a complete cold segment (plus a stale store file that open() GCs).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..errors import ColdFetchError, StorageError
from ..index.store import FingerprintStore, expected_file_size
from .blob import BlobBackend, FileBlobBackend
from .coldseg import (
    ColdSegmentReader,
    fetch_columns,
    keys_filename,
    load_keys,
    row_bytes,
    save_keys,
    store_from_blob,
)
from .prefetch import Prefetcher, PrefetchHandle

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..index.segmented.lsm import Segment, SegmentedS3Index

TIER_HOT = "hot"
TIER_WARM = "warm"
TIER_COLD = "cold"
TIERS = (TIER_HOT, TIER_WARM, TIER_COLD)

#: Default cold-blob directory name inside an index directory.
DEFAULT_COLD_DIR = "cold"


@dataclass(frozen=True)
class StorageConfig:
    """How an index's segments are tiered.

    ``budget_bytes`` bounds the summed store payload of hot + warm
    segments (``None`` = unbounded, nothing ever demotes).  The cold
    backend is either ``backend`` (an explicit object — tests pass the
    fault-injectable fake) or a :class:`FileBlobBackend` over
    ``cold_dir`` (relative paths resolve against the index directory;
    ``None`` falls back to ``<index>/cold``).  ``promote_after`` is the
    promotion hysteresis: a cold segment is fetched whole and promoted
    only after this many distinct scans hit it.
    """

    budget_bytes: Optional[int] = None
    cold_dir: Optional[str] = None
    backend: Optional[BlobBackend] = None
    promote_after: int = 2
    prefetch_workers: int = 2

    def __post_init__(self) -> None:
        if self.budget_bytes is not None and self.budget_bytes < 0:
            raise StorageError(
                f"budget_bytes must be >= 0, got {self.budget_bytes}"
            )
        if self.promote_after < 1:
            raise StorageError(
                f"promote_after must be >= 1, got {self.promote_after}"
            )

    # ------------------------------------------------------------------
    def to_manifest(self) -> dict:
        """The JSON block recorded in ``MANIFEST.json``.

        An explicit backend object cannot be persisted — reopening such
        a directory requires passing the backend again (the in-memory
        fake is gone with the process anyway).
        """
        return {
            "budget_bytes": self.budget_bytes,
            "cold_dir": self.cold_dir,
            "promote_after": self.promote_after,
        }

    @classmethod
    def from_manifest(cls, payload: dict) -> "StorageConfig":
        return cls(
            budget_bytes=payload.get("budget_bytes"),
            cold_dir=payload.get("cold_dir"),
            promote_after=int(payload.get("promote_after", 2) or 2),
        )


@dataclass
class TierStats:
    """Counters of tier activity since the manager was created."""

    fetches: int = 0
    fetch_rows: int = 0
    fetch_bytes: int = 0
    fetch_seconds: float = 0.0
    full_fetches: int = 0
    full_fetch_bytes: int = 0
    promotions: int = 0
    climbs: int = 0
    demotions: int = 0
    cold_errors: int = 0

    def snapshot(self) -> dict:
        return {
            "fetches": self.fetches,
            "fetch_rows": self.fetch_rows,
            "fetch_bytes": self.fetch_bytes,
            "fetch_seconds": round(self.fetch_seconds, 6),
            "full_fetches": self.full_fetches,
            "full_fetch_bytes": self.full_fetch_bytes,
            "promotions": self.promotions,
            "climbs": self.climbs,
            "demotions": self.demotions,
            "cold_errors": self.cold_errors,
        }


@dataclass
class _SegState:
    """Per-segment LRU / hysteresis bookkeeping (in-memory only)."""

    last_scan: int = 0
    cold_touches: int = 0


class TierManager:
    """Residency controller of one segmented index (see module docs)."""

    def __init__(
        self,
        index: "SegmentedS3Index",
        config: StorageConfig,
    ):
        self.index = index
        self.config = config
        self.budget_bytes = config.budget_bytes
        self.promote_after = config.promote_after
        if config.backend is not None:
            self.backend = config.backend
            self.cold_dir: Optional[Path] = None
        else:
            cold = Path(config.cold_dir or DEFAULT_COLD_DIR)
            if not cold.is_absolute():
                cold = index.directory / cold
            self.cold_dir = cold
            self.backend = FileBlobBackend(cold)
        self.stats = TierStats()
        self.prefetcher = Prefetcher(config.prefetch_workers)
        self._clock = 0
        self._state: dict[str, _SegState] = {}
        # Guards _clock/_state: touch() runs on every query thread while
        # settle() reads the same bookkeeping on the maintenance worker.
        self._state_lock = threading.Lock()

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _seg_state(self, name: str) -> _SegState:
        state = self._state.get(name)
        if state is None:
            state = self._state[name] = _SegState()
        return state

    def touch(self, seg: "Segment") -> None:
        """Record that a scan hit *seg* (drives LRU and hysteresis)."""
        with self._state_lock:
            self._clock += 1
            state = self._seg_state(seg.meta.name)
            state.last_scan = self._clock
            if seg.index is None:
                state.cold_touches += 1

    def segment_bytes(self, seg: "Segment") -> int:
        """Store-payload size of one segment (budget units)."""
        return seg.meta.count * row_bytes(self.index.ndims)

    def resident_bytes(self) -> int:
        return sum(
            self.segment_bytes(seg)
            for seg in self.index._segments
            if seg.index is not None
        )

    # ------------------------------------------------------------------
    # fetch paths
    # ------------------------------------------------------------------
    def fetch_ranges(
        self, seg: "Segment", ranges: list[tuple[int, int]]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fetch exactly *ranges* of a cold segment's columns.

        Returns ``(ids, timecodes, fingerprints)`` in range order —
        byte-identical to a resident gather of the same rows.  Counts
        the fetched payload bytes (the eq.-(5) ``bytes_loaded`` of the
        real executor).
        """
        name = seg.meta.name
        t0 = time.perf_counter()
        try:
            ids, tcs, fps, fetched = fetch_columns(
                self.backend, name, seg.meta.count, self.index.ndims, ranges
            )
        except ColdFetchError:
            self.stats.cold_errors += 1
            raise
        self.stats.fetches += 1
        self.stats.fetch_rows += int(ids.size)
        self.stats.fetch_bytes += fetched
        self.stats.fetch_seconds += time.perf_counter() - t0
        return ids, tcs, fps

    def prefetch(
        self, seg: "Segment", ranges: list[tuple[int, int]]
    ) -> PrefetchHandle:
        """Start an async :meth:`fetch_ranges`; collect with :meth:`collect`."""
        return self.prefetcher.submit(self.fetch_ranges, seg, ranges)

    def collect(self, handle: PrefetchHandle):
        """Wait for a prefetch and score the overlap hit/miss."""
        return self.prefetcher.collect(handle)

    def load_store(self, seg: "Segment") -> FingerprintStore:
        """The full store of *seg*, fetching the blob when cold.

        Compaction uses this: cold inputs are fetched whole, merged,
        and their blobs discarded once the manifest has switched over.
        """
        if seg.index is not None:
            return seg.index.store
        name = seg.meta.name
        t0 = time.perf_counter()
        try:
            data = self.backend.get(name)
        except Exception as exc:
            self.stats.cold_errors += 1
            raise ColdFetchError(name, f"backend read failed: {exc}") from exc
        store = store_from_blob(name, data, seg.meta.count, self.index.ndims)
        self.stats.full_fetches += 1
        self.stats.full_fetch_bytes += len(data)
        self.stats.fetch_seconds += time.perf_counter() - t0
        return store

    # ------------------------------------------------------------------
    # tier transitions (calling thread only)
    # ------------------------------------------------------------------
    def demote(self, seg: "Segment") -> bool:
        """Resident → cold: blob + keys durable first, manifest, unlink.

        Copy-on-write: *seg* itself is untouched; a replacement Segment
        carrying the cold reader is swapped into the live view, so a
        query pinned on the old view keeps scanning the resident store
        (hot array or POSIX-unlinked mmap) it captured.  Returns
        ``False`` when *seg* was no longer live (e.g. compacted away
        while the upload ran) — then nothing changed.
        """
        if seg.index is None:
            return False
        from ..index.segmented.lsm import Segment
        from ..index.segmented.manifest import SegmentMeta

        index = self.index
        name = seg.meta.name
        path = index.directory / (name + ".store")
        if not path.is_file():  # hot segment never saved (cannot happen
            seg.index.store.save(path)  # post-flush, but stay safe)
        self.backend.put(name, path.read_bytes())
        layout = seg.index.layout
        keys_path = index.directory / keys_filename(name)
        save_keys(
            keys_path, np.asarray(layout.keys, dtype=np.uint64),
            layout.key_bits,
        )
        reader = ColdSegmentReader(
            name, seg.meta.count, index.ndims, index.manifest.order,
            index.manifest.key_levels,
            load_keys(keys_path, seg.meta.count, layout.key_bits),
        )
        replacement = Segment(
            meta=SegmentMeta(name, seg.meta.count, seg.meta.sketch, TIER_COLD),
            index=None,
            sketch=seg.sketch,
            cold=reader,
        )
        if not index._swap_segment(seg, replacement, persist=True):
            # The segment left the manifest while we uploaded; the early
            # blob/keys are orphans the usual GC reclaims.
            self.discard_blob(name)
            keys_path.unlink(missing_ok=True)
            return False
        path.unlink(missing_ok=True)
        with self._state_lock:
            self._seg_state(name).cold_touches = 0
        self.stats.demotions += 1
        return True

    def promote(self, seg: "Segment") -> bool:
        """Cold → warm: fetch the blob, restore the local mmap store.

        Copy-on-write like :meth:`demote`: the fetch and file restore
        run without touching *seg*; the warm replacement is swapped in
        at the end (``False`` when the segment is no longer live).
        """
        if seg.index is not None:
            return False
        from ..index.s3 import S3Index
        from ..index.segmented.lsm import Segment
        from ..index.segmented.manifest import SegmentMeta

        index = self.index
        name = seg.meta.name
        path = index.directory / (name + ".store")
        t0 = time.perf_counter()
        try:
            data = self.backend.get(name)
        except Exception as exc:
            self.stats.cold_errors += 1
            raise ColdFetchError(name, f"backend read failed: {exc}") from exc
        expected = expected_file_size(seg.meta.count, index.ndims)
        if len(data) < expected:
            self.stats.cold_errors += 1
            raise ColdFetchError(
                name, f"blob truncated: {len(data)} bytes, expected {expected}"
            )
        self.stats.full_fetches += 1
        self.stats.full_fetch_bytes += len(data)
        self.stats.fetch_seconds += time.perf_counter() - t0
        tmp = path.with_suffix(".store.tmp")
        tmp.write_bytes(data)
        tmp.replace(path)
        store = FingerprintStore.load(path, mmap=True)
        replacement = Segment(
            meta=SegmentMeta(name, seg.meta.count, seg.meta.sketch, TIER_WARM),
            index=S3Index(
                store,
                order=index.manifest.order,
                key_levels=index.manifest.key_levels,
                depth=index.manifest.depth,
                model=index.model,
                layout=(seg.cold.layout if seg.cold is not None else None),
            ),
            sketch=seg.sketch,
        )
        if not index._swap_segment(seg, replacement, persist=True):
            path.unlink(missing_ok=True)
            return False
        with self._state_lock:
            state = self._seg_state(name)
            state.cold_touches = 0
            state.last_scan = self._clock  # just-promoted = recently used
        self.stats.promotions += 1
        return True

    def _climb(self, seg: "Segment") -> bool:
        """Warm → hot: replace the mmap store with an in-RAM copy.

        Advisory (tier ``hot`` is the manifest default), so the swap
        does not rewrite the manifest file.
        """
        from ..index.s3 import S3Index
        from ..index.segmented.lsm import Segment
        from ..index.segmented.manifest import SegmentMeta

        store = seg.index.store
        ram = FingerprintStore(
            fingerprints=np.array(store.fingerprints),
            ids=np.array(store.ids),
            timecodes=np.array(store.timecodes),
        )
        replacement = Segment(
            meta=SegmentMeta(
                seg.meta.name, seg.meta.count, seg.meta.sketch, TIER_HOT
            ),
            index=S3Index(
                ram,
                order=self.index.manifest.order,
                key_levels=self.index.manifest.key_levels,
                depth=self.index.manifest.depth,
                model=self.index.model,
                layout=seg.index.layout,
            ),
            sketch=seg.sketch,
        )
        if not self.index._swap_segment(seg, replacement, persist=False):
            return False
        self.stats.climbs += 1
        return True

    def settle(self) -> None:
        """Apply pending promotions, then enforce the budget.

        Serialised by the engine (inline after a query / flush /
        compaction, or on the maintenance worker) — the only place
        tiers ever change while an index is live.  The per-segment
        bookkeeping is snapshotted under the state lock; the
        transitions themselves run outside it (they only swap views).
        """
        for seg in list(self.index._segments):
            with self._state_lock:
                state = self._state.get(seg.meta.name)
                if state is None:
                    continue
                touches = state.cold_touches
                last_scan = state.last_scan
            if (
                seg.index is None
                and touches >= self.promote_after
                and (
                    self.budget_bytes is None
                    or self.segment_bytes(seg) <= self.budget_bytes
                )
            ):
                self.promote(seg)
            elif (
                seg.index is not None
                and seg.meta.tier == TIER_WARM
                and touches == 0
                and last_scan > 0
                and self.budget_bytes is not None
                and self.resident_bytes() <= self.budget_bytes
                and self._warm_scans(seg, last_scan) >= 2 * self.promote_after
            ):
                self._climb(seg)
        self.enforce_budget()

    def _warm_scans(self, seg: "Segment", last_scan: int) -> int:
        # Scans since promotion are not tracked separately; climbing is
        # gated on overall recency instead: only the most recently
        # scanned warm segment climbs, one per settle.
        with self._state_lock:
            most_recent = max(
                (
                    self._state.get(s.meta.name, _SegState()).last_scan
                    for s in self.index._segments
                    if s.index is not None and s.meta.tier == TIER_WARM
                ),
                default=0,
            )
        return 2 * self.promote_after if last_scan == most_recent \
            else 0

    def enforce_budget(self) -> int:
        """Demote LRU resident segments until within budget; returns count."""
        if self.budget_bytes is None:
            return 0
        demoted = 0
        while self.resident_bytes() > self.budget_bytes:
            with self._state_lock:
                victims = [
                    (
                        self._state.get(
                            seg.meta.name, _SegState()
                        ).last_scan,
                        i,
                        seg,
                    )
                    for i, seg in enumerate(self.index._segments)
                    if seg.index is not None
                ]
            if not victims:
                break
            victims.sort(key=lambda v: (v[0], v[1]))
            if not self.demote(victims[0][2]):
                break
            demoted += 1
        return demoted

    # ------------------------------------------------------------------
    # GC + lifecycle
    # ------------------------------------------------------------------
    def discard_blob(self, name: str) -> None:
        """Delete the blob of a segment that left the manifest."""
        try:
            self.backend.delete(name)
        except Exception:  # pragma: no cover - GC is best-effort
            pass

    def collect_orphan_blobs(self) -> int:
        """Delete blobs whose segment is gone from the manifest.

        Blobs of *any* manifest segment are kept, whatever its tier — a
        crash between a demotion's blob upload and its manifest flip
        leaves a resident segment with an early blob, which the next
        demotion reuses.  Returns the number deleted.
        """
        live = {seg.name for seg in self.index.manifest.segments}
        removed = 0
        try:
            names = self.backend.keys()
        except Exception:  # pragma: no cover - GC is best-effort
            return 0
        for name in names:
            if name not in live:
                self.discard_blob(name)
                removed += 1
        return removed

    def snapshot(self) -> dict:
        """The ``storage`` stats block (serve ``stats``, ``tier status``)."""
        pf = self.prefetcher
        return {
            "budget_bytes": self.budget_bytes,
            "backend": type(self.backend).__name__,
            "cold_dir": str(self.cold_dir) if self.cold_dir else None,
            "promote_after": self.promote_after,
            "resident_bytes": self.resident_bytes(),
            "counters": {
                **self.stats.snapshot(),
                "prefetch_submitted": pf.submitted,
                "prefetch_hits": pf.hits,
                "prefetch_misses": pf.misses,
                "prefetch_hit_ratio": round(pf.hit_ratio, 4),
            },
        }

    def close(self) -> None:
        self.prefetcher.close()
