"""Pluggable blob backends for cold segment storage.

A blob backend stores **opaque segment blobs** — the exact bytes of a
segment's ``save()``-layout store file — under string keys (the segment
name).  The protocol is deliberately tiny (``put`` / ``get`` /
``get_range`` / ``delete``) so an S3/GCS/object-store adapter is a page
of code; the repo ships two implementations:

* :class:`FileBlobBackend` — a local directory, one file per blob,
  written atomically (tmp + fsync + rename).  This is the production
  default for "cold = slower local or network-mounted disk".
* :class:`FakeBlobBackend` — an in-memory dict with **fault injection**
  (latency, erroring operations, torn reads) used by the degradation
  tests: a cold fetch must surface as a retryable per-segment error,
  never a crash or a silent wrong answer.

``get_range`` is the hot call: the tier manager fetches exactly the
coalesced byte ranges the block selection will scan, so a query touches
``O(selected rows)`` backend bytes, not ``O(segment)``.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from typing import Protocol, runtime_checkable

from ..errors import StorageError

#: Suffix of blob files inside a :class:`FileBlobBackend` directory.
BLOB_SUFFIX = ".blob"


@runtime_checkable
class BlobBackend(Protocol):
    """Structural contract of a cold-tier blob store.

    Keys are segment names (``seg-000042``); values are opaque bytes.
    Implementations must make ``put`` atomic (readers never observe a
    partial blob) and may raise any exception on failure — the tier
    manager wraps every backend error into a retryable
    :class:`~repro.errors.ColdFetchError`.
    """

    def put(self, key: str, data: bytes) -> None: ...

    def get(self, key: str) -> bytes: ...

    def get_range(self, key: str, offset: int, length: int) -> bytes: ...

    def delete(self, key: str) -> None: ...

    def exists(self, key: str) -> bool: ...

    def keys(self) -> list[str]: ...


class FileBlobBackend:
    """Blob store over a local directory: one ``<key>.blob`` file each.

    ``put`` writes to a temporary file, fsyncs, and renames into place,
    so a crash mid-upload never leaves a half-written blob under the
    final name (the orphaned ``.tmp`` is overwritten by the retry).
    """

    def __init__(self, directory: os.PathLike | str):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        if not key or "/" in key or key.startswith("."):
            raise StorageError(f"invalid blob key {key!r}")
        return self.directory / (key + BLOB_SUFFIX)

    def put(self, key: str, data: bytes) -> None:
        path = self._path(key)
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def get(self, key: str) -> bytes:
        try:
            return self._path(key).read_bytes()
        except OSError as exc:
            raise StorageError(f"blob {key!r} unreadable: {exc}") from exc

    def get_range(self, key: str, offset: int, length: int) -> bytes:
        try:
            with open(self._path(key), "rb") as fh:
                fh.seek(offset)
                return fh.read(length)
        except OSError as exc:
            raise StorageError(f"blob {key!r} unreadable: {exc}") from exc

    def delete(self, key: str) -> None:
        self._path(key).unlink(missing_ok=True)

    def exists(self, key: str) -> bool:
        return self._path(key).is_file()

    def keys(self) -> list[str]:
        return sorted(
            p.name[: -len(BLOB_SUFFIX)]
            for p in self.directory.iterdir()
            if p.name.endswith(BLOB_SUFFIX)
        )


class FakeBlobBackend:
    """In-memory blob store with scriptable faults (tests only).

    Fault knobs (all default off):

    * ``latency_s`` — every ``get``/``get_range`` sleeps this long,
      exercising the prefetch-overlap path.
    * ``fail_reads`` — the next N read operations raise
      :class:`~repro.errors.StorageError`.
    * ``torn_reads`` — the next N ``get_range`` calls return roughly
      half the requested bytes, exercising the length-validation path
      (a torn read must never become a silent wrong answer).

    Thread-safe: the prefetcher calls into backends from worker threads.
    """

    def __init__(self, latency_s: float = 0.0):
        self._blobs: dict[str, bytes] = {}
        self._lock = threading.Lock()
        self.latency_s = latency_s
        self.fail_reads = 0
        self.torn_reads = 0
        self.puts = 0
        self.gets = 0
        self.range_gets = 0
        self.bytes_read = 0

    # ------------------------------------------------------------------
    def _maybe_fault(self) -> None:
        if self.latency_s > 0.0:
            time.sleep(self.latency_s)
        with self._lock:
            if self.fail_reads > 0:
                self.fail_reads -= 1
                raise StorageError("injected backend read failure")

    def _tear(self, data: bytes) -> bytes:
        with self._lock:
            if self.torn_reads > 0:
                self.torn_reads -= 1
                return data[: len(data) // 2]
        return data

    # ------------------------------------------------------------------
    def put(self, key: str, data: bytes) -> None:
        with self._lock:
            self._blobs[key] = bytes(data)
            self.puts += 1

    def get(self, key: str) -> bytes:
        self._maybe_fault()
        with self._lock:
            self.gets += 1
            try:
                data = self._blobs[key]
            except KeyError:
                raise StorageError(f"no such blob {key!r}") from None
            self.bytes_read += len(data)
        return data

    def get_range(self, key: str, offset: int, length: int) -> bytes:
        self._maybe_fault()
        with self._lock:
            self.range_gets += 1
            try:
                blob = self._blobs[key]
            except KeyError:
                raise StorageError(f"no such blob {key!r}") from None
            data = blob[offset:offset + length]
            self.bytes_read += len(data)
        return self._tear(data)

    def delete(self, key: str) -> None:
        with self._lock:
            self._blobs.pop(key, None)

    def exists(self, key: str) -> bool:
        with self._lock:
            return key in self._blobs

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._blobs)
