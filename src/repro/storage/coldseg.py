"""Cold segments: resident key sidecars and exact range fetches.

A cold segment's store bytes live in the blob backend, but queries must
still run **block selection before any fetch** — eq. (5)'s whole point
is that the filtering step needs no rows.  Two resident artifacts make
that possible without touching the backend:

* the segment's ``.sketch`` sidecar (occupancy + per-block bounds,
  always resident since PR 6), and
* a ``.keys`` sidecar written at demotion time: the segment's sorted
  ``uint64`` Hilbert keys, memory-mapped here (8 bytes/row of local
  disk, ~0 RAM).  :class:`ColdSegmentReader` wraps it in the standard
  :class:`~repro.index.table.HilbertLayout`, so ``block_row_ranges``
  over a cold segment runs the *identical* searchsorted + merge code as
  a resident one — the row ranges, and therefore the results, are
  bit-identical.

Once the selection has produced row ranges, :func:`fetch_columns` maps
each range to three column byte ranges of the ``save()`` layout
(``column_offsets``) and issues exactly those ``get_range`` calls —
``O(selected rows)`` backend bytes per query, the real-storage analogue
of the pseudo-disk model's ``bytes_loaded`` accounting.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path

import numpy as np

from ..errors import ColdFetchError, StorageError
from ..hilbert.butz import HilbertCurve
from ..index.store import FingerprintStore, column_offsets, expected_file_size
from ..index.table import HilbertLayout
from .blob import BlobBackend

KEYS_MAGIC = b"S3KY"
KEYS_FORMAT = 1
_KEYS_HEADER = struct.Struct("<4sIIQ")  # magic, format, key_bits, count

RowRange = tuple[int, int]

#: Bytes one fetched row costs across the three columns — identical to
#: :class:`~repro.index.pseudodisk.PseudoDiskSearcher`'s ``_row_bytes``
#: (``ndims`` fingerprint bytes + 4 id bytes + 8 timecode bytes), so
#: measured fetch bytes and the model's predictions share units.
def row_bytes(ndims: int) -> int:
    return ndims + 4 + 8


def keys_filename(name: str) -> str:
    """Canonical ``.keys`` sidecar file name of segment *name*."""
    return f"{name}.keys"


def save_keys(path: os.PathLike | str, keys: np.ndarray, key_bits: int) -> None:
    """Atomically write a segment's sorted keys sidecar (fsynced).

    Demotion durability depends on this file: once the local store is
    deleted, the sidecar is the only way to run block selection on the
    segment without a full blob fetch.
    """
    path = Path(path)
    keys = np.ascontiguousarray(keys, dtype=np.uint64)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(_KEYS_HEADER.pack(KEYS_MAGIC, KEYS_FORMAT, key_bits, keys.size))
        fh.write(keys.tobytes())
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def load_keys(
    path: os.PathLike | str, count: int, key_bits: int
) -> np.ndarray:
    """Memory-map a ``.keys`` sidecar; validates header and size."""
    path = Path(path)
    try:
        with open(path, "rb") as fh:
            raw = fh.read(_KEYS_HEADER.size)
    except OSError as exc:
        raise StorageError(
            f"cold segment keys sidecar unreadable: {path}: {exc}"
        ) from exc
    if len(raw) < _KEYS_HEADER.size:
        raise StorageError(f"keys sidecar too short: {path}")
    magic, fmt, bits, n = _KEYS_HEADER.unpack(raw)
    if magic != KEYS_MAGIC:
        raise StorageError(f"bad magic in keys sidecar {path}: {magic!r}")
    if fmt != KEYS_FORMAT:
        raise StorageError(f"unsupported keys sidecar format {fmt} in {path}")
    if n != count or bits != key_bits:
        raise StorageError(
            f"keys sidecar {path} does not match its segment: "
            f"{n} keys/{bits} bits vs {count} rows/{key_bits} bits"
        )
    expected = _KEYS_HEADER.size + count * 8
    if path.stat().st_size < expected:
        raise StorageError(f"truncated keys sidecar: {path}")
    return np.memmap(
        path, dtype=np.uint64, mode="r",
        offset=_KEYS_HEADER.size, shape=(count,),
    )


class ColdSegmentReader:
    """Block selection over a cold segment, without its store bytes.

    Holds the memmapped sorted keys wrapped in a
    :class:`~repro.index.table.HilbertLayout` (permutation empty — cold
    segments are already curve-sorted on disk, and nothing rebuilds
    them), plus the geometry a fetch needs to map row ranges onto blob
    byte ranges.
    """

    def __init__(
        self,
        name: str,
        count: int,
        ndims: int,
        order: int,
        key_levels: int,
        keys: np.ndarray,
    ):
        self.name = name
        self.count = int(count)
        self.ndims = int(ndims)
        self.layout = HilbertLayout(
            curve=HilbertCurve(ndims, order),
            key_levels=key_levels,
            keys=keys,
            permutation=np.empty(0, dtype=np.int64),
        )

    def nbytes(self) -> int:
        """Store-payload size of the segment (what a full fetch costs)."""
        return self.count * row_bytes(self.ndims)

    def blob_size(self) -> int:
        """Exact byte size of the segment's blob (header included)."""
        return expected_file_size(self.count, self.ndims)


def fetch_columns(
    backend: BlobBackend,
    key: str,
    count: int,
    ndims: int,
    ranges: list[RowRange],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Fetch ``(ids, timecodes, fingerprints)`` for *ranges* of a blob.

    Returns the gathered columns in range order — exactly what a
    resident scan's ``store.column[rows]`` gather would produce for the
    same rows — plus the number of payload bytes fetched.  Every
    backend failure, including short (torn) reads, raises
    :class:`~repro.errors.ColdFetchError` naming the segment.
    """
    offs = column_offsets(count, ndims)
    total = sum(e - s for s, e in ranges)
    fps = np.empty((total, ndims), dtype=np.uint8)
    ids = np.empty(total, dtype=np.uint32)
    tcs = np.empty(total, dtype=np.float64)
    at = 0
    fetched = 0
    for s, e in ranges:
        if not 0 <= s <= e <= count:
            raise ColdFetchError(key, f"row range ({s}, {e}) out of bounds")
        n = e - s
        specs = (
            (offs["fingerprints"] + s * ndims, n * ndims),
            (offs["ids"] + s * 4, n * 4),
            (offs["timecodes"] + s * 8, n * 8),
        )
        bufs = []
        for offset, length in specs:
            try:
                data = backend.get_range(key, offset, length)
            except Exception as exc:
                raise ColdFetchError(key, f"backend read failed: {exc}") from exc
            if len(data) != length:
                raise ColdFetchError(
                    key,
                    f"torn read: got {len(data)} of {length} bytes "
                    f"at offset {offset}",
                )
            bufs.append(data)
            fetched += length
        fps[at:at + n] = np.frombuffer(bufs[0], dtype=np.uint8).reshape(n, ndims)
        ids[at:at + n] = np.frombuffer(bufs[1], dtype=np.uint32)
        tcs[at:at + n] = np.frombuffer(bufs[2], dtype=np.float64)
        at += n
    return ids, tcs, fps, fetched


def store_from_blob(key: str, data: bytes, count: int, ndims: int) -> FingerprintStore:
    """Reconstruct a :class:`FingerprintStore` from full blob bytes.

    Used by promotion and by compaction over cold inputs.  The blob is
    the exact ``save()`` file layout; size and geometry are validated
    against the manifest's record of the segment.
    """
    expected = expected_file_size(count, ndims)
    if len(data) < expected:
        raise ColdFetchError(
            key, f"blob truncated: {len(data)} bytes, expected {expected}"
        )
    offs = column_offsets(count, ndims)
    fp = np.frombuffer(
        data, dtype=np.uint8, count=count * ndims, offset=offs["fingerprints"]
    ).reshape(count, ndims)
    ids = np.frombuffer(data, dtype=np.uint32, count=count, offset=offs["ids"])
    tcs = np.frombuffer(
        data, dtype=np.float64, count=count, offset=offs["timecodes"]
    )
    return FingerprintStore(
        fingerprints=fp.copy(), ids=ids.copy(), timecodes=tcs.copy()
    )
