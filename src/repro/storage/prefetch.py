"""Async prefetch of cold-segment byte ranges during batch execution.

The batched engine knows, before it gathers a single row, exactly which
coalesced row ranges of every segment it will scan — block selection
needs no data (eq. (5)'s filtering step).  For cold segments that means
the backend fetch can start **immediately** and overlap with the
refinement of already-resident segments: the engine submits one fetch
per cold segment up front, scans the resident segments, then collects.

A fetch that completes before the engine asks for it is a **prefetch
hit** (the backend latency was fully hidden); one the engine has to
wait on is a **miss**.  The hit ratio is reported through the tier
stats (`serve stats`, ``info --json``, ``tier status``).

Failures are *not* raised from worker threads: they surface when the
result is collected, as the :class:`~repro.errors.ColdFetchError` the
fetch raised — so the engine (and ultimately the serving layer's
retryable-error contract) sees them on the calling thread.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Optional


class PrefetchHandle:
    """One in-flight cold-segment fetch (a future plus hit accounting)."""

    def __init__(self, future: Future, submitted_at: float):
        self._future = future
        self.submitted_at = submitted_at

    def done(self) -> bool:
        return self._future.done()

    def result(self):
        """Block until the fetch finishes; re-raises its error."""
        return self._future.result()


class Prefetcher:
    """Small thread pool issuing backend range fetches ahead of need.

    Sized for overlap, not throughput: two-to-four threads hide the
    latency of a handful of cold segments per batch without flooding a
    rate-limited backend.  ``workers=0`` degrades to synchronous
    fetching (``submit`` runs the thunk inline) — the behavior of
    ``QueryOptions(prefetch="off")``.
    """

    def __init__(self, workers: int = 2):
        self.workers = max(0, int(workers))
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        self.submitted = 0
        self.hits = 0
        self.misses = 0

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-prefetch",
                )
            return self._pool

    def submit(self, fn: Callable, *args) -> PrefetchHandle:
        """Start *fn(*args)* on the pool (or inline when ``workers=0``)."""
        self.submitted += 1
        if self.workers == 0:
            future: Future = Future()
            try:
                future.set_result(fn(*args))
            except BaseException as exc:  # noqa: BLE001 - delivered at collect
                future.set_exception(exc)
            return PrefetchHandle(future, time.perf_counter())
        return PrefetchHandle(
            self._ensure_pool().submit(fn, *args), time.perf_counter()
        )

    def collect(self, handle: PrefetchHandle):
        """Wait for *handle* and score the hit/miss (raises fetch errors)."""
        if handle.done():
            self.hits += 1
        else:
            self.misses += 1
        return handle.result()

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
