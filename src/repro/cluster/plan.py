"""The shard planner: partition a sealed segmented index by key range.

A cluster is planned offline from a sealed :mod:`repro.index.segmented`
directory.  Sealed segments are already curve-sorted — each spans a
contiguous Hilbert-key interval on disk — so they are the natural
assignment unit: the planner orders segments by their minimum key,
splits that order into ``num_shards`` contiguous runs of roughly equal
row count, and derives shard key ranges from the run boundaries.  Every
segment lands in exactly one shard and the shard ranges are disjoint
and cover the whole key space (``[0, 2^key_bits)``); both invariants
are unit-tested.

Because the source index is an LSM, segments may *overlap* in key space
(two flush generations can cover the same region).  The ranges are
therefore a placement and ingest-routing policy, **not** a query
filter: a query is routed to every shard whose resident occupancy union
intersects its block selection — the same admissible test the
single-node sketch tier uses — never by comparing the query's keys
against the range boundaries, which would be unsound for overlapping
segments.

For each shard, ``replicas`` full copies of the shard's segments are
materialised as independent segmented directories
(``shard-NNN/replica-RR/``), each with its own manifest and WAL — a
replica is simply a directory ``repro-s3 serve`` can front.  The plan
is recorded in ``CLUSTER.json`` next to them, including each shard's
occupancy union (the router's skip bitmap) and, per segment, its row
offset in the *source* index — the piece of metadata that lets the
router renumber shard-local result rows back into single-node global
rows bit for bit (see :mod:`repro.cluster.merge`).
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import ConfigurationError, IndexError_
from ..index.segmented.lsm import SegmentedS3Index
from ..index.segmented.manifest import (
    Manifest,
    SegmentMeta,
    wal_filename,
)
from ..index.segmented.sketch import (
    SegmentSketch,
    occupancy_keep,
    sketch_filename,
)
from ..index.store import PathLike, expected_file_size

CLUSTER_MANIFEST_NAME = "CLUSTER.json"
_FORMAT = 1


@dataclass(frozen=True)
class SegmentAssignment:
    """One source segment placed in a shard.

    ``global_base`` is the segment's first row number in the *source*
    index's virtual concatenation (manifest order) and ``source_pos``
    its position in that order — together they let the router rebuild
    the exact single-node result layout from shard-local answers.
    """

    name: str
    count: int
    global_base: int
    source_pos: int
    key_min: int
    key_max: int


@dataclass(frozen=True)
class ShardPresence:
    """A shard's resident occupancy union: which curve blocks it holds.

    The union of the shard's segment-sketch occupancy bitmaps, reduced
    to the shallowest sketch depth among them.  ``covers_any`` is the
    router's skip test — exact, like the per-segment prune it unions.
    """

    depth: int
    occupied: np.ndarray  # sorted uint64 of populated depth-bit prefixes

    def covers_any(self, prefixes: np.ndarray, depth: int) -> bool:
        """True if any selected prefix may hold rows of this shard."""
        return bool(
            occupancy_keep(self.occupied, self.depth, prefixes, depth).any()
        )

    def keep_mask(self, prefixes: np.ndarray, depth: int) -> np.ndarray:
        return occupancy_keep(self.occupied, self.depth, prefixes, depth)

    def to_payload(self) -> dict:
        bitmap = np.zeros(1 << self.depth, dtype=np.uint8)
        bitmap[self.occupied.astype(np.int64)] = 1
        return {
            "depth": int(self.depth),
            "occupied_hex": np.packbits(bitmap).tobytes().hex(),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ShardPresence":
        depth = int(payload["depth"])
        packed = np.frombuffer(
            bytes.fromhex(payload["occupied_hex"]), dtype=np.uint8
        )
        bits = np.unpackbits(packed, count=1 << depth)
        return cls(
            depth=depth, occupied=np.flatnonzero(bits).astype(np.uint64)
        )


@dataclass(frozen=True)
class ShardSpec:
    """One planned shard: key range, segments, replica directories."""

    shard: int
    key_lo: int  # inclusive
    key_hi: int  # exclusive
    rows: int
    segments: tuple[SegmentAssignment, ...]
    replicas: tuple[str, ...]  # directory names relative to the cluster dir
    presence: ShardPresence


@dataclass
class ClusterManifest:
    """Durable description of a planned cluster (``CLUSTER.json``)."""

    source: str
    ndims: int
    order: int
    key_levels: int
    depth: int
    sigma: float | None
    total_rows: int
    shards: list[ShardSpec] = field(default_factory=list)

    @property
    def key_bits(self) -> int:
        return self.key_levels * self.ndims

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def replicas_per_shard(self) -> int:
        return max(len(s.replicas) for s in self.shards) if self.shards else 0

    # ------------------------------------------------------------------
    def save(self, directory: PathLike) -> None:
        directory = Path(directory)
        payload = {
            "format": _FORMAT,
            "source": self.source,
            "ndims": self.ndims,
            "order": self.order,
            "key_levels": self.key_levels,
            "depth": self.depth,
            "sigma": self.sigma,
            "total_rows": self.total_rows,
            "shards": [
                {
                    "shard": s.shard,
                    "key_lo": s.key_lo,
                    "key_hi": s.key_hi,
                    "rows": s.rows,
                    "segments": [
                        {
                            "name": a.name,
                            "count": a.count,
                            "global_base": a.global_base,
                            "source_pos": a.source_pos,
                            "key_min": a.key_min,
                            "key_max": a.key_max,
                        }
                        for a in s.segments
                    ],
                    "replicas": list(s.replicas),
                    "presence": s.presence.to_payload(),
                }
                for s in self.shards
            ],
        }
        tmp = directory / (CLUSTER_MANIFEST_NAME + ".tmp")
        with open(tmp, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, directory / CLUSTER_MANIFEST_NAME)

    @classmethod
    def load(cls, directory: PathLike) -> "ClusterManifest":
        path = Path(directory) / CLUSTER_MANIFEST_NAME
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            raise IndexError_(
                f"not a cluster directory (no {CLUSTER_MANIFEST_NAME}): "
                f"{directory}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise IndexError_(f"corrupt cluster manifest {path}: {exc}") from exc
        if payload.get("format") != _FORMAT:
            raise IndexError_(
                f"unsupported cluster manifest format "
                f"{payload.get('format')!r} in {path}"
            )
        try:
            return cls(
                source=str(payload["source"]),
                ndims=int(payload["ndims"]),
                order=int(payload["order"]),
                key_levels=int(payload["key_levels"]),
                depth=int(payload["depth"]),
                sigma=(
                    None if payload.get("sigma") is None
                    else float(payload["sigma"])
                ),
                total_rows=int(payload["total_rows"]),
                shards=[
                    ShardSpec(
                        shard=int(s["shard"]),
                        key_lo=int(s["key_lo"]),
                        key_hi=int(s["key_hi"]),
                        rows=int(s["rows"]),
                        segments=tuple(
                            SegmentAssignment(
                                name=str(a["name"]),
                                count=int(a["count"]),
                                global_base=int(a["global_base"]),
                                source_pos=int(a["source_pos"]),
                                key_min=int(a["key_min"]),
                                key_max=int(a["key_max"]),
                            )
                            for a in s["segments"]
                        ),
                        replicas=tuple(str(r) for r in s["replicas"]),
                        presence=ShardPresence.from_payload(s["presence"]),
                    )
                    for s in payload["shards"]
                ],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise IndexError_(
                f"corrupt cluster manifest {path}: {exc}"
            ) from exc

    @classmethod
    def exists(cls, directory: PathLike) -> bool:
        return (Path(directory) / CLUSTER_MANIFEST_NAME).is_file()


def shard_dirname(shard: int, replica: int) -> str:
    """Directory of one shard replica, relative to the cluster dir."""
    return f"shard-{shard:03d}/replica-{replica:02d}"


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
def plan_cluster(
    source_dir: PathLike,
    cluster_dir: PathLike,
    num_shards: int,
    replicas: int = 1,
    seal: bool = False,
    storage_budget: int | None = None,
    cold_dir: str | None = None,
) -> ClusterManifest:
    """Partition *source_dir* into ``num_shards`` shard directories.

    The source must be sealed (no rows pending in its WAL/memtable);
    pass ``seal=True`` to flush it first.  Each shard gets ``replicas``
    independent full copies of its segments.  Cold source segments
    (tiered storage, :mod:`repro.storage`) are planned from their
    resident ``.keys`` sidecars and materialised straight from the blob
    backend — planning never promotes the source.  Passing
    ``storage_budget`` (bytes; ``cold_dir`` optionally) stamps a
    storage block into every replica manifest, so each replica opens
    with that tier budget and demotes itself to fit on first open.
    Returns the saved :class:`ClusterManifest`.
    """
    source_dir = Path(source_dir)
    cluster_dir = Path(cluster_dir)
    if num_shards < 1:
        raise ConfigurationError(
            f"num_shards must be >= 1, got {num_shards}"
        )
    if replicas < 1:
        raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
    if ClusterManifest.exists(cluster_dir):
        raise ConfigurationError(
            f"already a cluster directory: {cluster_dir}"
        )
    replica_storage = None
    if storage_budget is not None or cold_dir is not None:
        from ..storage.manager import StorageConfig

        replica_storage = StorageConfig(
            budget_bytes=storage_budget, cold_dir=cold_dir
        ).to_manifest()

    with SegmentedS3Index.open(source_dir, auto_compact=False) as source:
        pending = source.pending_rows
        if pending and not seal:
            raise ConfigurationError(
                f"{source_dir} has {pending} unsealed rows; pass "
                "seal=True (CLI: --seal) to flush them before planning"
            )
        if pending:
            source.flush()
        manifest = source.manifest
        if not manifest.segments:
            raise ConfigurationError(
                f"{source_dir} has no sealed segments to shard; ingest "
                "and flush it first"
            )
        if num_shards > len(manifest.segments):
            raise ConfigurationError(
                f"cannot plan {num_shards} shards from "
                f"{len(manifest.segments)} segments — segments are whole "
                "assignment units; compact less aggressively or pick "
                "fewer shards"
            )

        assignments = _segment_assignments(source)
        groups = _partition(assignments, num_shards)
        key_bits = manifest.key_levels * manifest.ndims
        boundaries = _range_boundaries(groups, key_bits)

        cluster_dir.mkdir(parents=True, exist_ok=True)
        shards = []
        for shard_id, group in enumerate(groups):
            replica_dirs = tuple(
                shard_dirname(shard_id, r) for r in range(replicas)
            )
            for rel in replica_dirs:
                _materialise_replica(
                    source, cluster_dir / rel, group, replica_storage
                )
            shards.append(ShardSpec(
                shard=shard_id,
                key_lo=boundaries[shard_id],
                key_hi=boundaries[shard_id + 1],
                rows=sum(a.count for a in group),
                segments=tuple(group),
                replicas=replica_dirs,
                presence=_shard_presence(source_dir, manifest, group),
            ))
        cluster = ClusterManifest(
            source=str(source_dir),
            ndims=manifest.ndims,
            order=manifest.order,
            key_levels=manifest.key_levels,
            depth=manifest.depth,
            sigma=manifest.sigma,
            total_rows=manifest.total_sealed(),
            shards=shards,
        )
    cluster.save(cluster_dir)
    return cluster


def _segment_assignments(
    source: SegmentedS3Index,
) -> list[SegmentAssignment]:
    """Each source segment with its global base row and key span.

    Sealed segments are curve-sorted, so a segment's key span is just
    its layout's first and last keys.  The layout is resident for every
    tier — cold segments keep their ``.keys`` sidecar mapped — so no
    fingerprint store is loaded and no blob is fetched here.
    """
    assignments = []
    base = 0
    for pos, seg in enumerate(source._segments):
        keys = seg.layout.keys
        assignments.append(SegmentAssignment(
            name=seg.meta.name,
            count=seg.meta.count,
            global_base=base,
            source_pos=pos,
            key_min=int(keys[0]),
            key_max=int(keys[-1]),
        ))
        base += seg.meta.count
    return assignments


def _partition(
    assignments: list[SegmentAssignment], num_shards: int
) -> list[list[SegmentAssignment]]:
    """Split key-ordered segments into contiguous row-balanced runs.

    Greedy walk over segments sorted by key span: a shard closes once
    its row count reaches the remaining-average, while always leaving at
    least one segment for each shard still to fill — so every shard is
    non-empty whenever ``num_shards <= len(assignments)``.
    """
    ordered = sorted(
        assignments, key=lambda a: (a.key_min, a.key_max, a.source_pos)
    )
    total = sum(a.count for a in ordered)
    groups: list[list[SegmentAssignment]] = []
    i = 0
    for shard in range(num_shards):
        remaining_shards = num_shards - shard
        remaining_rows = total - sum(
            a.count for g in groups for a in g
        )
        target = remaining_rows / remaining_shards
        group = [ordered[i]]
        i += 1
        while (
            i < len(ordered)
            and len(ordered) - i > remaining_shards - 1
            and sum(a.count for a in group) + ordered[i].count / 2 < target
        ):
            group.append(ordered[i])
            i += 1
        groups.append(group)
    # Any stragglers (only possible from rounding) join the last shard.
    groups[-1].extend(ordered[i:])
    return groups


def _range_boundaries(
    groups: list[list[SegmentAssignment]], key_bits: int
) -> list[int]:
    """Disjoint, covering key boundaries: ``b[i] <= shard i < b[i+1]``.

    ``b[0] = 0`` and ``b[n] = 2^key_bits`` so the union is the whole key
    space; interior boundaries sit at each shard's minimum segment key
    (bumped by one where two shards' minima coincide, keeping the ranges
    strictly disjoint).
    """
    boundaries = [0]
    for group in groups[1:]:
        lo = min(a.key_min for a in group)
        boundaries.append(max(lo, boundaries[-1] + 1))
    boundaries.append(1 << key_bits)
    if boundaries[-1] <= boundaries[-2]:
        raise IndexError_(
            "degenerate shard ranges: too many shards for the occupied "
            "key space"
        )
    return boundaries


def _shard_presence(
    source_dir: Path, manifest: Manifest, group: list[SegmentAssignment]
) -> ShardPresence:
    """Union the group's sketch occupancy at their shallowest depth."""
    key_bits = manifest.key_levels * manifest.ndims
    sketches = []
    for a in group:
        sketches.append(SegmentSketch.load(
            source_dir / sketch_filename(a.name), key_bits
        ))
    depth = min(s.depth for s in sketches)
    parts = [
        np.unique(s.occupied >> np.uint64(s.depth - depth))
        for s in sketches
    ]
    occupied = np.unique(np.concatenate(parts)) if parts else \
        np.empty(0, dtype=np.uint64)
    return ShardPresence(depth=depth, occupied=occupied)


def _materialise_replica(
    source: SegmentedS3Index,
    replica_dir: Path,
    group: list[SegmentAssignment],
    storage: dict | None,
) -> None:
    """Write one replica directory: copied segments + a fresh manifest.

    The replica manifest lists the group's segments in assignment order
    (the shard-local merge order the router's renumbering relies on) and
    continues the source's segment sequence numbers, so post-plan
    flushes never collide with copied segment names.  Its WAL is fresh
    and empty; ``SegmentedS3Index.open`` creates the file on first open.

    Cold source segments are materialised from the blob backend: a
    demoted segment's blob is byte-identical to the ``.store`` file it
    replaced, so the replica starts hot without the source promoting
    anything.  *storage* (a manifest storage block, or ``None``) gives
    each replica its own tier budget — the replica's first open then
    demotes itself to fit, independently of the source's tiers.
    """
    source_dir = source.directory
    source_manifest = source.manifest
    replica_dir.mkdir(parents=True, exist_ok=True)
    if Manifest.exists(replica_dir):
        raise ConfigurationError(
            f"replica directory already initialised: {replica_dir}"
        )
    metas = []
    source_by_name = {m.name: m for m in source_manifest.segments}
    for a in group:
        store_src = source_dir / (a.name + ".store")
        store_dst = replica_dir / (a.name + ".store")
        if store_src.is_file():
            shutil.copyfile(store_src, store_dst)
        else:
            if source.storage is None:
                raise IndexError_(
                    f"segment {a.name} has no resident store and the "
                    "source index has no storage manager to fetch it"
                )
            data = source.storage.backend.get(a.name)
            want = expected_file_size(a.count, source_manifest.ndims)
            if len(data) != want:
                raise IndexError_(
                    f"blob for segment {a.name} is {len(data)} bytes, "
                    f"expected {want}; refusing to materialise a torn "
                    "replica"
                )
            tmp = store_dst.with_suffix(".tmp")
            tmp.write_bytes(data)
            os.replace(tmp, store_dst)
        # Sketch sidecars stay resident across demotion, so a straight
        # copy works for every tier.
        shutil.copyfile(
            source_dir / sketch_filename(a.name),
            replica_dir / sketch_filename(a.name),
        )
        src_meta = source_by_name[a.name]
        metas.append(SegmentMeta(
            name=a.name, count=a.count, sketch=src_meta.sketch
        ))
    replica_manifest = Manifest(
        ndims=source_manifest.ndims,
        order=source_manifest.order,
        key_levels=source_manifest.key_levels,
        depth=source_manifest.depth,
        sigma=source_manifest.sigma,
        next_seq=source_manifest.next_seq,
        wal=wal_filename(source_manifest.next_seq - 1),
        segments=metas,
        storage=storage,
    )
    replica_manifest.save(replica_dir)
