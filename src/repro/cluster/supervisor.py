"""Launch and heal one detection server per shard replica.

The supervisor owns the lifecycle of every replica in a planned cluster
directory: it starts one :class:`~repro.serve.server.DetectionServer`
per replica, waits for readiness (the v3 ``health`` op distinguishes a
listening-but-loading server from a ready one), and — in its monitor
thread — respawns any replica whose process dies, **on the same port**,
so the router's endpoint table stays valid across a SIGKILL heal.

Two modes:

* ``process`` (production, and the smoke test): each replica is a
  ``python -m repro.cli serve`` child with stdout/stderr captured to a
  log next to its directory.  The bound port is discovered through
  ``--port-file`` on first launch and pinned on respawn (the asyncio
  listener sets ``SO_REUSEADDR``, so rebinding the port straight after
  a kill succeeds).
* ``thread`` (fast tests): each replica is a
  :class:`~repro.serve.runner.ServerThread` in-process.  Kills are
  graceful stops rather than SIGKILL, which still exercises the
  router's failover path: in-flight requests fail with
  ``shutting_down`` / closed connections, both failover triggers.

A killed replica's healed copy replays only its own WAL — rows
ingested through *other* replicas of the shard while it was down are
not recovered (replicas do not sync with each other).  The documented
remedy is re-planning from the source index; the acceptance smoke
keeps its assertions on sealed data plus read-your-ingest via the
surviving replica.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..errors import ConfigurationError, ReproError
from ..serve.client import ServeClient, ServiceUnavailable
from ..serve.runner import ServerThread
from ..serve.server import ServeConfig
from .plan import ClusterManifest

_PORT_FILE_TIMEOUT = 30.0
_READY_TIMEOUT = 60.0


@dataclass
class ReplicaHandle:
    """One running (or healing) replica server."""

    shard: int
    replica: int
    directory: Path
    host: str = "127.0.0.1"
    port: int = 0  # pinned after first launch
    process: Optional[subprocess.Popen] = None
    thread: Optional[ServerThread] = None
    restarts: int = 0
    log_path: Optional[Path] = None

    @property
    def name(self) -> str:
        return f"shard-{self.shard:03d}/replica-{self.replica:02d}"

    @property
    def alive(self) -> bool:
        if self.process is not None:
            return self.process.poll() is None
        if self.thread is not None:
            return self.thread._thread is not None \
                and self.thread._thread.is_alive()
        return False


class ClusterSupervisor:
    """Start, watch, heal and stop every replica of a planned cluster."""

    def __init__(
        self,
        cluster_dir,
        mode: str = "process",
        serve_config: Optional[ServeConfig] = None,
        heal: bool = True,
        poll_interval: float = 0.25,
        extra_serve_args: Optional[list[str]] = None,
    ):
        if mode not in ("process", "thread"):
            raise ConfigurationError(
                f"mode must be 'process' or 'thread', got {mode!r}"
            )
        self.cluster_dir = Path(cluster_dir)
        self.manifest = ClusterManifest.load(self.cluster_dir)
        self.mode = mode
        self.serve_config = serve_config or ServeConfig(port=0)
        self.heal = heal
        self.poll_interval = poll_interval
        #: Appended to each ``repro.cli serve`` child's command line in
        #: process mode (e.g. ``["--alpha", "0.9"]``); must match the
        #: router's configuration.
        self.extra_serve_args = list(extra_serve_args or [])
        self.replicas: list[ReplicaHandle] = [
            ReplicaHandle(
                shard=spec.shard,
                replica=r,
                directory=self.cluster_dir / rel,
            )
            for spec in self.manifest.shards
            for r, rel in enumerate(spec.replicas)
        ]
        self._monitor: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def __enter__(self) -> "ClusterSupervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self) -> "ClusterSupervisor":
        for handle in self.replicas:
            self._launch(handle)
        self.wait_ready()
        if self.heal:
            self._monitor = threading.Thread(
                target=self._monitor_loop,
                name="cluster-monitor",
                daemon=True,
            )
            self._monitor.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=10.0)
            self._monitor = None
        for handle in self.replicas:
            self._terminate(handle)

    # ------------------------------------------------------------------
    def endpoints(self) -> dict[int, list[tuple[str, int]]]:
        """``shard -> [(host, port), ...]`` for the router."""
        table: dict[int, list[tuple[str, int]]] = {}
        for handle in self.replicas:
            table.setdefault(handle.shard, []).append(
                (handle.host, handle.port)
            )
        return table

    def status(self) -> list[dict]:
        return [
            {
                "replica": h.name,
                "host": h.host,
                "port": h.port,
                "alive": h.alive,
                "restarts": h.restarts,
            }
            for h in self.replicas
        ]

    def kill_replica(self, shard: int, replica: int = 0) -> ReplicaHandle:
        """Abruptly kill one replica (SIGKILL in process mode).

        The monitor heals it afterwards (when ``heal`` is on); callers
        that want it to stay down should construct with ``heal=False``.
        """
        handle = self._handle(shard, replica)
        with self._lock:
            if handle.process is not None:
                handle.process.send_signal(signal.SIGKILL)
                handle.process.wait(timeout=10.0)
            elif handle.thread is not None:
                handle.thread.stop()
                handle.thread = None
        return handle

    def wait_ready(self, timeout: float = _READY_TIMEOUT) -> None:
        """Block until every replica answers ``health`` with ready."""
        deadline = time.monotonic() + timeout
        for handle in self.replicas:
            self._wait_replica_ready(handle, deadline)

    # ------------------------------------------------------------------
    def _handle(self, shard: int, replica: int) -> ReplicaHandle:
        for handle in self.replicas:
            if handle.shard == shard and handle.replica == replica:
                return handle
        raise ConfigurationError(
            f"no such replica: shard {shard} replica {replica}"
        )

    def _launch(self, handle: ReplicaHandle) -> None:
        if self.mode == "process":
            self._launch_process(handle)
        else:
            self._launch_thread(handle)

    def _launch_thread(self, handle: ReplicaHandle) -> None:
        from ..index.segmented.lsm import SegmentedS3Index

        index = SegmentedS3Index.open(
            handle.directory, auto_compact=False, mmap=True
        )
        base = self.serve_config
        # Rebuild rather than dataclasses.replace: ServeConfig mirrors
        # options into its legacy flat fields, and passing both back
        # trips its either/or guard.
        config = ServeConfig(
            host=handle.host,
            port=handle.port,  # 0 first launch, pinned after
            max_batch=base.max_batch,
            max_wait_ms=base.max_wait_ms,
            queue_limit=base.queue_limit,
            max_frame=base.max_frame,
            vote_tolerance=base.vote_tolerance,
            tukey_c=base.tukey_c,
            min_matches=base.min_matches,
            decision_threshold=base.decision_threshold,
            options=base.options,
        )
        thread = ServerThread(index, config)
        thread.start()
        handle.thread = thread
        handle.port = thread.port

    def _launch_process(self, handle: ReplicaHandle) -> None:
        import repro

        port_file = handle.directory.parent / (
            f"replica-{handle.replica:02d}.port"
        )
        port_file.unlink(missing_ok=True)
        handle.log_path = handle.directory.parent / (
            f"replica-{handle.replica:02d}.log"
        )
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        cmd = [
            sys.executable, "-m", "repro.cli", "serve",
            str(handle.directory),
            "--host", handle.host,
            "--port", str(handle.port),
            "--port-file", str(port_file),
            *self.extra_serve_args,
        ]
        with open(handle.log_path, "ab") as log:
            handle.process = subprocess.Popen(
                cmd, stdout=log, stderr=log, env=env,
                start_new_session=True,
            )
        if handle.port == 0:
            handle.port = self._read_port_file(handle, port_file)

    def _read_port_file(
        self, handle: ReplicaHandle, port_file: Path
    ) -> int:
        deadline = time.monotonic() + _PORT_FILE_TIMEOUT
        while time.monotonic() < deadline:
            if handle.process is not None \
                    and handle.process.poll() is not None:
                raise ReproError(
                    f"{handle.name} exited with "
                    f"{handle.process.returncode} before binding; see "
                    f"{handle.log_path}"
                )
            try:
                text = port_file.read_text().strip()
                if text:
                    return int(text)
            except (OSError, ValueError):
                pass
            time.sleep(0.05)
        raise ReproError(
            f"{handle.name} did not write its port file within "
            f"{_PORT_FILE_TIMEOUT:.0f}s; see {handle.log_path}"
        )

    def _wait_replica_ready(
        self, handle: ReplicaHandle, deadline: float
    ) -> None:
        client = ServeClient(
            handle.host, handle.port, timeout=5.0, retries=0
        )
        try:
            while time.monotonic() < deadline:
                try:
                    if client.health().get("ready"):
                        return
                except (ServiceUnavailable, ReproError):
                    pass
                time.sleep(0.05)
        finally:
            client.close()
        raise ReproError(
            f"{handle.name} not ready within the timeout"
            + (f"; see {handle.log_path}" if handle.log_path else "")
        )

    def _terminate(self, handle: ReplicaHandle) -> None:
        with self._lock:
            if handle.process is not None:
                if handle.process.poll() is None:
                    handle.process.terminate()
                    try:
                        handle.process.wait(timeout=10.0)
                    except subprocess.TimeoutExpired:
                        handle.process.kill()
                        handle.process.wait(timeout=10.0)
                handle.process = None
            if handle.thread is not None:
                handle.thread.stop()
                handle.thread = None

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(self.poll_interval):
            for handle in self.replicas:
                if self._stopping.is_set():
                    return
                if handle.alive:
                    continue
                with self._lock:
                    if self._stopping.is_set() or handle.alive:
                        continue
                    handle.restarts += 1
                    try:
                        # Same port: the endpoint table stays valid.
                        self._launch(handle)
                    except ReproError:
                        continue  # retried on the next poll tick
                try:
                    self._wait_replica_ready(
                        handle, time.monotonic() + _READY_TIMEOUT
                    )
                except ReproError:
                    pass  # router keeps failing over meanwhile
