"""The scatter-gather router: one endpoint, many shard servers.

:class:`ClusterRouter` speaks the **unmodified** detection-service
protocol — an existing :class:`~repro.serve.client.ServeClient` points
at it with zero changes — and fans every request out to the shard
servers of a planned cluster:

* ``query`` / ``detect``: the router replays, per query, the same cold
  statistical block selection the shard engines will compute (the
  micro-batcher resets its threshold cache per engine batch and the
  multi-query search replays solo searches exactly, so a router-side
  per-request selection equals the shard-side one bit for bit).  A
  shard whose resident occupancy union does not intersect a query's
  selection provably holds no match for it and is not sent that query;
  a shard left with no queries is skipped outright.  Shard answers are
  reassembled by :mod:`.merge` into single-node row order, so merged
  results are **bit-identical** to one server over the unsharded index.
* ``ingest``: each row is routed by its Hilbert key to the one shard
  whose planned key range contains it, and written to **all** replicas
  of that shard (tagged ``<request_id>/s<shard>`` so shard-side dedupe
  absorbs router retries and client resubmissions alike).  One
  acknowledging replica is enough to succeed; replicas that missed the
  write are counted and resync via re-planning.
* ``stats`` / ``health``: aggregated locally (per-shard latency, skip,
  failover and replica state), never fanned out on the hot path.

Failover: each shard is tried on its preferred replica first; a
connection loss, per-attempt timeout, or transient server state
(``shutting_down`` / ``not_ready`` / ``overloaded``) marks that replica
down for a cooldown and moves to the next, for up to
``failover_rounds`` passes over the replica set within the request
deadline.  Query retries are naturally safe; ingest retries are safe by
shard-side dedupe.  Only when every replica of a needed shard fails
does the client see an error — ``unavailable``, which its retry loop
already treats as transient backpressure.
"""

from __future__ import annotations

import asyncio
import time
import uuid
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..cbcd.voting import QueryMatches, vote
from ..distortion.model import NormalDistortionModel
from ..errors import ConfigurationError, ReproError
from ..hilbert.butz import HilbertCurve
from ..hilbert.vectorized import encode_batch
from ..index.filtering import statistical_blocks_multi
from ..serve import protocol
from ..serve.cache import (
    CACHE_MODES,
    DEFAULT_CACHE_CAPACITY,
    CacheStats,
    QueryResultCache,
)
from ..serve.metrics import Counter, LatencyWindow
from ..serve.server import NotReady, SocketFrameServer, WireOpError
from .merge import ShardMap, merge_query_wires
from .plan import ClusterManifest

_FAILOVER_CODES = frozenset({
    protocol.ERR_SHUTTING_DOWN,
    protocol.ERR_NOT_READY,
    protocol.ERR_OVERLOADED,
    protocol.ERR_UNAVAILABLE,
})


@dataclass(frozen=True)
class RouterConfig:
    """Router socket, engine-mirroring and failover knobs.

    ``alpha`` and the vote parameters must match the shard servers'
    configuration — the router computes selections (for skipping) and
    votes (for ``detect``) locally with these values.
    """

    host: str = "127.0.0.1"
    port: int = 8765
    alpha: float = 0.8
    max_frame: int = protocol.MAX_FRAME_BYTES
    #: Per-attempt cap on one replica answering one scatter message.
    shard_timeout: float = 30.0
    connect_timeout: float = 5.0
    #: How long a failed replica is skipped before being retried.
    down_cooldown: float = 1.0
    #: Full passes over a shard's replica set before giving up.
    failover_rounds: int = 2
    #: Pause between failover rounds (lets a healing replica bind).
    round_backoff: float = 0.2
    #: Bound on waiting for every shard to report ready at startup.
    startup_timeout: float = 60.0
    vote_tolerance: float = 2.0
    tukey_c: float = 6.0
    min_matches: int = 2
    decision_threshold: int = 5
    #: Per-shard wire-result cache: ``"auto"``/``"on"`` enable it,
    #: ``"off"`` disables.  Dirty shards (which may mutate out of band)
    #: always bypass it, so cached answers stay bit-identical.
    cache: str = "auto"
    #: Result-LRU entries kept per shard.
    cache_capacity: int = DEFAULT_CACHE_CAPACITY

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError(
                f"alpha must be in (0, 1], got {self.alpha}"
            )
        if self.failover_rounds < 1:
            raise ConfigurationError(
                f"failover_rounds must be >= 1, got {self.failover_rounds}"
            )
        if self.cache not in CACHE_MODES:
            raise ConfigurationError(
                f"cache must be one of {CACHE_MODES}, got {self.cache!r}"
            )
        if self.cache_capacity < 1:
            raise ConfigurationError(
                f"cache_capacity must be >= 1, got {self.cache_capacity}"
            )

    @property
    def cache_enabled(self) -> bool:
        return self.cache != "off"


class _Replica:
    """One persistent connection to one shard replica."""

    def __init__(self, host: str, port: int, config: RouterConfig):
        self.host = host
        self.port = port
        self.config = config
        self.lock = asyncio.Lock()
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.down_until = 0.0

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def marked_down(self) -> bool:
        return time.monotonic() < self.down_until

    def mark_down(self) -> None:
        self.down_until = time.monotonic() + self.config.down_cooldown

    def mark_up(self) -> None:
        self.down_until = 0.0

    async def _close(self) -> None:
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass
        self.reader = None
        self.writer = None

    async def request(self, message: dict, timeout: float) -> dict:
        """One request/response over the persistent connection.

        Raises ``OSError`` / ``TimeoutError`` / ``ProtocolError`` on
        transport trouble (connection closed first, so the next attempt
        reconnects cleanly).
        """
        async with self.lock:
            try:
                if self.writer is None:
                    self.reader, self.writer = await asyncio.wait_for(
                        asyncio.open_connection(self.host, self.port),
                        timeout=self.config.connect_timeout,
                    )
                await asyncio.wait_for(
                    protocol.write_message(
                        self.writer,
                        {**message, "v": protocol.PROTOCOL_VERSION},
                    ),
                    timeout=timeout,
                )
                response = await asyncio.wait_for(
                    protocol.read_message(
                        self.reader, self.config.max_frame
                    ),
                    timeout=timeout,
                )
            except BaseException:
                await self._close()
                raise
            if response is None:
                await self._close()
                raise ConnectionResetError(
                    f"{self.address} closed the connection mid-request"
                )
            return response

    async def close(self) -> None:
        async with self.lock:
            await self._close()


@dataclass
class _ShardStats:
    """Per-shard router-side counters (surfaced through ``stats``)."""

    fanouts: int = 0
    skips: int = 0
    failovers: int = 0
    replica_misses: int = 0
    latency: LatencyWindow = field(default_factory=LatencyWindow)


class _ShardClient:
    """Failover-aware request path to one shard's replica set."""

    def __init__(
        self,
        shard: int,
        replicas: list[_Replica],
        config: RouterConfig,
        stats: _ShardStats,
    ):
        self.shard = shard
        self.replicas = replicas
        self.config = config
        self.stats = stats
        self._preferred = 0

    def _attempt_order(self) -> list[_Replica]:
        n = len(self.replicas)
        return [self.replicas[(self._preferred + i) % n] for i in range(n)]

    async def request(
        self, message: dict, deadline: Optional[float]
    ) -> dict:
        """Scatter one message, failing over across replicas.

        Returns the shard's ``result`` payload.  Raises
        :class:`WireOpError` — ``unavailable`` when every replica is
        unreachable within the budget, or the shard's own error code for
        a non-transient refusal (relayed verbatim to the client).
        """
        t0 = time.perf_counter()
        last_failure = "no replicas"
        loop = asyncio.get_running_loop()
        for round_no in range(self.config.failover_rounds):
            if round_no:
                await asyncio.sleep(self.config.round_backoff)
            for offset, replica in enumerate(self._attempt_order()):
                # Down-marked replicas are skipped unless nothing else
                # is left standing — then they are exactly what we try.
                if replica.marked_down and any(
                    not r.marked_down for r in self.replicas
                ):
                    continue
                timeout = self.config.shard_timeout
                if deadline is not None:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        raise WireOpError(
                            protocol.ERR_DEADLINE,
                            f"deadline exhausted while contacting shard "
                            f"{self.shard} ({last_failure})",
                        )
                    timeout = min(timeout, remaining)
                try:
                    response = await replica.request(message, timeout)
                except (OSError, asyncio.TimeoutError,
                        protocol.ProtocolError) as exc:
                    replica.mark_down()
                    if offset or round_no:
                        self.stats.failovers += 1
                    last_failure = f"{replica.address}: {exc}"
                    continue
                if response.get("ok"):
                    replica.mark_up()
                    if offset or round_no:
                        self.stats.failovers += 1
                        self._preferred = self.replicas.index(replica)
                    self.stats.fanouts += 1
                    self.stats.latency.record(time.perf_counter() - t0)
                    return response.get("result", {})
                error = response.get("error") or {}
                code = error.get("code", protocol.ERR_INTERNAL)
                if code in _FAILOVER_CODES:
                    replica.mark_down()
                    if offset or round_no:
                        self.stats.failovers += 1
                    last_failure = f"{replica.address}: [{code}]"
                    continue
                # Non-transient: the shard understood and refused; relay.
                raise WireOpError(code, error.get("message", ""))
        raise WireOpError(
            protocol.ERR_UNAVAILABLE,
            f"shard {self.shard}: no replica answered within "
            f"{self.config.failover_rounds} round(s); last: {last_failure}",
        )

    async def close(self) -> None:
        for replica in self.replicas:
            await replica.close()


class ClusterRouter(SocketFrameServer):
    """Scatter-gather frontend over a planned shard cluster."""

    def __init__(
        self,
        manifest: ClusterManifest,
        endpoints: dict[int, list[tuple[str, int]]],
        config: Optional[RouterConfig] = None,
    ):
        config = config or RouterConfig()
        super().__init__(config.host, config.port, config.max_frame)
        self.manifest = manifest
        self.config = config
        missing = [
            spec.shard for spec in manifest.shards
            if not endpoints.get(spec.shard)
        ]
        if missing:
            raise ConfigurationError(
                f"no endpoints for shard(s) {missing}"
            )
        self.shard_stats = {
            spec.shard: _ShardStats() for spec in manifest.shards
        }
        self.shards = [
            _ShardClient(
                spec.shard,
                [
                    _Replica(host, port, config)
                    for host, port in endpoints[spec.shard]
                ],
                config,
                self.shard_stats[spec.shard],
            )
            for spec in manifest.shards
        ]
        self.maps = [ShardMap.from_spec(s) for s in manifest.shards]
        self._boundaries = np.asarray(
            [s.key_lo for s in manifest.shards], dtype=np.uint64
        )
        self.curve = HilbertCurve(manifest.ndims, manifest.order)
        self.model = (
            NormalDistortionModel(manifest.ndims, manifest.sigma)
            if manifest.sigma is not None else None
        )
        # Shards that may hold rows beyond the plan (post-plan ingests):
        # exempt from occupancy skipping, because memtable rows are not
        # covered by the planned presence bitmaps.
        self._dirty: set[int] = set()
        self._ready = False
        self.ingest_rows = 0
        # Replica ingest refusals carrying the retryable ``unavailable``
        # code — shard-side backpressure sheds (the shard's background
        # seal/compaction fell behind), distinct from replicas that were
        # simply unreachable.
        self.ingest_shed = 0
        self.queries_routed = Counter()
        # Per-shard wire-result LRUs.  Shard answers over the planned
        # (immutable) data repeat heavily under monitoring traffic; a
        # hit skips the round trip entirely.  Dirty shards bypass the
        # cache — their indexes can change without the router seeing an
        # invalidation point — and a router-routed ingest clears the
        # target shard's entries before marking it dirty.
        self.cache_stats = CacheStats()
        self._shard_caches: dict[int, QueryResultCache] = {
            spec.shard: QueryResultCache(
                config.cache_capacity, stats=self.cache_stats
            )
            for spec in manifest.shards
        } if config.cache_enabled else {}
        self._cache_epoch = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def ready(self) -> bool:
        return self._ready and not self._closing

    async def start(self) -> None:
        """Bind, then hold readiness until every shard reports ready.

        Like the shard server, the listener opens first so health probes
        answer ``loading`` while the shards warm up behind the router.
        """
        await self._bind()
        await self._await_shards_ready()
        self._ready = True

    async def _await_shards_ready(self) -> None:
        deadline = (
            asyncio.get_running_loop().time() + self.config.startup_timeout
        )
        for client, spec in zip(self.shards, self.manifest.shards):
            while True:
                remaining = deadline - asyncio.get_running_loop().time()
                if remaining <= 0:
                    raise ReproError(
                        f"shard {client.shard} not ready within "
                        f"{self.config.startup_timeout:.0f}s"
                    )
                try:
                    health = await client.request(
                        {"op": "health"},
                        asyncio.get_running_loop().time()
                        + min(remaining, 5.0),
                    )
                except WireOpError:
                    await asyncio.sleep(0.05)
                    continue
                if health.get("ready"):
                    rows = (health.get("index") or {}).get("rows")
                    if rows is not None and int(rows) != spec.rows:
                        # The replica already diverged from the plan
                        # (out-of-band ingest); never skip this shard.
                        self._dirty.add(client.shard)
                    break
                await asyncio.sleep(0.05)

    async def stop(self) -> None:
        if self._closing:
            await self._stopped.wait()
            return
        self._closing = True
        self._ready = False
        await self._stop_listener()
        await self._drain_connections()
        for client in self.shards:
            await client.close()
        self._stopped.set()

    # ------------------------------------------------------------------
    # dispatch hooks
    # ------------------------------------------------------------------
    def _op_table(self) -> dict:
        return {
            "query": self._op_query,
            "detect": self._op_detect,
            "ingest": self._op_ingest,
            "stats": self._op_stats,
            "health": self._op_health,
        }

    def _gate(self, op: str, request: dict) -> None:
        if op in ("query", "detect", "ingest") and not self._ready:
            raise NotReady(
                "router is waiting for its shards to become ready; "
                "retry after backoff or probe health"
            )

    def _check_alpha(self, request: dict) -> None:
        alpha = request.get("alpha")
        if alpha is not None and alpha != self.config.alpha:
            raise protocol.ProtocolError(
                f"this cluster runs at alpha={self.config.alpha}; "
                f"per-request alpha={alpha} is not supported"
            )

    # ------------------------------------------------------------------
    # scatter-gather query path
    # ------------------------------------------------------------------
    def _shard_cache(self, shard: int) -> Optional[QueryResultCache]:
        """The shard's wire cache, or ``None`` when it must be bypassed.

        Dirty shards hold rows the router has no invalidation signal
        for (out-of-band or post-plan ingests), so their answers are
        never cached and never served from cache.
        """
        if shard in self._dirty:
            return None
        return self._shard_caches.get(shard)

    def _shard_query_indices(
        self, queries: np.ndarray
    ) -> list[np.ndarray]:
        """Which query rows each shard must answer.

        With a statistical model, replays the engines' cold per-query
        block selection and keeps, per shard, only the queries whose
        selection intersects the shard's occupancy union — an exact
        skip, as proven by the sketch tier it reuses.  Dirty shards
        (post-plan ingests) and model-less clusters get every query.
        """
        num = queries.shape[0]
        everything = np.arange(num, dtype=np.int64)
        if self.model is None:
            return [everything for _ in self.shards]
        selections = statistical_blocks_multi(
            queries,
            self.model,
            self.curve,
            self.manifest.depth,
            self.config.alpha,
        )
        per_shard = []
        for spec in self.manifest.shards:
            if spec.shard in self._dirty:
                per_shard.append(everything)
                continue
            keep = [
                b for b, sel in enumerate(selections)
                if spec.presence.covers_any(sel.prefixes, sel.depth)
            ]
            per_shard.append(np.asarray(keep, dtype=np.int64))
        return per_shard

    async def _scatter_queries(
        self, request: dict, queries: np.ndarray, include_fp: bool
    ) -> list[dict]:
        """Fan a query batch out and merge back into per-query wires."""
        deadline = self._deadline(request)
        loop = asyncio.get_running_loop()
        per_shard = await loop.run_in_executor(
            None, self._shard_query_indices, queries
        )

        async def _one(client, indices) -> Optional[dict]:
            if indices.size == 0:
                self.shard_stats[client.shard].skips += 1
                return None
            # Per-shard wire cache: answer what we can locally, send
            # only the misses, and reassemble the full per-index result
            # list so the merge below is oblivious to the cache.
            cache = self._shard_cache(client.shard)
            # Token captured before the round trip: an ingest landing
            # while we await bumps it, so the puts below are dropped.
            token = cache.token if cache is not None else None
            wires: list[Optional[dict]] = [None] * int(indices.size)
            missed = np.arange(indices.size, dtype=np.int64)
            if cache is not None:
                missed_pos = []
                for pos, b in enumerate(indices):
                    hit = cache.get(
                        (queries[int(b)].tobytes(), include_fp)
                    )
                    if hit is None:
                        missed_pos.append(pos)
                    else:
                        wires[pos] = hit
                missed = np.asarray(missed_pos, dtype=np.int64)
                if missed.size == 0:
                    return {"results": wires}
            message = {
                "op": "query",
                "fingerprints": protocol.fingerprints_to_wire(
                    queries[indices[missed]]
                ),
            }
            if include_fp:
                message["include_fingerprints"] = True
            if deadline is not None:
                message["deadline_ms"] = max(
                    1.0, (deadline - loop.time()) * 1e3
                )
            result = await client.request(message, deadline)
            for pos, wire in zip(missed, result["results"]):
                wires[int(pos)] = wire
                if cache is not None:
                    cache.put(
                        (
                            queries[int(indices[int(pos)])].tobytes(),
                            include_fp,
                        ),
                        wire,
                        token,
                    )
            return {"results": wires}

        gathered = await asyncio.gather(*[
            _one(client, indices)
            for client, indices in zip(self.shards, per_shard)
        ])
        total_sealed = self.manifest.total_rows
        merged: list[dict] = []
        for b in range(queries.shape[0]):
            contributions = []
            for shard_map, indices, result in zip(
                self.maps, per_shard, gathered
            ):
                if result is None:
                    continue
                pos = np.flatnonzero(indices == b)
                if pos.size == 0:
                    continue
                wire = result["results"][int(pos[0])]
                contributions.append((shard_map, wire))
            merged.append(merge_query_wires(
                contributions, total_sealed, include_fp
            ))
        self.queries_routed.add(queries.shape[0])
        return merged

    async def _op_query(self, request: dict) -> dict:
        self._check_alpha(request)
        queries = protocol.fingerprints_from_wire(
            request.get("fingerprints"), self.manifest.ndims
        )
        include_fp = bool(request.get("include_fingerprints", False))
        merged = await self._scatter_queries(request, queries, include_fp)
        return {"alpha": self.config.alpha, "results": merged}

    async def _op_detect(self, request: dict) -> dict:
        self._check_alpha(request)
        fingerprints = protocol.fingerprints_from_wire(
            request.get("fingerprints"), self.manifest.ndims
        )
        timecodes = np.asarray(
            request.get("timecodes", []), dtype=np.float64
        )
        if timecodes.shape != (fingerprints.shape[0],):
            raise protocol.ProtocolError(
                f"timecodes must be ({fingerprints.shape[0]},) aligned "
                f"with fingerprints, got shape {timecodes.shape}"
            )
        threshold = int(
            request.get("threshold", self.config.decision_threshold)
        )
        merged = await self._scatter_queries(request, fingerprints, False)
        matches = [
            QueryMatches(
                timecode=float(tc),
                ids=np.asarray(wire["ids"], dtype=np.int64),
                timecodes=np.asarray(wire["timecodes"], dtype=np.float64),
            )
            for wire, tc in zip(merged, timecodes)
            if wire["count"]
        ]
        votes = vote(
            matches,
            tolerance=self.config.vote_tolerance,
            tukey_c=self.config.tukey_c,
            min_matches=self.config.min_matches,
        )
        return {
            "num_queries": int(fingerprints.shape[0]),
            "detections": [
                {
                    "video_id": int(v.video_id),
                    "offset": float(v.offset),
                    "nsim": int(v.nsim),
                    "num_candidates": int(v.num_candidates),
                }
                for v in votes
                if v.nsim >= threshold
            ],
        }

    # ------------------------------------------------------------------
    # ingest path
    # ------------------------------------------------------------------
    def _route_rows(self, fingerprints: np.ndarray) -> np.ndarray:
        """Owning shard of each row, by planned Hilbert key range."""
        quantised = np.ascontiguousarray(fingerprints, dtype=np.uint8)
        keys = encode_batch(
            quantised, self.manifest.order, self.manifest.key_levels
        )
        # boundaries[i] = key_lo of shard i (ascending, boundaries[0]=0):
        # the owner is the last boundary <= key.
        return (
            np.searchsorted(self._boundaries, keys, side="right") - 1
        ).astype(np.int64)

    async def _op_ingest(self, request: dict) -> dict:
        fingerprints = protocol.fingerprints_from_wire(
            request.get("fingerprints"), self.manifest.ndims
        )
        count = fingerprints.shape[0]
        ids = np.asarray(request.get("ids", []), dtype=np.int64)
        timecodes = np.asarray(request.get("timecodes", []), dtype=np.float64)
        if ids.shape != (count,) or timecodes.shape != (count,):
            raise protocol.ProtocolError(
                f"ids and timecodes must both be ({count},) aligned with "
                f"fingerprints, got {ids.shape} and {timecodes.shape}"
            )
        request_id = protocol.request_dedupe_id(request) or uuid.uuid4().hex
        deadline = self._deadline(request)
        owners = self._route_rows(fingerprints)

        async def _one_shard(client, rows: np.ndarray) -> dict:
            """Write this shard's rows to every replica; >=1 ack wins.

            The per-shard request id is derived from the client's, so a
            client resubmission re-derives the same ids and the shard
            servers dedupe instead of double-applying.
            """
            message = {
                "op": "ingest",
                "fingerprints": protocol.fingerprints_to_wire(
                    fingerprints[rows]
                ),
                "ids": [int(i) for i in ids[rows]],
                "timecodes": [float(t) for t in timecodes[rows]],
                "request_id": f"{request_id}/s{client.shard}",
            }
            if deadline is not None:
                message["deadline_ms"] = max(
                    1.0,
                    (deadline - asyncio.get_running_loop().time()) * 1e3,
                )
            acks = 0
            misses = 0
            error: Optional[WireOpError] = None
            for replica in client.replicas:
                single = _ShardClient(
                    client.shard, [replica], self.config,
                    self.shard_stats[client.shard],
                )
                try:
                    await single.request(message, deadline)
                    acks += 1
                except WireOpError as exc:
                    misses += 1
                    if exc.code == protocol.ERR_UNAVAILABLE:
                        # Shard-side ingest backpressure (or a cold
                        # fetch outage): retryable, and worth counting
                        # separately from dead replicas.
                        self.ingest_shed += 1
                    error = exc
            if not acks:
                assert error is not None
                raise error
            self.shard_stats[client.shard].replica_misses += misses
            return {
                "shard": client.shard,
                "rows": int(rows.size),
                "acks": acks,
                "misses": misses,
            }

        tasks = []
        for client in self.shards:
            rows = np.flatnonzero(owners == client.shard)
            if rows.size == 0:
                continue
            # Drop the shard's cached answers (and bump its token so
            # in-flight puts are refused) before it goes dirty.
            cache = self._shard_caches.get(client.shard)
            if cache is not None:
                self._cache_epoch += 1
                cache.invalidate(self._cache_epoch)
            self._dirty.add(client.shard)
            tasks.append(_one_shard(client, rows))
        outcomes = await asyncio.gather(*tasks)
        self.ingest_rows += count
        return {
            "added": int(count),
            "request_id": request_id,
            "shards": outcomes,
        }

    # ------------------------------------------------------------------
    # local ops
    # ------------------------------------------------------------------
    async def _op_stats(self, request: dict) -> dict:
        return {
            **self.base_stats(),
            "ready": self.ready,
            "cluster": {
                "shards": len(self.shards),
                "total_rows": self.manifest.total_rows,
                "queries_routed": self.queries_routed.total,
                "ingest_rows": self.ingest_rows,
                "ingest_shed": self.ingest_shed,
                "dirty_shards": sorted(self._dirty),
                "cache": {
                    "enabled": self.config.cache_enabled,
                    "mode": self.config.cache,
                    "capacity_per_shard": self.config.cache_capacity,
                    "entries": sum(
                        len(c) for c in self._shard_caches.values()
                    ),
                    **self.cache_stats.snapshot(),
                },
                "per_shard": [
                    {
                        "shard": client.shard,
                        "fanouts": stats.fanouts,
                        "skips": stats.skips,
                        "failovers": stats.failovers,
                        "replica_misses": stats.replica_misses,
                        "latency": stats.latency.snapshot(),
                        "replicas": [
                            {
                                "address": r.address,
                                "connected": r.writer is not None,
                                "marked_down": r.marked_down,
                            }
                            for r in client.replicas
                        ],
                    }
                    for client, stats in (
                        (c, self.shard_stats[c.shard]) for c in self.shards
                    )
                ],
            },
        }

    async def _op_health(self, request: dict) -> dict:
        if self._closing:
            status = "draining"
        elif not self._ready:
            status = "loading"
        else:
            status = "ok"
        return {
            "status": status,
            "live": True,
            "ready": self.ready,
            "alpha": self.config.alpha,
            "index": {
                "kind": "cluster",
                "rows": self.manifest.total_rows,
                "ndims": self.manifest.ndims,
                "order": self.manifest.order,
                "key_levels": self.manifest.key_levels,
                "depth": self.manifest.depth,
                "sigma": self.manifest.sigma,
                "shards": len(self.shards),
            },
        }
