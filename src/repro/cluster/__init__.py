"""Sharded scatter-gather detection cluster with replica failover.

The paper's service scenario outgrows one machine once the reference
archive does; this package scales the detection service horizontally
while keeping the wire contract — and the *answers* — exactly those of
a single node:

* :mod:`.plan` — the offline shard planner: partitions a sealed
  segmented index into N shards by Hilbert key range (whole segments as
  assignment units), materialises replica directories and writes
  ``CLUSTER.json``;
* :mod:`.supervisor` — launches one detection server per replica,
  watches them, and respawns crashed ones on the same port;
* :mod:`.merge` — reassembles shard-local results into single-node row
  order (the bit-identity core);
* :mod:`.router` — the asyncio scatter-gather frontend speaking the
  unmodified client protocol, with occupancy-based shard skipping and
  replica failover.

``repro-s3 cluster plan|serve|status`` is the CLI surface; see
``docs/cluster.md`` for the guarantees and their boundaries.
"""

from .merge import ShardMap, build_shard_maps, merge_query_wires
from .plan import (
    ClusterManifest,
    SegmentAssignment,
    ShardPresence,
    ShardSpec,
    plan_cluster,
    shard_dirname,
)
from .router import ClusterRouter, RouterConfig
from .supervisor import ClusterSupervisor, ReplicaHandle

__all__ = [
    "ClusterManifest",
    "ClusterRouter",
    "ClusterSupervisor",
    "ReplicaHandle",
    "RouterConfig",
    "SegmentAssignment",
    "ShardMap",
    "ShardPresence",
    "ShardSpec",
    "build_shard_maps",
    "merge_query_wires",
    "plan_cluster",
    "shard_dirname",
]
