"""Reassemble shard-local results into single-node result order.

A single :class:`~repro.index.segmented.lsm.SegmentedS3Index` answers a
query by concatenating per-segment matches **in manifest order** (each
segment's rows offset by its base in the virtual concatenation), with
memtable matches last.  A shard server does exactly the same over its
own manifest — which lists a *subset* of the source's segments, in
source order.  So a shard's result is a stable-order selection of the
single-node result's parts, just with shard-local row numbering.

The merge therefore never re-sorts matches (sorting by row would be
wrong anyway: rows within one segment part are emitted in probe order,
not ascending).  Instead it

1. splits each shard's flat result at the shard's cumulative
   segment-count boundaries (a ``searchsorted`` over the shard-local
   row ranges — valid because shard-local rows are ``local_base +
   in-segment row`` and parts arrive in shard-manifest order, so row
   ranges of consecutive parts are disjoint and ascending);
2. renumbers each part's rows ``local - local_base + global_base``;
3. emits sealed parts ordered by the segment's ``source_pos`` — the
   interleaving the single node would have produced — then any
   memtable parts (rows past the shard's sealed total), renumbered past
   the source's sealed total.

Byte-level equality of the re-encoded JSON follows from Python's
shortest-repr float round-trip: the values the shard serialised are the
values we re-serialise.

Memtable caveat: rows ingested *after* planning exist only on their
owning shard, and the merged row numbers for those rows depend on the
shard layout (they are appended after all sealed rows, per shard in
shard order).  Sealed data — everything at plan time — merges bit
for bit; see ``docs/cluster.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .plan import ClusterManifest, ShardSpec


@dataclass(frozen=True)
class _Part:
    """One segment's slice of a shard-local wire result."""

    source_pos: int  # position in the source manifest; memtable = +inf
    rows: list
    ids: list
    timecodes: list
    fingerprints: list | None


@dataclass(frozen=True)
class ShardMap:
    """Precomputed per-shard row geometry for the merge hot path."""

    shard: int
    local_bases: np.ndarray  # (S,) first shard-local row of each segment
    local_ends: np.ndarray  # (S,) one past the last shard-local row
    global_bases: np.ndarray  # (S,) segment base row in the source index
    source_pos: np.ndarray  # (S,) segment position in the source manifest
    sealed_rows: int  # shard-local rows below this are sealed

    @classmethod
    def from_spec(cls, spec: ShardSpec) -> "ShardMap":
        counts = np.asarray([a.count for a in spec.segments], dtype=np.int64)
        ends = np.cumsum(counts)
        return cls(
            shard=spec.shard,
            local_bases=ends - counts,
            local_ends=ends,
            global_bases=np.asarray(
                [a.global_base for a in spec.segments], dtype=np.int64
            ),
            source_pos=np.asarray(
                [a.source_pos for a in spec.segments], dtype=np.int64
            ),
            sealed_rows=int(ends[-1]) if counts.size else 0,
        )

    def split(self, wire: dict, total_sealed: int) -> list[_Part]:
        """Decompose one shard-local wire result into renumbered parts.

        *total_sealed* is the source index's sealed row count — the
        global base for memtable rows.
        """
        rows = np.asarray(wire["rows"], dtype=np.int64)
        if rows.size == 0:
            return []
        ids = wire["ids"]
        timecodes = wire["timecodes"]
        fps = wire.get("fingerprints")
        # Parts arrive concatenated in shard-manifest order, so the
        # segment of each match is found by bisecting its local row
        # range; one pass collects contiguous runs of equal segment.
        seg_of = np.searchsorted(self.local_ends, rows, side="right")
        cuts = np.flatnonzero(np.diff(seg_of)) + 1
        starts = np.concatenate(([0], cuts))
        ends = np.concatenate((cuts, [rows.size]))
        parts = []
        for start, end in zip(starts, ends):
            seg = int(seg_of[start])
            chunk = rows[start:end]
            if seg >= self.local_bases.size:  # memtable rows
                shifted = chunk - self.sealed_rows + total_sealed
                pos = np.iinfo(np.int64).max
            else:
                shifted = (
                    chunk
                    - self.local_bases[seg]
                    + self.global_bases[seg]
                )
                pos = int(self.source_pos[seg])
            parts.append(_Part(
                source_pos=pos,
                rows=[int(r) for r in shifted],
                ids=ids[start:end],
                timecodes=timecodes[start:end],
                fingerprints=None if fps is None else fps[start:end],
            ))
        return parts


def build_shard_maps(manifest: ClusterManifest) -> list[ShardMap]:
    return [ShardMap.from_spec(spec) for spec in manifest.shards]


def merge_query_wires(
    per_shard: list[tuple[ShardMap, dict]],
    total_sealed: int,
    include_fingerprints: bool = False,
) -> dict:
    """Merge one query's shard-local wire results into single-node form.

    *per_shard* pairs each responding shard's :class:`ShardMap` with the
    wire-format result dict the shard returned for this query.  Shards
    that were skipped (proven empty) are simply absent.  Returns a wire
    result dict identical to what a single node would have produced.
    """
    parts: list[tuple[int, int, _Part]] = []
    for shard_map, wire in per_shard:
        for part in shard_map.split(wire, total_sealed):
            parts.append((part.source_pos, shard_map.shard, part))
    # Sealed parts interleave across shards by source position — the
    # order the single node's fan-out emits them.  Memtable parts (max
    # source_pos) come last, grouped by shard.  The sort is total:
    # source_pos is unique among sealed parts (a segment lives in
    # exactly one shard), and (pos, shard) disambiguates memtables.
    parts.sort(key=lambda item: (item[0], item[1]))
    rows: list[int] = []
    ids: list = []
    timecodes: list = []
    fingerprints: list = []
    for _, _, part in parts:
        rows.extend(part.rows)
        ids.extend(part.ids)
        timecodes.extend(part.timecodes)
        if part.fingerprints is not None:
            fingerprints.extend(part.fingerprints)
    merged = {
        "count": len(rows),
        "rows": rows,
        "ids": ids,
        "timecodes": timecodes,
    }
    if include_fingerprints:
        merged["fingerprints"] = fingerprints
    return merged
