"""The voting strategy (paper §III): from search results to decisions.

After the similarity search has returned, for every candidate fingerprint
``S_j``, a set of referenced fingerprints with identifiers and time-codes,
the decision is taken *per identifier*:

1. estimate the temporal offset ``b(id)`` robustly (eq. (2),
   :mod:`~repro.cbcd.mestimator`);
2. count the similarity measure ``n_sim(id)``: the number of candidate
   fingerprints (interest points) with at least one match of this
   identifier consistent with ``b(id)`` within a small tolerance interval;
3. threshold ``n_sim`` — the temporal coherence of many fingerprints is
   rare by chance, which is what keeps false alarms low even under a very
   approximate search.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .mestimator import OffsetEstimate, estimate_offset


@dataclass(frozen=True)
class Vote:
    """Per-identifier outcome of the voting strategy."""

    video_id: int
    offset: float
    nsim: int
    num_candidates: int
    cost: float

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Vote(id={self.video_id}, b={self.offset:.2f}, "
            f"nsim={self.nsim}/{self.num_candidates})"
        )


@dataclass
class QueryMatches:
    """Matches of one candidate fingerprint: arrays of equal length."""

    timecode: float
    ids: np.ndarray
    timecodes: np.ndarray


def group_by_identifier(
    matches: list[QueryMatches],
) -> dict[int, tuple[list[float], list[np.ndarray]]]:
    """Regroup per-query matches into per-identifier vote inputs.

    Returns, for each identifier, the candidate time-codes ``tc'_j`` that
    matched it and, aligned, the arrays of referenced time-codes
    ``tc_jk``.
    """
    grouped: dict[int, tuple[list[float], list[np.ndarray]]] = defaultdict(
        lambda: ([], [])
    )
    for match in matches:
        ids = np.asarray(match.ids)
        tcs = np.asarray(match.timecodes, dtype=np.float64)
        if ids.shape != tcs.shape:
            raise ConfigurationError("ids and timecodes must align")
        for uid in np.unique(ids):
            sel = tcs[ids == uid]
            entry = grouped[int(uid)]
            entry[0].append(float(match.timecode))
            entry[1].append(sel)
    return dict(grouped)


def count_votes(
    candidate_tcs: list[float],
    matched_tcs: list[np.ndarray],
    offset: float,
    tolerance: float,
) -> int:
    """Count candidates consistent with *offset* within *tolerance*.

    One vote per candidate fingerprint (interest point), however many of
    its matches agree.
    """
    if tolerance < 0:
        raise ConfigurationError(f"tolerance must be >= 0, got {tolerance}")
    votes = 0
    for tc_prime, tcs in zip(candidate_tcs, matched_tcs):
        residuals = np.abs(tc_prime - (np.asarray(tcs, dtype=np.float64) + offset))
        if residuals.min() <= tolerance:
            votes += 1
    return votes


def vote(
    matches: list[QueryMatches],
    tolerance: float = 2.0,
    tukey_c: float = 6.0,
    min_matches: int = 2,
) -> list[Vote]:
    """Run the full voting strategy over a buffer of query matches.

    Returns one :class:`Vote` per identifier with at least *min_matches*
    matched candidates, sorted by decreasing ``n_sim``.
    """
    grouped = group_by_identifier(matches)
    votes: list[Vote] = []
    for uid, (cand_tcs, match_tcs) in grouped.items():
        if len(cand_tcs) < min_matches:
            continue
        estimate: OffsetEstimate = estimate_offset(cand_tcs, match_tcs, c=tukey_c)
        nsim = count_votes(cand_tcs, match_tcs, estimate.offset, tolerance)
        votes.append(
            Vote(
                video_id=uid,
                offset=estimate.offset,
                nsim=nsim,
                num_candidates=len(cand_tcs),
                cost=estimate.cost,
            )
        )
    votes.sort(key=lambda v: (-v.nsim, v.cost))
    return votes
