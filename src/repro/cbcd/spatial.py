"""Spatio-temporal voting — the paper's §VI extension, implemented.

The paper's future work: "we would like to extend the estimation step to
the spatial positions of the interest points in order to improve the
discriminance of the fingerprints".  This module does exactly that: the
reference store is augmented with the ``(y, x)`` position of every
fingerprint, and the per-identifier estimation solves the three-parameter
model

``tc' = tc + b``,  ``y' = y + dy``,  ``x' = x + dx``

(a temporal offset plus a spatial translation, which covers the paper's
shift transformation and the re-framing component of resize).  A candidate
votes only when some match agrees with *all three* estimated parameters —
temporal coherence alone is already rare by chance; joint spatio-temporal
coherence is rarer still, so the vote is more discriminant.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..distortion.model import IndependentDistortionModel
from ..errors import ConfigurationError
from ..index.batch import BatchQueryExecutor
from ..index.s3 import S3Index
from ..index.store import FingerprintStore
from .mestimator import estimate_offset, tukey_weight


@dataclass
class PositionedStore:
    """A fingerprint store plus per-row interest point positions."""

    store: FingerprintStore
    positions: np.ndarray  # (N, 2) of (y, x)

    def __post_init__(self) -> None:
        self.positions = np.ascontiguousarray(self.positions, dtype=np.float64)
        if self.positions.shape != (len(self.store), 2):
            raise ConfigurationError(
                f"positions must be ({len(self.store)}, 2), "
                f"got {self.positions.shape}"
            )

    def take(self, rows: np.ndarray) -> "PositionedStore":
        """Row-select store and positions together (stay aligned)."""
        return PositionedStore(
            store=self.store.take(rows), positions=self.positions[rows]
        )


@dataclass
class SpatioTemporalMatch:
    """Matches of one candidate fingerprint, with positions."""

    timecode: float
    position: np.ndarray  # (2,) candidate point (y, x)
    ids: np.ndarray
    timecodes: np.ndarray
    positions: np.ndarray  # (K, 2) referenced points


@dataclass(frozen=True)
class SpatioTemporalVote:
    """Per-identifier outcome of the extended voting."""

    video_id: int
    offset: float
    translation: tuple[float, float]
    nsim: int
    num_candidates: int


def _estimate_translation(
    residual_pairs: list[tuple[np.ndarray, np.ndarray]],
    c: float,
    iterations: int = 5,
) -> np.ndarray:
    """Robust 2-D translation via IRLS with Tukey weights.

    *residual_pairs* holds ``(candidate_position, matched_positions)``; the
    per-candidate residual uses the closest match under the current
    estimate.
    """
    # Initialise at the coordinate-wise median of the raw residuals: IRLS
    # from zero would assign zero Tukey weight to every candidate when the
    # true translation exceeds the scale c.
    raw = []
    for cand, refs in residual_pairs:
        diffs = cand - refs
        raw.append(diffs[np.argmin(np.linalg.norm(diffs, axis=1))])
    delta = np.median(np.asarray(raw), axis=0)
    for _ in range(iterations):
        residuals = []
        for cand, refs in residual_pairs:
            diffs = cand - (refs + delta)
            norms = np.linalg.norm(diffs, axis=1)
            residuals.append(diffs[np.argmin(norms)])
        residuals = np.asarray(residuals)
        weights = tukey_weight(np.linalg.norm(residuals, axis=1), c)
        wsum = weights.sum()
        if wsum <= 0:
            break
        step = (weights[:, None] * residuals).sum(axis=0) / wsum
        delta += step
        if np.linalg.norm(step) < 1e-9:
            break
    return delta


def spatio_temporal_vote(
    matches: list[SpatioTemporalMatch],
    tolerance: float = 2.0,
    spatial_tolerance: float = 4.0,
    tukey_c: float = 6.0,
    spatial_c: float = 8.0,
    min_matches: int = 2,
) -> list[SpatioTemporalVote]:
    """Run the extended voting strategy over a buffer of matches.

    Per identifier: estimate ``b`` exactly as the temporal voting does
    (eq. 2), then estimate the spatial translation ``(dy, dx)`` robustly on
    the temporally-consistent candidates, and count a vote only when a
    match agrees with both within the tolerances.
    """
    grouped: dict[int, list[tuple[float, np.ndarray, np.ndarray, np.ndarray]]]
    grouped = defaultdict(list)
    for match in matches:
        ids = np.asarray(match.ids)
        for uid in np.unique(ids):
            mask = ids == uid
            grouped[int(uid)].append(
                (
                    float(match.timecode),
                    np.asarray(match.position, dtype=np.float64),
                    np.asarray(match.timecodes, dtype=np.float64)[mask],
                    np.asarray(match.positions, dtype=np.float64)[mask],
                )
            )

    votes: list[SpatioTemporalVote] = []
    for uid, entries in grouped.items():
        if len(entries) < min_matches:
            continue
        cand_tcs = [e[0] for e in entries]
        match_tcs = [e[2] for e in entries]
        temporal = estimate_offset(cand_tcs, match_tcs, c=tukey_c)

        # Spatial estimation on temporally consistent candidates only.
        consistent = []
        for tc_prime, cand_pos, tcs, positions in entries:
            residuals = np.abs(tc_prime - (tcs + temporal.offset))
            keep = residuals <= tolerance
            if np.any(keep):
                consistent.append((cand_pos, positions[keep]))
        if not consistent:
            continue
        translation = _estimate_translation(consistent, c=spatial_c)

        nsim = 0
        for tc_prime, cand_pos, tcs, positions in entries:
            t_ok = np.abs(tc_prime - (tcs + temporal.offset)) <= tolerance
            s_ok = (
                np.linalg.norm(cand_pos - (positions + translation), axis=1)
                <= spatial_tolerance
            )
            if np.any(t_ok & s_ok):
                nsim += 1
        votes.append(
            SpatioTemporalVote(
                video_id=uid,
                offset=temporal.offset,
                translation=(float(translation[0]), float(translation[1])),
                nsim=nsim,
                num_candidates=len(entries),
            )
        )
    votes.sort(key=lambda v: -v.nsim)
    return votes


class SpatialSearchIndex:
    """An :class:`~repro.index.s3.S3Index` that also returns positions.

    Positions ride along the index's curve-sorted row order, so each
    search result can be joined with the matched interest points — the
    input the extended voting needs.
    """

    def __init__(
        self,
        positioned: PositionedStore,
        model: IndependentDistortionModel,
        depth: int | None = None,
    ):
        self.index = S3Index(positioned.store, model=model, depth=depth)
        self.positions = positioned.positions[self.index.layout.permutation]

    def __len__(self) -> int:
        return len(self.index)

    def query(
        self,
        fingerprint: np.ndarray,
        timecode: float,
        position: np.ndarray,
        alpha: float,
    ) -> SpatioTemporalMatch:
        """One statistical query joined with positions."""
        result = self.index.statistical_query(
            np.asarray(fingerprint, dtype=np.float64), alpha
        )
        return SpatioTemporalMatch(
            timecode=float(timecode),
            position=np.asarray(position, dtype=np.float64),
            ids=result.ids,
            timecodes=result.timecodes,
            positions=self.positions[result.rows],
        )

    def query_batch(
        self,
        fingerprints: np.ndarray,
        timecodes: np.ndarray,
        positions: np.ndarray,
        alpha: float,
        batch_size: int = 32,
        workers: int = 1,
    ) -> list[SpatioTemporalMatch]:
        """Batched statistical queries joined with positions.

        One engine pass per ``batch_size`` chunk (shared block selection +
        coalesced scan, see :mod:`repro.index.batch`); every match list is
        identical to per-query :meth:`query` from the same warm-start
        cache state.
        """
        executor = BatchQueryExecutor(
            self.index, alpha, batch_size=batch_size, workers=workers
        )
        results = executor.query_all(
            np.asarray(fingerprints, dtype=np.float64)
        )
        return [
            SpatioTemporalMatch(
                timecode=float(tc),
                position=np.asarray(pos, dtype=np.float64),
                ids=result.ids,
                timecodes=result.timecodes,
                positions=self.positions[result.rows],
            )
            for result, tc, pos in zip(results, timecodes, positions)
        ]

    def detect(
        self,
        fingerprints: np.ndarray,
        timecodes: np.ndarray,
        positions: np.ndarray,
        alpha: float = 0.8,
        batch_size: int = 32,
        workers: int = 1,
        **vote_kwargs,
    ) -> list[SpatioTemporalVote]:
        """Search a candidate's fingerprints and run the extended voting."""
        fingerprints = np.asarray(fingerprints)
        timecodes = np.asarray(timecodes, dtype=np.float64)
        positions = np.asarray(positions, dtype=np.float64)
        if (
            fingerprints.ndim != 2
            or timecodes.shape != (fingerprints.shape[0],)
            or positions.shape != (fingerprints.shape[0], 2)
        ):
            raise ConfigurationError(
                "fingerprints (N, D), timecodes (N,) and positions (N, 2) "
                "must align"
            )
        self.index.reset_threshold_cache()
        matches = [
            match
            for match in self.query_batch(
                fingerprints, timecodes, positions, alpha,
                batch_size=batch_size, workers=workers,
            )
            if match.ids.size
        ]
        return spatio_temporal_vote(matches, **vote_kwargs)
