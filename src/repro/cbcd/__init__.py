"""The content-based copy detection decision layer (paper §III).

Robust temporal-offset estimation (:mod:`~repro.cbcd.mestimator`), the
voting strategy (:mod:`~repro.cbcd.voting`), the assembled detector
(:mod:`~repro.cbcd.detector`) and the evaluation/calibration protocol of
§V-C (:mod:`~repro.cbcd.evaluation`).
"""

from .detector import CopyDetector, Detection, DetectionReport, DetectorConfig
from .evaluation import (
    DetectionRateResult,
    GroundTruth,
    TrialOutcome,
    calibrate_decision_threshold,
    evaluate_candidates,
    false_alarm_nsim_distribution,
    is_good_detection,
)
from .mestimator import OffsetEstimate, estimate_offset, tukey_rho, tukey_weight
from .monitor import MonitorConfig, StreamDetection, StreamMonitor
from .spatial import (
    PositionedStore,
    SpatialSearchIndex,
    SpatioTemporalMatch,
    SpatioTemporalVote,
    spatio_temporal_vote,
)
from .voting import QueryMatches, Vote, count_votes, group_by_identifier, vote

__all__ = [
    "CopyDetector",
    "Detection",
    "DetectionRateResult",
    "DetectionReport",
    "DetectorConfig",
    "GroundTruth",
    "MonitorConfig",
    "OffsetEstimate",
    "PositionedStore",
    "QueryMatches",
    "SpatialSearchIndex",
    "SpatioTemporalMatch",
    "SpatioTemporalVote",
    "StreamDetection",
    "StreamMonitor",
    "TrialOutcome",
    "Vote",
    "calibrate_decision_threshold",
    "count_votes",
    "estimate_offset",
    "evaluate_candidates",
    "false_alarm_nsim_distribution",
    "group_by_identifier",
    "is_good_detection",
    "spatio_temporal_vote",
    "tukey_rho",
    "tukey_weight",
    "vote",
]
