"""Robust temporal-offset estimation (paper §III, eq. (2)).

For each video identifier ``id`` present in the search results, the voting
strategy estimates the single parameter ``b`` of the temporal model
``tc' = tc + b`` (candidate time-code = referenced time-code + offset) by
minimising the robust cost

``b(id) = argmin_b  Σ_j  min_{k : Id_jk = id}  ρ(|tc'_j − (tc_jk + b)|)``

where ``ρ`` is the Tukey biweight M-estimator (after Black & Anandan), whose
redescending influence function suppresses outliers — the falsely retrieved
fingerprints an approximate search inevitably returns.

The minimisation is solved Hough-style: every pairwise difference
``tc'_j − tc_jk`` is a candidate offset; a coarse histogram proposes the
best few modes and the exact robust cost is evaluated on the candidate
offsets inside those modes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


def tukey_rho(u: np.ndarray, c: float) -> np.ndarray:
    """Tukey's biweight loss ``ρ(u)``.

    ``ρ(u) = c²/6 · (1 − (1 − (u/c)²)³)`` for ``|u| <= c`` and ``c²/6``
    beyond — bounded, so distant outliers contribute a constant.
    """
    if c <= 0:
        raise ConfigurationError(f"c must be > 0, got {c}")
    u = np.asarray(u, dtype=np.float64)
    scaled = np.clip(np.abs(u) / c, 0.0, 1.0)
    return (c * c / 6.0) * (1.0 - (1.0 - scaled * scaled) ** 3)


def tukey_weight(u: np.ndarray, c: float) -> np.ndarray:
    """Tukey's biweight weight function ``w(u) = (1 − (u/c)²)²`` inside ``c``."""
    if c <= 0:
        raise ConfigurationError(f"c must be > 0, got {c}")
    u = np.asarray(u, dtype=np.float64)
    inside = np.abs(u) <= c
    w = (1.0 - (u / c) ** 2) ** 2
    return np.where(inside, w, 0.0)


@dataclass(frozen=True)
class OffsetEstimate:
    """Result of the robust offset estimation for one identifier."""

    offset: float
    cost: float
    num_candidates: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OffsetEstimate(b={self.offset:.2f}, cost={self.cost:.3g})"


def _robust_cost(
    b: float,
    candidate_tcs: list[float],
    matched_tcs: list[np.ndarray],
    c: float,
) -> float:
    total = 0.0
    for tc_prime, tcs in zip(candidate_tcs, matched_tcs):
        residuals = np.abs(tc_prime - (tcs + b))
        total += float(tukey_rho(residuals.min(), c))
    return total


def estimate_offset(
    candidate_tcs: list[float],
    matched_tcs: list[np.ndarray],
    c: float = 6.0,
    max_modes: int = 5,
) -> OffsetEstimate:
    """Solve eq. (2) for one identifier.

    Parameters
    ----------
    candidate_tcs:
        The time-codes ``tc'_j`` of the candidate fingerprints that
        retrieved at least one fingerprint of this identifier.
    matched_tcs:
        For each candidate ``j``, the array of referenced time-codes
        ``tc_jk`` with this identifier.
    c:
        Tukey scale, in the same time unit as the time-codes.
    max_modes:
        Number of histogram modes whose member offsets get an exact cost
        evaluation.
    """
    if len(candidate_tcs) != len(matched_tcs):
        raise ConfigurationError(
            "candidate_tcs and matched_tcs must have equal length"
        )
    if not candidate_tcs:
        raise ConfigurationError("cannot estimate an offset from zero candidates")

    diffs = np.concatenate(
        [tc_prime - np.asarray(tcs, dtype=np.float64)
         for tc_prime, tcs in zip(candidate_tcs, matched_tcs)]
    )
    if diffs.size == 1:
        b = float(diffs[0])
        return OffsetEstimate(
            offset=b,
            cost=_robust_cost(b, candidate_tcs, matched_tcs, c),
            num_candidates=1,
        )

    # Hough stage: coarse histogram of candidate offsets, bin width ~ c.
    lo, hi = float(diffs.min()), float(diffs.max())
    width = max(c, 1e-9)
    nbins = max(int(np.ceil((hi - lo) / width)), 1)
    nbins = min(nbins, 1_000_000)
    counts, edges = np.histogram(diffs, bins=nbins, range=(lo, hi + 1e-9))
    top_bins = np.argsort(counts, kind="stable")[::-1][:max_modes]
    top_bins = top_bins[counts[top_bins] > 0]

    best_b = float(diffs[0])
    best_cost = np.inf
    evaluated = 0
    for bin_idx in top_bins:
        in_bin = diffs[(diffs >= edges[bin_idx]) & (diffs <= edges[bin_idx + 1])]
        # Evaluate exact cost at each member offset (they are the only
        # values where some residual is exactly zero, hence the only local
        # minimiser candidates of the piecewise-smooth cost that matter).
        for b in np.unique(in_bin):
            cost = _robust_cost(float(b), candidate_tcs, matched_tcs, c)
            evaluated += 1
            if cost < best_cost:
                best_cost = cost
                best_b = float(b)

    # Local refinement: one weighted least-squares step (IRLS) around the
    # best offset, using the per-candidate closest match.
    refined = _irls_refine(best_b, candidate_tcs, matched_tcs, c)
    refined_cost = _robust_cost(refined, candidate_tcs, matched_tcs, c)
    if refined_cost < best_cost:
        best_b, best_cost = refined, refined_cost

    return OffsetEstimate(
        offset=best_b, cost=best_cost, num_candidates=len(candidate_tcs)
    )


def _irls_refine(
    b: float,
    candidate_tcs: list[float],
    matched_tcs: list[np.ndarray],
    c: float,
    iterations: int = 3,
) -> float:
    for _ in range(iterations):
        residuals = []
        for tc_prime, tcs in zip(candidate_tcs, matched_tcs):
            r = tc_prime - (np.asarray(tcs, dtype=np.float64) + b)
            residuals.append(r[np.argmin(np.abs(r))])
        residuals = np.asarray(residuals)
        weights = tukey_weight(residuals, c)
        wsum = weights.sum()
        if wsum <= 0:
            break
        step = float((weights * residuals).sum() / wsum)
        b += step
        if abs(step) < 1e-9:
            break
    return b
