"""Detection-rate evaluation and false-alarm calibration (paper §V-C).

The paper's protocol: extract candidate sequences from the reference
material, transform them, submit them to the CBCD system and count a *good
detection* when the true identifier is reported with the estimated offset
matching the ground-truth alignment within a 2-frame tolerance and
``n_sim`` above the decision threshold; that threshold is itself set so the
system raises "less than 1 false alarm per hour" on non-referenced
material.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import ConfigurationError, ExtractionError
from ..video.synthetic import VideoClip
from ..video.transforms import Transform
from .detector import CopyDetector, DetectionReport


@dataclass(frozen=True)
class GroundTruth:
    """What a candidate clip really is: a segment of a referenced video."""

    video_id: int
    start_frame: float

    @property
    def true_offset(self) -> float:
        """Expected ``b`` of the model ``tc' = tc + b``.

        Candidate time-codes count from the clip start while referenced
        time-codes count from the programme start, so
        ``b = −start_frame``.
        """
        return -float(self.start_frame)


@dataclass
class TrialOutcome:
    """One candidate clip's evaluation result."""

    truth: GroundTruth
    detected: bool
    report: DetectionReport


@dataclass
class DetectionRateResult:
    """Aggregate over a set of candidate clips."""

    outcomes: list[TrialOutcome]

    @property
    def num_trials(self) -> int:
        """Number of candidate clips evaluated."""
        return len(self.outcomes)

    @property
    def detection_rate(self) -> float:
        """Fraction of candidates that were good detections."""
        if not self.outcomes:
            return 0.0
        return sum(o.detected for o in self.outcomes) / len(self.outcomes)

    @property
    def mean_search_seconds(self) -> float:
        """Mean single-fingerprint search time across all trials."""
        totals = [
            o.report.search_seconds / max(o.report.num_queries, 1)
            for o in self.outcomes
            if o.report.num_queries
        ]
        return float(np.mean(totals)) if totals else 0.0


def is_good_detection(
    report: DetectionReport,
    truth: GroundTruth,
    offset_tolerance: float = 2.0,
) -> bool:
    """Paper's criterion: right identifier, alignment within 2 frames."""
    for det in report.detections:
        if det.video_id != truth.video_id:
            continue
        if abs(det.offset - truth.true_offset) <= offset_tolerance:
            return True
    return False


def evaluate_candidates(
    detector: CopyDetector,
    candidates: Sequence[tuple[VideoClip, GroundTruth]],
    transform: Optional[Transform] = None,
    offset_tolerance: float = 2.0,
) -> DetectionRateResult:
    """Measure the good-detection rate over transformed candidate clips.

    Each candidate clip is (optionally) transformed, submitted to the
    detector, and scored against its ground truth.  Candidates whose
    transformed version yields no fingerprints count as misses (the paper's
    "hard to discriminate" material).
    """
    outcomes: list[TrialOutcome] = []
    for clip, truth in candidates:
        material = transform.apply_clip(clip) if transform is not None else clip
        try:
            report = detector.detect_clip(material)
        except ExtractionError:
            report = DetectionReport(
                detections=[], votes=[], num_queries=0,
                rows_scanned=0, search_seconds=0.0,
            )
        outcomes.append(
            TrialOutcome(
                truth=truth,
                detected=is_good_detection(report, truth, offset_tolerance),
                report=report,
            )
        )
    return DetectionRateResult(outcomes=outcomes)


@dataclass
class ExtractedCandidate:
    """A candidate clip reduced to its fingerprints (extraction is
    detector-independent, so sweeps over many detector configurations can
    share it)."""

    fingerprints: "np.ndarray"
    timecodes: "np.ndarray"
    truth: GroundTruth


def extract_candidates(
    candidates: Sequence[tuple[VideoClip, GroundTruth]],
    transform: Optional[Transform] = None,
    extractor=None,
) -> list[ExtractedCandidate]:
    """Transform and fingerprint candidate clips once, for reuse.

    Candidates whose transformed version yields no fingerprints are kept
    with empty arrays (they count as misses downstream).
    """
    from ..fingerprint.extractor import FingerprintExtractor

    extractor = extractor or FingerprintExtractor()
    out: list[ExtractedCandidate] = []
    for clip, truth in candidates:
        material = transform.apply_clip(clip) if transform is not None else clip
        try:
            extraction = extractor.extract(material, video_id=0)
            fps = extraction.store.fingerprints
            tcs = extraction.store.timecodes
        except ExtractionError:
            from ..fingerprint.descriptor import FINGERPRINT_DIM

            fps = np.empty((0, FINGERPRINT_DIM), dtype=np.uint8)
            tcs = np.empty(0, dtype=np.float64)
        out.append(ExtractedCandidate(fingerprints=fps, timecodes=tcs, truth=truth))
    return out


def evaluate_extracted(
    detector: CopyDetector,
    extracted: Sequence[ExtractedCandidate],
    offset_tolerance: float = 2.0,
) -> DetectionRateResult:
    """Detection-rate evaluation over pre-extracted candidates."""
    outcomes: list[TrialOutcome] = []
    for candidate in extracted:
        if candidate.fingerprints.shape[0] == 0:
            report = DetectionReport(
                detections=[], votes=[], num_queries=0,
                rows_scanned=0, search_seconds=0.0,
            )
        else:
            report = detector.detect_fingerprints(
                candidate.fingerprints, candidate.timecodes
            )
        outcomes.append(
            TrialOutcome(
                truth=candidate.truth,
                detected=is_good_detection(
                    report, candidate.truth, offset_tolerance
                ),
                report=report,
            )
        )
    return DetectionRateResult(outcomes=outcomes)


def false_alarm_nsim_distribution(
    detector: CopyDetector,
    negative_clips: Sequence[VideoClip],
) -> np.ndarray:
    """Collect the best ``n_sim`` each non-referenced clip achieves.

    The calibration input: a decision threshold above these values keeps
    the false-alarm rate at the observed level.
    """
    best: list[int] = []
    for clip in negative_clips:
        try:
            report = detector.detect_clip(clip)
        except ExtractionError:
            best.append(0)
            continue
        best.append(max((v.nsim for v in report.votes), default=0))
    return np.asarray(best, dtype=np.int64)


def calibrate_decision_threshold(
    detector: CopyDetector,
    negative_clips: Sequence[VideoClip],
    max_false_alarm_fraction: float = 0.0,
    margin: int = 1,
) -> int:
    """Pick the smallest ``n_sim`` threshold meeting a false-alarm budget.

    With the default ``max_false_alarm_fraction = 0`` the threshold clears
    every negative clip's best score by *margin* — the practical analogue
    of "less than 1 false alarm per hour" at our corpus scale.  The
    detector's configuration is updated in place and the threshold
    returned.
    """
    if not 0.0 <= max_false_alarm_fraction < 1.0:
        raise ConfigurationError(
            "max_false_alarm_fraction must be in [0, 1), got "
            f"{max_false_alarm_fraction}"
        )
    scores = false_alarm_nsim_distribution(detector, negative_clips)
    if scores.size == 0:
        raise ConfigurationError("need at least one negative clip to calibrate")
    allowed = int(np.floor(max_false_alarm_fraction * scores.size))
    ordered = np.sort(scores)[::-1]
    # The (allowed+1)-th largest score must fall below the threshold.
    pivot = ordered[allowed] if allowed < scores.size else 0
    threshold = int(pivot) + margin
    detector.config.decision_threshold = max(threshold, 1)
    return detector.config.decision_threshold
