"""The complete content-based copy detector (paper §III + §IV).

Wires the pieces together: candidate fingerprints (extracted from a clip or
supplied directly) are searched in an :class:`~repro.index.s3.S3Index` with
statistical queries of expectation α; the per-query matches are buffered
and merged by the voting strategy; identifiers whose similarity measure
``n_sim`` reaches the decision threshold are reported as copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..distortion.model import IndependentDistortionModel
from ..errors import ConfigurationError, ExtractionError
from ..fingerprint.extractor import ExtractorConfig, FingerprintExtractor
from ..index.batch import BatchQueryExecutor
from ..index.options import QueryOptions, warn_deprecated_kwargs
from ..index.s3 import S3Index
from ..video.synthetic import VideoClip
from .voting import QueryMatches, Vote, vote


@dataclass(frozen=True)
class Detection:
    """A reported copy: candidate material matches a referenced video."""

    video_id: int
    offset: float
    nsim: int
    num_candidates: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Detection(id={self.video_id}, b={self.offset:.1f}, "
            f"nsim={self.nsim})"
        )


@dataclass
class DetectorConfig:
    """Decision-layer parameters.

    Engine tuning (batching, sharding, executor, prefilter mode) lives
    in ``options``, the unified
    :class:`~repro.index.options.QueryOptions`.  The flat
    ``batch_size``/``workers``/``executor`` fields are the deprecated
    spelling: they still work (with a ``DeprecationWarning``) and are
    folded into ``options``; passing both raises.  After construction
    the flat fields always mirror the effective options, so existing
    reads keep working.
    """

    alpha: float = 0.8
    vote_tolerance: float = 2.0
    tukey_c: float = 6.0
    decision_threshold: int = 5
    min_matches: int = 2
    batch_size: Optional[int] = None
    workers: Optional[int] = None
    executor: Optional[str] = None
    extractor: ExtractorConfig = field(default_factory=ExtractorConfig)
    options: Optional[QueryOptions] = None

    def __post_init__(self) -> None:
        if self.decision_threshold < 1:
            raise ConfigurationError(
                f"decision_threshold must be >= 1, got {self.decision_threshold}"
            )
        legacy = {
            name: value
            for name in ("batch_size", "workers", "executor")
            if (value := getattr(self, name)) is not None
        }
        if self.options is not None:
            if legacy:
                raise ConfigurationError(
                    "DetectorConfig: pass either options= or the legacy "
                    f"keyword(s) {sorted(legacy)}, not both"
                )
            self.alpha = self.options.alpha
        else:
            if legacy:
                warn_deprecated_kwargs("DetectorConfig", legacy)
            self.options = QueryOptions(
                alpha=self.alpha,
                batch_size=legacy.get("batch_size", 32),
                workers=legacy.get("workers", 1),
                executor=legacy.get("executor", "auto"),
            )
        if not 0.0 < self.alpha < 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1), got {self.alpha}")
        self.batch_size = self.options.batch_size
        self.workers = self.options.workers
        self.executor = self.options.executor


@dataclass
class DetectionReport:
    """Everything a detection run produced (decisions + diagnostics)."""

    detections: list[Detection]
    votes: list[Vote]
    num_queries: int
    rows_scanned: int
    search_seconds: float

    def best(self) -> Optional[Detection]:
        """The strongest detection, or ``None``."""
        return self.detections[0] if self.detections else None


class CopyDetector:
    """Statistical-search copy detector over a reference index."""

    def __init__(
        self,
        index: S3Index,
        config: DetectorConfig | None = None,
        model: Optional[IndependentDistortionModel] = None,
    ):
        self.index = index
        self.config = config or DetectorConfig()
        self.model = model
        self._extractor = FingerprintExtractor(self.config.extractor)

    # ------------------------------------------------------------------
    def detect_fingerprints(
        self,
        fingerprints: np.ndarray,
        timecodes: np.ndarray,
    ) -> DetectionReport:
        """Detect copies given pre-extracted candidate fingerprints.

        *timecodes* are the candidate time-codes ``tc'_j`` (frames from the
        start of the candidate material).
        """
        fingerprints = np.asarray(fingerprints)
        timecodes = np.asarray(timecodes, dtype=np.float64)
        if fingerprints.ndim != 2 or fingerprints.shape[0] != timecodes.shape[0]:
            raise ConfigurationError(
                "fingerprints must be (N, D) aligned with (N,) timecodes"
            )
        cfg = self.config
        # Per-run determinism: the index's warm-start cache is scoped to
        # one candidate clip (still warm across its ~hundreds of queries).
        self.index.reset_threshold_cache()
        matches: list[QueryMatches] = []
        rows_scanned = 0
        search_seconds = 0.0
        with BatchQueryExecutor(
            self.index, model=self.model, options=cfg.options,
        ) as executor:
            for result, tc in zip(
                executor.query_all(fingerprints.astype(np.float64)),
                timecodes,
            ):
                rows_scanned += result.stats.rows_scanned
                search_seconds += result.stats.total_seconds
                if len(result):
                    matches.append(
                        QueryMatches(
                            timecode=float(tc),
                            ids=result.ids,
                            timecodes=result.timecodes,
                        )
                    )
        votes = vote(
            matches,
            tolerance=cfg.vote_tolerance,
            tukey_c=cfg.tukey_c,
            min_matches=cfg.min_matches,
        )
        detections = [
            Detection(
                video_id=v.video_id,
                offset=v.offset,
                nsim=v.nsim,
                num_candidates=v.num_candidates,
            )
            for v in votes
            if v.nsim >= cfg.decision_threshold
        ]
        return DetectionReport(
            detections=detections,
            votes=votes,
            num_queries=int(fingerprints.shape[0]),
            rows_scanned=rows_scanned,
            search_seconds=search_seconds,
        )

    def detect_clip(self, clip: VideoClip) -> DetectionReport:
        """Extract fingerprints from *clip* and detect copies."""
        extraction = self._extractor.extract(clip, video_id=0)
        return self.detect_fingerprints(
            extraction.store.fingerprints, extraction.store.timecodes
        )

    # ------------------------------------------------------------------
    def monitor_stream(
        self,
        clip: VideoClip,
        window_frames: int,
        hop_frames: Optional[int] = None,
    ) -> list[tuple[int, DetectionReport]]:
        """Continuously monitor a stream (the paper's TV monitoring, §V-D).

        The stream is processed in sliding windows of *window_frames*; each
        window's fingerprints go through the detection pipeline.  Returns
        ``(window_start_frame, report)`` pairs.
        """
        if window_frames < 8:
            raise ConfigurationError(
                f"window_frames must be >= 8, got {window_frames}"
            )
        hop = hop_frames if hop_frames is not None else window_frames
        if hop < 1:
            raise ConfigurationError(f"hop_frames must be >= 1, got {hop}")
        reports = []
        start = 0
        while start + window_frames <= clip.num_frames:
            window = clip.subclip(start, start + window_frames)
            try:
                report = self.detect_clip(window)
            except ExtractionError:
                # Featureless windows (e.g. black sequences) produce no
                # fingerprints; they simply yield no detections.
                report = DetectionReport(
                    detections=[], votes=[], num_queries=0,
                    rows_scanned=0, search_seconds=0.0,
                )
            reports.append((start, report))
            start += hop
        return reports
