"""Stateful TV-stream monitoring (paper §III buffer + §V-D deployment).

The paper's production system continuously monitors a channel: search
results "are stored in a buffer for a fixed number of key-frames in order
to estimate the best sequences".  :class:`StreamMonitor` implements that
stateful loop:

* frames are *fed* incrementally (any chunk size);
* extraction runs over a sliding analysis window every ``hop_frames``;
* per-key-frame matches accumulate in a bounded buffer of the most recent
  ``buffer_keyframes`` key-frames — so a copy straddling two analysis
  windows still accumulates a single coherent vote;
* the voting strategy runs on the buffer after every analysis step, and
  newly confirmed detections are emitted exactly once (identifier +
  aligned offset de-duplication).

With ``ingest_new=True`` (and a :class:`~repro.index.segmented.SegmentedS3Index`,
or any index exposing ``add``), the monitor also *references* detected-new
material on the fly — the paper's operational loop at INA, where each
day's broadcast extends the reference database: key-frames that match
nothing in the archive are inserted under ``ingest_video_id``, so later
re-broadcasts of the same material are detected.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..index.segmented import SegmentedS3Index

from ..errors import ConfigurationError, ExtractionError
from ..fingerprint.extractor import ExtractorConfig, FingerprintExtractor
from ..index.batch import BatchQueryExecutor
from ..index.options import QueryOptions, warn_deprecated_kwargs
from ..index.s3 import S3Index
from ..video.synthetic import VideoClip
from .detector import Detection
from .voting import QueryMatches, vote


@dataclass
class MonitorConfig:
    """Knobs of the continuous monitor.

    Engine tuning (batching, sharding, executor, prefilter mode) lives
    in ``options``, the unified
    :class:`~repro.index.options.QueryOptions` — historically the
    monitor carried its own ``batch_size``/``workers`` copies (and never
    grew an ``executor`` knob at all, a drift the unified options
    removes).  The flat fields remain as deprecated shims: they warn,
    are folded into ``options``, and mirror the effective values after
    construction; passing both raises.
    """

    alpha: float = 0.8
    window_frames: int = 80
    hop_frames: int = 40
    buffer_keyframes: int = 64
    vote_tolerance: float = 2.0
    tukey_c: float = 6.0
    decision_threshold: int = 10
    min_matches: int = 2
    dedupe_offset_tolerance: float = 4.0
    ingest_new: bool = False
    ingest_video_id: int = 1_000_000
    ingest_match_threshold: int = 0
    batch_size: Optional[int] = None
    workers: Optional[int] = None
    extractor: ExtractorConfig = field(default_factory=ExtractorConfig)
    options: Optional[QueryOptions] = None

    def __post_init__(self) -> None:
        legacy = {
            name: value
            for name in ("batch_size", "workers")
            if (value := getattr(self, name)) is not None
        }
        if self.options is not None:
            if legacy:
                raise ConfigurationError(
                    "MonitorConfig: pass either options= or the legacy "
                    f"keyword(s) {sorted(legacy)}, not both"
                )
            self.alpha = self.options.alpha
        else:
            if legacy:
                warn_deprecated_kwargs("MonitorConfig", legacy)
            self.options = QueryOptions(
                alpha=self.alpha,
                batch_size=legacy.get("batch_size", 32),
                workers=legacy.get("workers", 1),
            )
        self.batch_size = self.options.batch_size
        self.workers = self.options.workers
        if not 0.0 < self.alpha < 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.window_frames < 8:
            raise ConfigurationError(
                f"window_frames must be >= 8, got {self.window_frames}"
            )
        if not 1 <= self.hop_frames <= self.window_frames:
            raise ConfigurationError(
                "hop_frames must be in [1, window_frames], got "
                f"{self.hop_frames}"
            )
        if self.buffer_keyframes < 2:
            raise ConfigurationError(
                f"buffer_keyframes must be >= 2, got {self.buffer_keyframes}"
            )
        if self.ingest_video_id < 0:
            raise ConfigurationError(
                f"ingest_video_id must be >= 0, got {self.ingest_video_id}"
            )
        if self.ingest_match_threshold < 0:
            raise ConfigurationError(
                "ingest_match_threshold must be >= 0, got "
                f"{self.ingest_match_threshold}"
            )


@dataclass(frozen=True)
class StreamDetection:
    """A detection anchored on the stream's absolute time axis."""

    video_id: int
    stream_offset: float
    nsim: int
    first_seen_frame: int

    def as_detection(self) -> Detection:
        """The plain :class:`~repro.cbcd.detector.Detection` view."""
        return Detection(
            video_id=self.video_id,
            offset=self.stream_offset,
            nsim=self.nsim,
            num_candidates=0,
        )


class StreamMonitor:
    """Incremental copy detector over a continuous frame stream.

    *index* is usually a static :class:`~repro.index.s3.S3Index`; with
    ``config.ingest_new`` it must support online inserts (an index
    exposing ``add``, e.g.
    :class:`~repro.index.segmented.SegmentedS3Index`).
    """

    def __init__(
        self,
        index: "S3Index | SegmentedS3Index",
        config: MonitorConfig | None = None,
    ):
        self.index = index
        self.config = config or MonitorConfig()
        if self.config.ingest_new and not hasattr(index, "add"):
            raise ConfigurationError(
                "ingest_new requires an index with online inserts "
                "(e.g. SegmentedS3Index); got "
                f"{type(index).__name__}"
            )
        self._extractor = FingerprintExtractor(self.config.extractor)
        self._frames: np.ndarray | None = None
        self._stream_pos = 0          # absolute index of buffer start
        self._next_analysis = 0       # absolute frame where next window ends
        self._matches: deque[QueryMatches] = deque()
        self._reported: list[StreamDetection] = []
        self._frames_seen = 0
        self._ingest_horizon = 0.0    # stream time already referenced
        self._ingested_rows = 0

    # ------------------------------------------------------------------
    @property
    def frames_seen(self) -> int:
        """Total frames fed so far."""
        return self._frames_seen

    @property
    def detections(self) -> list[StreamDetection]:
        """Everything reported so far, in order of first confirmation."""
        return list(self._reported)

    @property
    def ingested_rows(self) -> int:
        """Fingerprints referenced on the fly (``ingest_new`` mode)."""
        return self._ingested_rows

    def feed(self, frames: np.ndarray) -> list[StreamDetection]:
        """Consume a chunk of frames; return detections confirmed by it.

        *frames* is ``(T, H, W)`` uint8 (any ``T >= 1``); chunks may be
        single frames or whole minutes of material.
        """
        frames = np.asarray(frames, dtype=np.uint8)
        if frames.ndim != 3:
            raise ConfigurationError(
                f"frames must be (T, H, W), got shape {frames.shape}"
            )
        if self._frames is None:
            self._frames = frames.copy()
        else:
            if frames.shape[1:] != self._frames.shape[1:]:
                raise ConfigurationError(
                    "frame geometry changed mid-stream: "
                    f"{frames.shape[1:]} vs {self._frames.shape[1:]}"
                )
            self._frames = np.concatenate([self._frames, frames])
        self._frames_seen += frames.shape[0]

        new_detections: list[StreamDetection] = []
        cfg = self.config
        while self._buffer_end() >= self._next_analysis + cfg.window_frames:
            window_start = self._next_analysis
            new_detections.extend(self._analyse(window_start))
            self._next_analysis = window_start + cfg.hop_frames
            self._trim_frames()
        return new_detections

    # ------------------------------------------------------------------
    def _buffer_end(self) -> int:
        return self._stream_pos + (
            0 if self._frames is None else self._frames.shape[0]
        )

    def _trim_frames(self) -> None:
        """Drop frames no future analysis window can need."""
        keep_from = self._next_analysis
        if self._frames is None or keep_from <= self._stream_pos:
            return
        drop = min(keep_from - self._stream_pos, self._frames.shape[0])
        self._frames = self._frames[drop:]
        self._stream_pos += drop

    def _analyse(self, window_start: int) -> list[StreamDetection]:
        cfg = self.config
        rel = window_start - self._stream_pos
        window = VideoClip(self._frames[rel:rel + cfg.window_frames])
        try:
            extraction = self._extractor.extract(window, video_id=0)
        except ExtractionError:
            return []

        self.index.reset_threshold_cache()
        executor = BatchQueryExecutor(self.index, options=cfg.options)
        results = executor.query_all(
            extraction.store.fingerprints.astype(np.float64)
        )
        unmatched_rows: list[int] = []
        for row, (result, tc) in enumerate(zip(
            results, extraction.store.timecodes
        )):
            if len(result):
                self._matches.append(
                    QueryMatches(
                        timecode=float(tc) + window_start,  # stream time
                        ids=result.ids,
                        timecodes=result.timecodes,
                    )
                )
            if len(result) <= cfg.ingest_match_threshold:
                unmatched_rows.append(row)
        if cfg.ingest_new:
            self._ingest_unmatched(
                extraction.store, unmatched_rows, window_start
            )
        # Bound the buffer to the most recent key-frame matches.
        while len(self._matches) > cfg.buffer_keyframes:
            self._matches.popleft()

        votes = vote(
            list(self._matches),
            tolerance=cfg.vote_tolerance,
            tukey_c=cfg.tukey_c,
            min_matches=cfg.min_matches,
        )
        fresh: list[StreamDetection] = []
        for v in votes:
            if v.nsim < cfg.decision_threshold:
                continue
            if self._already_reported(v.video_id, v.offset):
                continue
            detection = StreamDetection(
                video_id=v.video_id,
                stream_offset=v.offset,
                nsim=v.nsim,
                first_seen_frame=window_start,
            )
            self._reported.append(detection)
            fresh.append(detection)
        return fresh

    def _ingest_unmatched(
        self,
        store,
        unmatched_rows: list[int],
        window_start: int,
    ) -> None:
        """Reference this window's new material in the live index.

        Only the slice of stream time the *next* window will not revisit
        (``[ingest_horizon, window_start + hop)``) is ingested, so
        overlapping analysis windows never reference the same material
        twice.  Key-frames with more than ``ingest_match_threshold``
        archive matches are skipped — they are copies, not new material.
        """
        cfg = self.config
        upper = float(window_start + cfg.hop_frames)
        rows = [
            row for row in unmatched_rows
            if self._ingest_horizon
            <= float(store.timecodes[row]) + window_start < upper
        ]
        self._ingest_horizon = upper
        if not rows:
            return
        idx = np.asarray(rows, dtype=np.int64)
        self._ingested_rows += int(idx.size)
        self.index.add(
            store.fingerprints[idx],
            np.full(idx.size, cfg.ingest_video_id, dtype=np.uint32),
            store.timecodes[idx] + float(window_start),
        )

    def _already_reported(self, video_id: int, offset: float) -> bool:
        tol = self.config.dedupe_offset_tolerance
        return any(
            d.video_id == video_id and abs(d.stream_offset - offset) <= tol
            for d in self._reported
        )
