"""The five video transformations of the paper's evaluation (Fig. 4).

* resize of factor ``w_scale`` (about the frame centre, refilled to the
  original frame size);
* vertical shift of ``w_shift`` (fraction of the image height);
* gamma modification ``I' = 255 (I/255)^w_gamma`` (the paper writes
  ``I' = I^w_gamma``; the normalised form keeps bytes in range, which is
  what any real pipeline does);
* contrast modification ``I' = w_contrast · I`` (clipped);
* Gaussian noise addition of standard deviation ``w_noise``.

Each transformation knows how to

* apply itself to a frame or a whole :class:`~repro.video.synthetic.VideoClip`;
* **map interest-point positions** from the original frame to the
  transformed one (identity for the photometric transforms) — the paper's
  "perfect interest point detector" used to calibrate the distortion model
  (§IV-C), optionally with a ``δ_pix`` position jitter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from ..errors import ConfigurationError
from ..rng import SeedLike, resolve_rng
from .synthetic import VideoClip


class Transform:
    """Base class: a deterministic frame-level video transformation."""

    #: short machine name, e.g. ``"scale"``; set by sub-classes.
    name: str = "identity"

    def apply_frame(self, frame: np.ndarray) -> np.ndarray:
        """Return the transformed frame (same shape, uint8)."""
        raise NotImplementedError

    def apply_clip(self, clip: VideoClip) -> VideoClip:
        """Transform every frame of *clip*."""
        frames = np.stack([self.apply_frame(f) for f in clip.frames])
        return VideoClip(frames, clip.frame_rate)

    def map_points(
        self, points: np.ndarray, frame_shape: tuple[int, int]
    ) -> np.ndarray:
        """Map ``(N, 2)`` ``(y, x)`` positions into the transformed frame.

        Photometric transforms leave positions unchanged; geometric ones
        move them.  Positions may land outside the frame — callers filter.
        """
        return np.asarray(points, dtype=np.float64).copy()

    def params(self) -> dict[str, float]:
        """The transformation's parameters, for reporting."""
        return {}

    def label(self) -> str:
        """Human-readable label, e.g. ``"scale(w=0.80)"``."""
        inner = ", ".join(f"{k}={v:g}" for k, v in self.params().items())
        return f"{self.name}({inner})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.label()


class Identity(Transform):
    """No-op transformation (severity floor)."""

    name = "identity"

    def apply_frame(self, frame: np.ndarray) -> np.ndarray:
        return np.asarray(frame, dtype=np.uint8).copy()


@dataclass
class Resize(Transform):
    """Resize of factor ``w_scale`` about the frame centre.

    The frame is zoomed by ``w_scale``; the result is centre-cropped
    (``w_scale > 1``) or centre-padded with edge replication
    (``w_scale < 1``) back to the original size — the behaviour of a TV
    rescale followed by recapture at the original resolution.
    """

    w_scale: float

    def __post_init__(self) -> None:
        if self.w_scale <= 0:
            raise ConfigurationError(f"w_scale must be > 0, got {self.w_scale}")
        self.name = "scale"

    def apply_frame(self, frame: np.ndarray) -> np.ndarray:
        frame = np.asarray(frame, dtype=np.float64)
        h, w = frame.shape
        zoomed = ndimage.zoom(frame, self.w_scale, order=1, mode="nearest")
        zh, zw = zoomed.shape
        out = np.empty_like(frame)
        if zh >= h:
            top = (zh - h) // 2
            left = (zw - w) // 2
            out = zoomed[top:top + h, left:left + w]
        else:
            top = (h - zh) // 2
            left = (w - zw) // 2
            out = np.pad(
                zoomed,
                ((top, h - zh - top), (left, w - zw - left)),
                mode="edge",
            )
        return np.clip(out, 0, 255).astype(np.uint8)

    def map_points(self, points, frame_shape):
        points = np.asarray(points, dtype=np.float64)
        h, w = frame_shape
        zh = int(round(h * self.w_scale))
        zw = int(round(w * self.w_scale))
        scaled = points * self.w_scale
        if zh >= h:
            offset = np.array([(zh - h) // 2, (zw - w) // 2], dtype=np.float64)
            return scaled - offset
        offset = np.array([(h - zh) // 2, (w - zw) // 2], dtype=np.float64)
        return scaled + offset

    def params(self):
        return {"w_scale": self.w_scale}


@dataclass
class VerticalShift(Transform):
    """Vertical shift of ``w_shift`` (fraction of the height), black fill."""

    w_shift: float

    def __post_init__(self) -> None:
        if not -1.0 < self.w_shift < 1.0:
            raise ConfigurationError(
                f"w_shift must be in (-1, 1), got {self.w_shift}"
            )
        self.name = "shift"

    def _pixels(self, height: int) -> int:
        return int(round(self.w_shift * height))

    def apply_frame(self, frame: np.ndarray) -> np.ndarray:
        frame = np.asarray(frame, dtype=np.uint8)
        shift = self._pixels(frame.shape[0])
        out = np.zeros_like(frame)
        if shift >= 0:
            if shift < frame.shape[0]:
                out[shift:] = frame[: frame.shape[0] - shift]
        else:
            out[:shift] = frame[-shift:]
        return out

    def map_points(self, points, frame_shape):
        points = np.asarray(points, dtype=np.float64).copy()
        points[:, 0] += self._pixels(frame_shape[0])
        return points

    def params(self):
        return {"w_shift": self.w_shift}


@dataclass
class Gamma(Transform):
    """Gamma modification ``I' = 255 (I/255)^w_gamma``."""

    w_gamma: float

    def __post_init__(self) -> None:
        if self.w_gamma <= 0:
            raise ConfigurationError(f"w_gamma must be > 0, got {self.w_gamma}")
        self.name = "gamma"

    def apply_frame(self, frame: np.ndarray) -> np.ndarray:
        frame = np.asarray(frame, dtype=np.float64) / 255.0
        out = 255.0 * np.power(frame, self.w_gamma)
        return np.clip(out, 0, 255).astype(np.uint8)

    def params(self):
        return {"w_gamma": self.w_gamma}


@dataclass
class Contrast(Transform):
    """Contrast modification ``I' = w_contrast · I`` (clipped to bytes)."""

    w_contrast: float

    def __post_init__(self) -> None:
        if self.w_contrast <= 0:
            raise ConfigurationError(
                f"w_contrast must be > 0, got {self.w_contrast}"
            )
        self.name = "contrast"

    def apply_frame(self, frame: np.ndarray) -> np.ndarray:
        out = np.asarray(frame, dtype=np.float64) * self.w_contrast
        return np.clip(out, 0, 255).astype(np.uint8)

    def params(self):
        return {"w_contrast": self.w_contrast}


class GaussianNoise(Transform):
    """Additive Gaussian noise of standard deviation ``w_noise``.

    Stochastic but reproducible: the noise stream is seeded at
    construction, so applying the same transform object twice gives
    different noise (as in a real capture chain) while two objects built
    with the same seed behave identically.
    """

    name = "noise"

    def __init__(self, w_noise: float, seed: SeedLike = None):
        if w_noise < 0:
            raise ConfigurationError(f"w_noise must be >= 0, got {w_noise}")
        self.w_noise = float(w_noise)
        self._rng = resolve_rng(seed)

    def apply_frame(self, frame: np.ndarray) -> np.ndarray:
        frame = np.asarray(frame, dtype=np.float64)
        if self.w_noise > 0:
            frame = frame + self._rng.normal(0.0, self.w_noise, frame.shape)
        return np.clip(frame, 0, 255).astype(np.uint8)

    def params(self):
        return {"w_noise": self.w_noise}


@dataclass
class LogoInsertion(Transform):
    """Opaque logo/banner insertion — the paper's "inserting" operation.

    §I motivates local fingerprints precisely because TV copies routinely
    carry inserted overlays (channel logos, banners); points outside the
    overlay survive.  The logo is a deterministic bright rectangle with a
    dark border, anchored by fractional position and size.

    ``y_frac``/``x_frac`` place the logo's top-left corner; ``h_frac``/
    ``w_frac`` size it — all as fractions of the frame.
    """

    y_frac: float = 0.05
    x_frac: float = 0.70
    h_frac: float = 0.18
    w_frac: float = 0.25
    level: int = 230

    def __post_init__(self) -> None:
        for name in ("y_frac", "x_frac", "h_frac", "w_frac"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1), got {value}"
                )
        if not 0 <= self.level <= 255:
            raise ConfigurationError(f"level must be a byte, got {self.level}")
        self.name = "logo"

    def _box(self, shape: tuple[int, int]) -> tuple[int, int, int, int]:
        h, w = shape
        y0 = int(self.y_frac * h)
        x0 = int(self.x_frac * w)
        y1 = min(h, y0 + max(int(self.h_frac * h), 1))
        x1 = min(w, x0 + max(int(self.w_frac * w), 1))
        return y0, x0, y1, x1

    def apply_frame(self, frame: np.ndarray) -> np.ndarray:
        frame = np.asarray(frame, dtype=np.uint8).copy()
        y0, x0, y1, x1 = self._box(frame.shape)
        frame[y0:y1, x0:x1] = self.level
        # A one-pixel dark border makes the overlay a hard edge, like a
        # real broadcast logo.
        frame[y0:y1, x0] = 20
        frame[y0:y1, x1 - 1] = 20
        frame[y0, x0:x1] = 20
        frame[y1 - 1, x0:x1] = 20
        return frame

    def covers(self, points: np.ndarray, frame_shape: tuple[int, int]) -> np.ndarray:
        """Boolean mask of the ``(y, x)`` *points* hidden by the logo."""
        points = np.asarray(points, dtype=np.float64)
        y0, x0, y1, x1 = self._box(frame_shape)
        return (
            (points[:, 0] >= y0) & (points[:, 0] < y1)
            & (points[:, 1] >= x0) & (points[:, 1] < x1)
        )

    def params(self):
        return {
            "y_frac": self.y_frac, "x_frac": self.x_frac,
            "h_frac": self.h_frac, "w_frac": self.w_frac,
        }


class Compose(Transform):
    """Apply several transformations in sequence (left to right)."""

    name = "compose"

    def __init__(self, transforms: list[Transform]):
        if not transforms:
            raise ConfigurationError("Compose needs at least one transform")
        self.transforms = list(transforms)

    def apply_frame(self, frame: np.ndarray) -> np.ndarray:
        for t in self.transforms:
            frame = t.apply_frame(frame)
        return frame

    def map_points(self, points, frame_shape):
        points = np.asarray(points, dtype=np.float64)
        for t in self.transforms:
            points = t.map_points(points, frame_shape)
        return points

    def params(self):
        merged: dict[str, float] = {}
        for t in self.transforms:
            for key, value in t.params().items():
                merged[f"{t.name}.{key}"] = value
        return merged

    def label(self) -> str:
        return " + ".join(t.label() for t in self.transforms)


def jitter_points(
    points: np.ndarray, delta_pix: float, rng: SeedLike = None
) -> np.ndarray:
    """Shift each position by *delta_pix* in a uniformly random direction.

    The paper calibrates under "a simulated imprecision in the position of
    the interest points by shifting the theoretical position by 1 pixel"
    (``δ_pix = 1``).
    """
    points = np.asarray(points, dtype=np.float64)
    if delta_pix < 0:
        raise ConfigurationError(f"delta_pix must be >= 0, got {delta_pix}")
    if delta_pix == 0 or points.size == 0:
        return points.copy()
    gen = resolve_rng(rng)
    angles = gen.uniform(0.0, 2.0 * np.pi, size=points.shape[0])
    offsets = delta_pix * np.column_stack([np.sin(angles), np.cos(angles)])
    return points + np.round(offsets)
