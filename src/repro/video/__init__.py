"""Video substrate: procedural clips and the paper's five transformations.

The procedural generator (:mod:`~repro.video.synthetic`) replaces the INA
television archive of the paper (see DESIGN.md §2); the transformations
(:mod:`~repro.video.transforms`) are the exact five of Fig. 4 — resize,
vertical shift, gamma, contrast and Gaussian noise — each able to map
interest-point positions for distortion-model calibration.
"""

from .synthetic import SceneConfig, VideoClip, generate_clip, generate_corpus
from .transforms import (
    Compose,
    Contrast,
    Gamma,
    GaussianNoise,
    Identity,
    LogoInsertion,
    Resize,
    Transform,
    VerticalShift,
    jitter_points,
)

__all__ = [
    "Compose",
    "Contrast",
    "Gamma",
    "GaussianNoise",
    "Identity",
    "LogoInsertion",
    "Resize",
    "SceneConfig",
    "Transform",
    "VerticalShift",
    "VideoClip",
    "generate_clip",
    "generate_corpus",
    "jitter_points",
]
