"""Procedural grey-level video generation (substitute for the INA archive).

The paper's reference material is 75,000 hours of MPEG-1 TV recordings.
The search and voting layers never see pixels — only 20-byte fingerprints
with identifiers and time-codes — so a procedural source that exercises the
*same extraction path* (motion signal, Harris corners, differential
descriptors) is a faithful substitute; see DESIGN.md §2.

A clip is a sequence of *shots*.  Each shot has a static textured
background (band-passed noise, which is rich in Harris corners), a slow
global pan, and a few moving textured objects; shot boundaries produce the
motion-intensity extrema the key-frame detector keys on, while the moving
objects reproduce the paper's remark that background points recur across
key-frames whereas moving-object points are unique.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage

from ..errors import ConfigurationError
from ..rng import SeedLike, resolve_rng


@dataclass
class VideoClip:
    """A grey-level video: ``frames`` is ``(T, H, W) uint8``."""

    frames: np.ndarray
    frame_rate: float = 25.0

    def __post_init__(self) -> None:
        frames = np.asarray(self.frames)
        if frames.ndim != 3:
            raise ConfigurationError(
                f"frames must be (T, H, W), got shape {frames.shape}"
            )
        self.frames = np.ascontiguousarray(frames, dtype=np.uint8)

    @property
    def num_frames(self) -> int:
        return int(self.frames.shape[0])

    @property
    def height(self) -> int:
        return int(self.frames.shape[1])

    @property
    def width(self) -> int:
        return int(self.frames.shape[2])

    @property
    def duration(self) -> float:
        """Clip duration in seconds."""
        return self.num_frames / self.frame_rate

    def subclip(self, start: int, stop: int) -> "VideoClip":
        """Return frames ``[start, stop)`` as a new clip."""
        if not 0 <= start < stop <= self.num_frames:
            raise ConfigurationError(
                f"invalid subclip [{start}, {stop}) of {self.num_frames} frames"
            )
        return VideoClip(self.frames[start:stop].copy(), self.frame_rate)

    def save(self, path) -> None:
        """Write the frames as an ``.npy`` array (the CLI's exchange format)."""
        np.save(path, self.frames)

    @classmethod
    def load(cls, path, frame_rate: float = 25.0) -> "VideoClip":
        """Read a clip saved by :meth:`save` (or any ``(T, H, W)`` array)."""
        return cls(np.load(path), frame_rate)


@dataclass
class SceneConfig:
    """Knobs of the procedural generator."""

    height: int = 72
    width: int = 88
    frames_per_shot_min: int = 20
    frames_per_shot_max: int = 40
    texture_smoothness: float = 3.0
    texture_contrast: float = 70.0
    num_objects_min: int = 1
    num_objects_max: int = 3
    object_size_min: int = 8
    object_size_max: int = 18
    max_object_speed: float = 2.0
    max_pan_speed: float = 0.4
    sensor_noise: float = 1.5
    mean_level: float = 120.0


@dataclass
class _Shot:
    background: np.ndarray
    pan: tuple[float, float]
    objects: list[dict] = field(default_factory=list)


def _texture(shape: tuple[int, int], cfg: SceneConfig, rng: np.random.Generator) -> np.ndarray:
    """Band-passed noise texture, rich in corners, centred on mean_level."""
    raw = rng.normal(0.0, 1.0, shape)
    smooth = ndimage.gaussian_filter(raw, cfg.texture_smoothness)
    smooth -= smooth.mean()
    std = smooth.std()
    if std > 0:
        smooth *= cfg.texture_contrast / (3.0 * std)
    return cfg.mean_level + smooth


def _make_shot(cfg: SceneConfig, rng: np.random.Generator) -> _Shot:
    # Background larger than the frame so the pan never runs out of pixels.
    margin = int(np.ceil(cfg.max_pan_speed * cfg.frames_per_shot_max)) + 2
    bg = _texture((cfg.height + 2 * margin, cfg.width + 2 * margin), cfg, rng)
    pan = (
        rng.uniform(-cfg.max_pan_speed, cfg.max_pan_speed),
        rng.uniform(-cfg.max_pan_speed, cfg.max_pan_speed),
    )
    objects = []
    for _ in range(rng.integers(cfg.num_objects_min, cfg.num_objects_max + 1)):
        size = int(rng.integers(cfg.object_size_min, cfg.object_size_max + 1))
        objects.append(
            {
                "patch": _texture((size, size), cfg, rng),
                "pos": np.array(
                    [
                        rng.uniform(0, cfg.height - size),
                        rng.uniform(0, cfg.width - size),
                    ]
                ),
                "vel": rng.uniform(-cfg.max_object_speed, cfg.max_object_speed, 2),
            }
        )
    return _Shot(background=bg, pan=pan, objects=objects)


def _render_frame(
    shot: _Shot, t: int, cfg: SceneConfig, rng: np.random.Generator
) -> np.ndarray:
    margin_y = (shot.background.shape[0] - cfg.height) // 2
    margin_x = (shot.background.shape[1] - cfg.width) // 2
    dy = int(round(margin_y + shot.pan[0] * t))
    dx = int(round(margin_x + shot.pan[1] * t))
    dy = int(np.clip(dy, 0, shot.background.shape[0] - cfg.height))
    dx = int(np.clip(dx, 0, shot.background.shape[1] - cfg.width))
    frame = shot.background[dy:dy + cfg.height, dx:dx + cfg.width].copy()

    for obj in shot.objects:
        size = obj["patch"].shape[0]
        y = int(round(obj["pos"][0] + obj["vel"][0] * t)) % max(cfg.height - size, 1)
        x = int(round(obj["pos"][1] + obj["vel"][1] * t)) % max(cfg.width - size, 1)
        frame[y:y + size, x:x + size] = obj["patch"]

    if cfg.sensor_noise > 0:
        frame = frame + rng.normal(0.0, cfg.sensor_noise, frame.shape)
    return frame


def generate_clip(
    num_frames: int,
    config: SceneConfig | None = None,
    seed: SeedLike = None,
    frame_rate: float = 25.0,
) -> VideoClip:
    """Generate a procedural clip of *num_frames* frames.

    Deterministic for a given *seed*; different seeds give visually
    unrelated material (distinct referenced "programmes").
    """
    if num_frames < 1:
        raise ConfigurationError(f"num_frames must be >= 1, got {num_frames}")
    cfg = config or SceneConfig()
    rng = resolve_rng(seed)

    frames = np.empty((num_frames, cfg.height, cfg.width), dtype=np.uint8)
    produced = 0
    while produced < num_frames:
        shot_len = int(
            rng.integers(cfg.frames_per_shot_min, cfg.frames_per_shot_max + 1)
        )
        shot = _make_shot(cfg, rng)
        for t in range(min(shot_len, num_frames - produced)):
            frame = _render_frame(shot, t, cfg, rng)
            frames[produced] = np.clip(frame, 0, 255).astype(np.uint8)
            produced += 1
    return VideoClip(frames, frame_rate)


def generate_corpus(
    num_clips: int,
    frames_per_clip: int,
    config: SceneConfig | None = None,
    seed: SeedLike = None,
    frame_rate: float = 25.0,
) -> list[VideoClip]:
    """Generate a corpus of independent clips (the reference "archive")."""
    if num_clips < 1:
        raise ConfigurationError(f"num_clips must be >= 1, got {num_clips}")
    rng = resolve_rng(seed)
    seeds = rng.integers(0, 2**63 - 1, size=num_clips)
    return [
        generate_clip(frames_per_clip, config=config, seed=int(s), frame_rate=frame_rate)
        for s in seeds
    ]
