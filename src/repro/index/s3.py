"""The S³ index: statistical similarity search over local fingerprints.

This is the paper's contribution (§IV) assembled: a static index that

1. physically orders the fingerprint database along a Hilbert curve
   (:class:`~repro.index.table.HilbertLayout`),
2. answers **statistical queries** of expectation α — probabilistic
   filtering of the p-block partition under a distortion model, then a
   sequential refinement scan of the selected curve sections — and
3. answers classical **ε-range queries** on the same structure (geometric
   block filtering + exact distance refinement), the baseline of §V-A.

The index is *static*, like the paper's: build once from a
:class:`~repro.index.store.FingerprintStore`, no dynamic inserts.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..distortion.model import IndependentDistortionModel, NormalDistortionModel
from ..errors import ConfigurationError, IndexError_
from .filtering import (
    BlockSelection,
    best_first_blocks,
    range_blocks,
    statistical_blocks,
    statistical_blocks_cached,
    window_blocks,
)
from .kernels import range_refine, window_refine
from .store import FingerprintStore, PathLike
from .table import HilbertLayout

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .options import QueryOptions


@dataclass
class QueryStats:
    """Cost breakdown of one query (the paper's T = T_f + T_r)."""

    blocks_selected: int = 0
    sections_scanned: int = 0
    rows_scanned: int = 0
    results: int = 0
    nodes_visited: int = 0
    descents: int = 0
    filter_seconds: float = 0.0
    refine_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Total response time ``T(p) = T_f(p) + T_r(p)``."""
        return self.filter_seconds + self.refine_seconds


@dataclass
class SearchResult:
    """Result of a similarity query against an :class:`S3Index`.

    ``rows`` indexes into the index's (curve-sorted) store; ``ids`` /
    ``timecodes`` / ``fingerprints`` are the matching columns, which is all
    the CBCD voting strategy consumes.
    """

    rows: np.ndarray
    ids: np.ndarray
    timecodes: np.ndarray
    fingerprints: np.ndarray
    distances: Optional[np.ndarray] = None
    stats: QueryStats = field(default_factory=QueryStats)

    def __len__(self) -> int:
        return int(self.rows.size)


class S3Index:
    """Static Hilbert-curve index with statistical and ε-range queries.

    Parameters
    ----------
    store:
        The fingerprint database.  It is re-ordered along the curve at
        build time; the index keeps its own sorted copy.
    order:
        Bits per fingerprint component (8 for byte fingerprints).
    key_levels:
        Curve levels resolved by the sort keys; partition depths up to
        ``key_levels * D`` are supported (2 levels = 40 bits for D = 20).
    depth:
        Default partition depth ``p``.  ``None`` picks the heuristic
        ``log2(N)`` (about one fingerprint per block), which
        :func:`repro.index.tuning.tune_depth` can refine — the paper learns
        ``p_min`` "at the start of the retrieval stage".
    model:
        Default distortion model for statistical queries (a
        :class:`~repro.distortion.model.NormalDistortionModel` with the
        calibrated severity σ).  Can be overridden per query.
    layout:
        A prebuilt :class:`~repro.index.table.HilbertLayout` whose keys
        already describe *store*'s row order.  Skips the build-time key
        computation entirely — tier promotions use this to swap a
        segment's store (cold → warm → hot) without re-encoding, reusing
        the keys persisted in the segment's ``.keys`` sidecar.  The
        caller asserts the store is curve-sorted under these keys.
    """

    def __init__(
        self,
        store: FingerprintStore,
        order: int = 8,
        key_levels: int = 2,
        depth: Optional[int] = None,
        model: Optional[IndependentDistortionModel] = None,
        layout: Optional[HilbertLayout] = None,
    ):
        if len(store) == 0:
            raise IndexError_("cannot index an empty store")
        if layout is not None:
            if layout.keys.shape[0] != len(store):
                raise IndexError_(
                    f"prebuilt layout has {layout.keys.shape[0]} keys "
                    f"for a store of {len(store)} rows"
                )
            self.layout = layout
            self.store = store
        else:
            layout = HilbertLayout.build(store.fingerprints, order, key_levels)
            self.layout = layout
            if np.array_equal(
                layout.permutation, np.arange(len(store), dtype=np.int64)
            ):
                # Already curve-ordered (stores written by save() / sealed
                # segments): keep the caller's store object, preserving any
                # zero-copy backing (mmap/shm) for process-parallel scans.
                self.store = store
            else:
                self.store = store.take(layout.permutation)
        self.order = order
        self.key_levels = key_levels
        if depth is None:
            depth = int(np.ceil(np.log2(max(len(store), 2))))
            depth = min(max(depth, 1), layout.max_depth)
        self._check_depth(depth)
        self.depth = depth
        self.model = model
        # Warm-start cache for the threshold search of eq. (4): queries of
        # one workload share (alpha, depth, model), so the previous query's
        # t_max is an excellent first probe, typically saving 2-4 descents.
        self._threshold_cache: dict[tuple, float] = {}

    # ------------------------------------------------------------------
    def reset_threshold_cache(self) -> None:
        """Forget warm-start thresholds (restores run-to-run determinism).

        The cache makes successive statistical queries history-dependent
        (all selections still honour the expectation α).  Callers that need
        identical results for identical inputs — e.g. the detector, once
        per candidate clip — reset it at the start of a run.
        """
        self._threshold_cache.clear()

    @property
    def curve(self):
        """The underlying :class:`~repro.hilbert.butz.HilbertCurve`."""
        return self.layout.curve

    @property
    def supports_coalesced_scans(self) -> bool:
        """Whether batched queries can merge overlapping section scans.

        True for this layout: the store is one contiguous curve-ordered
        array, so the union of many queries' sections is scannable in a
        single gather (see :mod:`repro.index.batch`).
        """
        return True

    @property
    def ndims(self) -> int:
        return self.store.ndims

    def __len__(self) -> int:
        return len(self.store)

    def _options_depth(
        self, depth: Optional[int], options: Optional["QueryOptions"]
    ) -> int:
        """Resolve a call's depth: explicit arg > options > index default."""
        if depth is not None:
            return depth
        if options is not None and options.depth is not None:
            return options.depth
        return self.depth

    def _check_depth(self, depth: int) -> None:
        if not 1 <= depth <= self.layout.max_depth:
            raise ConfigurationError(
                f"depth must be in [1, {self.layout.max_depth}], got {depth}"
            )

    def _resolve_model(
        self, model: Optional[IndependentDistortionModel]
    ) -> IndependentDistortionModel:
        resolved = model if model is not None else self.model
        if resolved is None:
            raise ConfigurationError(
                "no distortion model: pass `model=` or set a default on the index"
            )
        if resolved.ndims != self.ndims:
            raise ConfigurationError(
                f"model dimension {resolved.ndims} != index dimension {self.ndims}"
            )
        return resolved

    # ------------------------------------------------------------------
    def statistical_query(
        self,
        query: np.ndarray,
        alpha: float,
        model: Optional[IndependentDistortionModel] = None,
        depth: Optional[int] = None,
        exact_blocks: bool = False,
        options: Optional["QueryOptions"] = None,
    ) -> SearchResult:
        """Answer a statistical query of expectation *alpha* (paper §II).

        Returns **every fingerprint stored in the selected blocks**: the
        region ``V_α`` is exactly the union of the chosen p-blocks, so the
        refinement step is a pure scan with no distance test — that is the
        point of the paradigm (no intrinsic shape constraint).

        With ``exact_blocks=True`` the minimal set ``B^min_α`` is computed
        by best-first search instead of the threshold iteration (slower
        filtering, minimal refinement — the ablation of §IV-A).

        ``options`` (the unified :class:`~repro.index.options.QueryOptions`)
        supplies the depth default when ``depth`` is not given; its
        prefilter mode is a no-op here — a monolithic index has no
        segment tier to skip.
        """
        resolved = self._resolve_model(model)
        depth = self._options_depth(depth, options)
        self._check_depth(depth)

        t0 = time.perf_counter()
        if exact_blocks:
            selection = best_first_blocks(query, resolved, self.curve, depth, alpha)
        else:
            selection = statistical_blocks_cached(
                query, resolved, self.curve, depth, alpha,
                cache=self._threshold_cache,
            )
        t1 = time.perf_counter()
        result = self._scan_blocks(selection)
        result.stats.filter_seconds = t1 - t0
        result.stats.nodes_visited = selection.nodes_visited
        result.stats.descents = selection.descents
        return result

    def statistical_query_batch(
        self,
        queries: np.ndarray,
        alpha: float,
        model: Optional[IndependentDistortionModel] = None,
        depth: Optional[int] = None,
        workers: int = 1,
        options: Optional["QueryOptions"] = None,
    ) -> list[SearchResult]:
        """Answer a batch of statistical queries in one engine pass.

        One shared block-selection descent for the whole ``(B, D)`` query
        matrix, one coalesced scan of the union of the selected curve
        sections, then demultiplexing — see :mod:`repro.index.batch`.
        Each returned result is bit-identical to
        :meth:`statistical_query` on that query from the same warm-start
        cache state; the cache itself is read and written once per batch.
        """
        from .batch import query_batch_monolithic

        if options is not None:
            depth = depth if depth is not None else options.depth
        results, _ = query_batch_monolithic(
            self, queries, alpha, model=model, depth=depth, workers=workers
        )
        return results

    def range_query(
        self,
        query: np.ndarray,
        epsilon: float,
        depth: Optional[int] = None,
        options: Optional["QueryOptions"] = None,
    ) -> SearchResult:
        """Answer a classical spherical ε-range query (baseline of §V-A).

        Geometric filtering (blocks the sphere intersects) followed by an
        exact distance test during refinement.
        """
        depth = self._options_depth(depth, options)
        self._check_depth(depth)

        t0 = time.perf_counter()
        selection = range_blocks(query, epsilon, self.curve, depth)
        t1 = time.perf_counter()
        result = self._scan_blocks(selection)
        # Exact refinement in the integer domain (repro.index.kernels):
        # no float64 copy of the gathered rows, identical distances.
        t2 = time.perf_counter()
        if len(result):
            keep, distances = range_refine(
                result.fingerprints, query, epsilon
            )
            result = SearchResult(
                rows=result.rows[keep],
                ids=result.ids[keep],
                timecodes=result.timecodes[keep],
                fingerprints=result.fingerprints[keep],
                distances=distances,
                stats=result.stats,
            )
        t3 = time.perf_counter()
        result.stats.filter_seconds = t1 - t0
        result.stats.refine_seconds += t3 - t2
        result.stats.results = len(result)
        result.stats.nodes_visited = selection.nodes_visited
        result.stats.descents = selection.descents
        return result

    def window_query(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        depth: Optional[int] = None,
    ) -> SearchResult:
        """Answer a hyper-rectangular window query ``[lo, hi)``.

        The classical query type of Lawder's Hilbert indexing (paper §IV):
        geometric block filtering followed by exact membership refinement.
        """
        depth = self.depth if depth is None else depth
        self._check_depth(depth)

        t0 = time.perf_counter()
        selection = window_blocks(lo, hi, self.curve, depth)
        t1 = time.perf_counter()
        result = self._scan_blocks(selection)
        t2 = time.perf_counter()
        if len(result):
            keep = window_refine(result.fingerprints, lo, hi)
            result = SearchResult(
                rows=result.rows[keep],
                ids=result.ids[keep],
                timecodes=result.timecodes[keep],
                fingerprints=result.fingerprints[keep],
                stats=result.stats,
            )
        t3 = time.perf_counter()
        result.stats.filter_seconds = t1 - t0
        result.stats.refine_seconds += t3 - t2
        result.stats.results = len(result)
        result.stats.nodes_visited = selection.nodes_visited
        result.stats.descents = selection.descents
        return result

    # ------------------------------------------------------------------
    def block_selection(
        self,
        query: np.ndarray,
        alpha: float,
        model: Optional[IndependentDistortionModel] = None,
        depth: Optional[int] = None,
    ) -> BlockSelection:
        """Run only the statistical filtering step (used by pseudo-disk)."""
        resolved = self._resolve_model(model)
        depth = self.depth if depth is None else depth
        self._check_depth(depth)
        return statistical_blocks(query, resolved, self.curve, depth, alpha)

    def row_ranges(self, selection: BlockSelection) -> list[tuple[int, int]]:
        """Merged row ranges ("curve sections") covering *selection*."""
        return self.layout.block_row_ranges(selection.prefixes, selection.depth)

    def _scan_blocks(self, selection: BlockSelection) -> SearchResult:
        t0 = time.perf_counter()
        ranges = self.row_ranges(selection)
        rows = self.layout.gather_rows(ranges)
        result = SearchResult(
            rows=rows,
            ids=self.store.ids[rows],
            timecodes=self.store.timecodes[rows],
            fingerprints=self.store.fingerprints[rows],
        )
        t1 = time.perf_counter()
        result.stats.blocks_selected = len(selection)
        result.stats.sections_scanned = len(ranges)
        result.stats.rows_scanned = int(rows.size)
        result.stats.results = len(result)
        result.stats.refine_seconds = t1 - t0
        return result

    def extended(self, additions: FingerprintStore) -> "S3Index":
        """Return a new index over this store plus *additions*.

        The S³ structure is static (paper §IV) — "no dynamic insertion or
        deletion are possible" — so growth happens by rebuild: concatenate
        and re-sort.  Geometry, depth and model carry over.
        """
        merged = FingerprintStore.concatenate([self.store, additions])
        return S3Index(
            merged,
            order=self.order,
            key_levels=self.key_levels,
            depth=self.depth,
            model=self.model,
        )

    # ------------------------------------------------------------------
    def save(self, prefix: PathLike) -> None:
        """Persist the index: ``<prefix>.store`` + ``<prefix>.meta.json``.

        The store is saved in curve order; keys are recomputed on load
        (deterministic), so no key file is needed.
        """
        prefix = Path(prefix)
        self.store.save(prefix.with_suffix(".store"))
        meta = {
            "order": self.order,
            "key_levels": self.key_levels,
            "depth": self.depth,
            "sigma": getattr(self.model, "sigma", None),
        }
        prefix.with_suffix(".meta.json").write_text(json.dumps(meta))

    @classmethod
    def load(cls, prefix: PathLike, mmap: bool = False) -> "S3Index":
        """Load an index saved by :meth:`save`.

        With ``mmap=True`` the store columns are memory-mapped read-only;
        since :meth:`save` writes in curve order, the index keeps the
        mapped store as-is (zero-copy) — the file-backed half of the
        process-parallel scan path (see :mod:`repro.index.parallel`).
        """
        prefix = Path(prefix)
        meta = json.loads(prefix.with_suffix(".meta.json").read_text())
        store = FingerprintStore.load(prefix.with_suffix(".store"), mmap=mmap)
        model = None
        if meta.get("sigma") is not None:
            model = NormalDistortionModel(store.ndims, meta["sigma"])
        return cls(
            store,
            order=meta["order"],
            key_levels=meta["key_levels"],
            depth=meta["depth"],
            model=model,
        )
