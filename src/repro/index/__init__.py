"""The S³ index structure and its baselines (paper §IV).

* :class:`~repro.index.s3.S3Index` — the paper's contribution: a static,
  Hilbert-curve-ordered fingerprint database answering statistical queries
  (probabilistic block filtering + sequential refinement) and classical
  ε-range queries on the same structure;
* :class:`~repro.index.seqscan.SequentialScanIndex` — the brute-force
  baseline of §V-B;
* :class:`~repro.index.pseudodisk.PseudoDiskSearcher` — the batched,
  section-loading strategy for stores larger than memory (§IV-B);
* :mod:`~repro.index.tuning` — the start-of-retrieval learning of the
  optimal partition depth ``p_min`` (§IV-A);
* :mod:`~repro.index.segmented` — the live LSM-style extension:
  WAL-backed online ingestion, sealed Hilbert segments and background
  compaction (the §V-D operational setting).

Every index front-end accepts the unified
:class:`~repro.index.options.QueryOptions` (``options=``) and satisfies
:class:`IndexProtocol`, the minimal structural contract the detection
and serving layers program against.  ``SeqScanIndex`` and
``VAFileIndex`` are the protocol-era names of the two baselines
(aliases of :class:`SequentialScanIndex` / :class:`VAFile`).
"""

from typing import Protocol, runtime_checkable

import numpy as np

from .batch import (
    BatchQueryExecutor,
    BatchQueryStats,
    coalesce_ranges,
    query_batch_monolithic,
    query_batch_segmented,
)
from .diagnostics import (
    ClusteringSummary,
    OccupancySummary,
    block_occupancy,
    clustering_summary,
    occupancy_summary,
)
from .filtering import (
    BlockSelection,
    best_first_blocks,
    grid_probability,
    range_blocks,
    select_blocks_threshold,
    select_blocks_threshold_multi,
    statistical_blocks,
    statistical_blocks_batch_cached,
    statistical_blocks_cached,
    statistical_blocks_multi,
    threshold_cache_key,
    window_blocks,
)
from .knn import knn_query
from .options import (
    DURABILITY_MODES,
    EXECUTOR_STRATEGIES,
    PREFILTER_MODES,
    QueryOptions,
    resolve_options,
    validate_durability,
)
from .pseudodisk import BatchStats, PseudoDiskSearcher, auto_batch_size
from .s3 import QueryStats, S3Index, SearchResult
from .segmented import (
    CompactionPolicy,
    CompactionResult,
    SegmentedQueryStats,
    SegmentedS3Index,
    SegmentSketch,
    SketchConfig,
)
from .seqscan import SequentialScanIndex
from .store import FingerprintStore, StoreBuilder
from .table import HilbertLayout
from .tuning import DepthProfile, profile_depths, tune_depth
from .vafile import VAFile

#: Protocol-era aliases of the baseline index classes.
SeqScanIndex = SequentialScanIndex
VAFileIndex = VAFile


@runtime_checkable
class IndexProtocol(Protocol):
    """The structural contract every index front-end satisfies.

    The detection and serving layers only need this much: a sized,
    dimensioned collection answering exact ε-range queries with the
    unified ``options=`` keyword, and declaring whether its physical
    layout supports coalesced batched scans.  ``S3Index``,
    ``SegmentedS3Index``, ``SeqScanIndex`` and ``VAFileIndex`` all
    conform (checked in ``tests/index/test_options.py``); statistical
    queries remain specific to the S³ structures, which is why they are
    not part of the minimal protocol.
    """

    def __len__(self) -> int: ...

    @property
    def ndims(self) -> int: ...

    @property
    def supports_coalesced_scans(self) -> bool: ...

    def range_query(
        self,
        query: np.ndarray,
        epsilon: float,
        *args,
        options: "QueryOptions | None" = None,
        **kwargs,
    ) -> SearchResult: ...


__all__ = [
    "BatchQueryExecutor",
    "BatchQueryStats",
    "BatchStats",
    "BlockSelection",
    "ClusteringSummary",
    "CompactionPolicy",
    "CompactionResult",
    "DURABILITY_MODES",
    "DepthProfile",
    "EXECUTOR_STRATEGIES",
    "FingerprintStore",
    "HilbertLayout",
    "IndexProtocol",
    "OccupancySummary",
    "PREFILTER_MODES",
    "PseudoDiskSearcher",
    "QueryOptions",
    "QueryStats",
    "S3Index",
    "SearchResult",
    "SegmentSketch",
    "SegmentedQueryStats",
    "SegmentedS3Index",
    "SeqScanIndex",
    "SequentialScanIndex",
    "SketchConfig",
    "StoreBuilder",
    "VAFile",
    "VAFileIndex",
    "auto_batch_size",
    "best_first_blocks",
    "block_occupancy",
    "clustering_summary",
    "coalesce_ranges",
    "grid_probability",
    "knn_query",
    "occupancy_summary",
    "profile_depths",
    "query_batch_monolithic",
    "query_batch_segmented",
    "range_blocks",
    "resolve_options",
    "select_blocks_threshold",
    "select_blocks_threshold_multi",
    "statistical_blocks",
    "statistical_blocks_batch_cached",
    "statistical_blocks_cached",
    "statistical_blocks_multi",
    "threshold_cache_key",
    "validate_durability",
    "window_blocks",
    "tune_depth",
]
