"""The S³ index structure and its baselines (paper §IV).

* :class:`~repro.index.s3.S3Index` — the paper's contribution: a static,
  Hilbert-curve-ordered fingerprint database answering statistical queries
  (probabilistic block filtering + sequential refinement) and classical
  ε-range queries on the same structure;
* :class:`~repro.index.seqscan.SequentialScanIndex` — the brute-force
  baseline of §V-B;
* :class:`~repro.index.pseudodisk.PseudoDiskSearcher` — the batched,
  section-loading strategy for stores larger than memory (§IV-B);
* :mod:`~repro.index.tuning` — the start-of-retrieval learning of the
  optimal partition depth ``p_min`` (§IV-A);
* :mod:`~repro.index.segmented` — the live LSM-style extension:
  WAL-backed online ingestion, sealed Hilbert segments and background
  compaction (the §V-D operational setting).
"""

from .batch import (
    BatchQueryExecutor,
    BatchQueryStats,
    coalesce_ranges,
    query_batch_monolithic,
    query_batch_segmented,
)
from .diagnostics import (
    ClusteringSummary,
    OccupancySummary,
    block_occupancy,
    clustering_summary,
    occupancy_summary,
)
from .filtering import (
    BlockSelection,
    best_first_blocks,
    grid_probability,
    range_blocks,
    select_blocks_threshold,
    select_blocks_threshold_multi,
    statistical_blocks,
    statistical_blocks_batch_cached,
    statistical_blocks_cached,
    statistical_blocks_multi,
    threshold_cache_key,
    window_blocks,
)
from .knn import knn_query
from .pseudodisk import BatchStats, PseudoDiskSearcher, auto_batch_size
from .s3 import QueryStats, S3Index, SearchResult
from .segmented import (
    CompactionPolicy,
    CompactionResult,
    SegmentedQueryStats,
    SegmentedS3Index,
)
from .seqscan import SequentialScanIndex
from .store import FingerprintStore, StoreBuilder
from .table import HilbertLayout
from .tuning import DepthProfile, profile_depths, tune_depth
from .vafile import VAFile

__all__ = [
    "BatchQueryExecutor",
    "BatchQueryStats",
    "BatchStats",
    "BlockSelection",
    "ClusteringSummary",
    "CompactionPolicy",
    "CompactionResult",
    "DepthProfile",
    "FingerprintStore",
    "HilbertLayout",
    "OccupancySummary",
    "PseudoDiskSearcher",
    "QueryStats",
    "S3Index",
    "SearchResult",
    "SegmentedQueryStats",
    "SegmentedS3Index",
    "SequentialScanIndex",
    "StoreBuilder",
    "VAFile",
    "auto_batch_size",
    "best_first_blocks",
    "block_occupancy",
    "clustering_summary",
    "coalesce_ranges",
    "grid_probability",
    "knn_query",
    "occupancy_summary",
    "profile_depths",
    "query_batch_monolithic",
    "query_batch_segmented",
    "range_blocks",
    "select_blocks_threshold",
    "select_blocks_threshold_multi",
    "statistical_blocks",
    "statistical_blocks_batch_cached",
    "statistical_blocks_cached",
    "statistical_blocks_multi",
    "threshold_cache_key",
    "window_blocks",
    "tune_depth",
]
