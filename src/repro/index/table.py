"""Physical layout of the fingerprint database along the Hilbert curve.

The S³ index stores the database *physically ordered by curve position*
(paper §IV): once the filtering step has selected a set of p-blocks, each
block is a contiguous row range, located with two binary searches in the
sorted key column — the paper's "simple index table".  The Hilbert curve's
clustering property keeps the number of distinct ranges ("curve sections")
small, which is what bounds the memory-access dispersion of the refinement
step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..hilbert.butz import HilbertCurve
from ..hilbert.vectorized import encode_batch


@dataclass
class HilbertLayout:
    """Sorted-key layout of a fingerprint column along the Hilbert curve.

    Attributes
    ----------
    curve:
        The Hilbert curve the keys belong to.
    key_levels:
        Number of curve levels resolved by the keys; keys hold the top
        ``key_levels * D`` bits of the curve position.
    keys:
        ``(N,)`` ``uint64`` sorted truncated curve keys.
    permutation:
        ``(N,)`` row permutation that sorted the original store
        (``sorted_column = original_column[permutation]``).
    """

    curve: HilbertCurve
    key_levels: int
    keys: np.ndarray
    permutation: np.ndarray

    @property
    def key_bits(self) -> int:
        """Number of significant bits in each key."""
        return self.key_levels * self.curve.ndims

    @property
    def max_depth(self) -> int:
        """Deepest partition the keys can resolve block ranges for."""
        return self.key_bits

    @classmethod
    def build(
        cls,
        fingerprints: np.ndarray,
        order: int = 8,
        key_levels: int = 2,
    ) -> "HilbertLayout":
        """Compute keys for *fingerprints* and the sorting permutation.

        *fingerprints* is the ``(N, D)`` byte array of an (unsorted) store;
        the caller reorders its columns with :attr:`permutation`.
        """
        fingerprints = np.asarray(fingerprints)
        if fingerprints.ndim != 2:
            raise ConfigurationError(
                f"fingerprints must be 2-D, got shape {fingerprints.shape}"
            )
        curve = HilbertCurve(fingerprints.shape[1], order)
        keys = encode_batch(fingerprints, order, key_levels)
        permutation = np.argsort(keys, kind="stable")
        return cls(
            curve=curve,
            key_levels=key_levels,
            keys=keys[permutation],
            permutation=permutation,
        )

    # ------------------------------------------------------------------
    def block_key_interval(self, prefix: int, depth: int) -> tuple[int, int]:
        """Return the half-open key interval of block *prefix* at *depth*."""
        if depth > self.key_bits:
            raise ConfigurationError(
                f"depth {depth} exceeds key resolution {self.key_bits}"
            )
        shift = self.key_bits - depth
        return int(prefix) << shift, (int(prefix) + 1) << shift

    def block_row_ranges(
        self, prefixes: np.ndarray, depth: int
    ) -> list[tuple[int, int]]:
        """Return merged contiguous row ranges covering the given blocks.

        *prefixes* must be sorted in curve order (as produced by the
        filtering step).  Blocks adjacent on the curve merge into a single
        section — the Hilbert clustering property at work.
        """
        if depth > self.key_bits:
            raise ConfigurationError(
                f"depth {depth} exceeds key resolution {self.key_bits}"
            )
        if len(prefixes) == 0:
            return []
        prefixes = np.asarray(prefixes, dtype=np.uint64)
        shift = np.uint64(self.key_bits - depth)
        lo_keys = prefixes << shift
        hi_keys = (prefixes + np.uint64(1)) << shift
        # (prefix + 1) << shift overflows to 0 only for the very last block
        # of the partition when key_bits == 64; keys never reach 2^64 - 1
        # in that configuration because depth <= 64 is enforced upstream,
        # so map the wrapped 0 to the maximum sentinel.
        starts = np.searchsorted(self.keys, lo_keys, side="left")
        ends = np.empty_like(starts)
        wrapped = hi_keys == 0
        ends[~wrapped] = np.searchsorted(self.keys, hi_keys[~wrapped], side="left")
        ends[wrapped] = self.keys.size

        ranges: list[tuple[int, int]] = []
        for s, e in zip(starts.tolist(), ends.tolist()):
            if s >= e:
                continue
            if ranges and s <= ranges[-1][1]:
                ranges[-1] = (ranges[-1][0], max(e, ranges[-1][1]))
            else:
                ranges.append((s, e))
        return ranges

    def gather_rows(self, ranges: list[tuple[int, int]]) -> np.ndarray:
        """Return the row indices covered by *ranges*, in curve order."""
        if not ranges:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(
            [np.arange(s, e, dtype=np.int64) for s, e in ranges]
        )

    # ------------------------------------------------------------------
    def curve_sections(self, r: int) -> list[tuple[int, int]]:
        """Split the curve into ``2^r`` regular sections (pseudo-disk, §IV-B).

        Returns the row range of each section; sections can be empty.
        """
        if not 0 <= r <= self.key_bits:
            raise ConfigurationError(
                f"r must be in [0, {self.key_bits}], got {r}"
            )
        num = 1 << r
        shift = self.key_bits - r
        bounds = [np.uint64(i) << np.uint64(shift) for i in range(num)]
        starts = np.searchsorted(self.keys, np.array(bounds, dtype=np.uint64))
        starts = np.append(starts, self.keys.size)
        return [(int(starts[i]), int(starts[i + 1])) for i in range(num)]

    def section_split_for_memory(self, max_rows: int) -> int:
        """Return the smallest ``r`` whose fullest section fits *max_rows*.

        Paper §IV-B: "the Hilbert's curve is split in 2^r regular sections,
        such that the most filled section fits in memory".
        """
        if max_rows < 1:
            raise ConfigurationError(f"max_rows must be >= 1, got {max_rows}")
        for r in range(0, self.key_bits + 1):
            sections = self.curve_sections(r)
            fullest = max(e - s for s, e in sections)
            if fullest <= max_rows:
                return r
        raise ConfigurationError(
            f"even single-key sections exceed max_rows={max_rows}; "
            "duplicate keys outnumber the memory budget"
        )
