"""Integer-domain distance kernels for the refinement scans.

Fingerprints are bytes; the refinement step of every query path used to
cast each gathered row block to ``float64`` (an 8x blow-up of the scan's
working set) before computing ``‖x − q‖²``.  These kernels keep the scan
in the integer domain instead: the ``uint8`` rows are widened to
``int32`` **once per gather**, the squared distance is expanded as

    ‖x − q‖² = ‖x‖² − 2·x·q + ‖q‖²

with ``‖x‖²`` and ``x·q`` accumulated in ``int64`` (exact — no rounding
anywhere) and the query norm precomputed once per query.  Distances are
still *reported* as ``float64``: every intermediate is an integer far
below 2⁵³, so the float conversion is exact and the results are
**bit-identical** to the old float64 pipeline (property-tested in
``tests/index/test_kernels.py``).

Queries that are not integer-valued (the wire accepts arbitrary floats)
fall back to the original float64 computation, term for term, so those
results are bit-identical too.

Every full-scan refinement routes through here: ``S3Index.range_query``
/ ``window_query``, the segmented fan-out and memtable, the sequential
scan and VA-file baselines, and the corpus filler's resampling
perturbation.
"""

from __future__ import annotations

import numpy as np

#: Largest query-component magnitude the integer path accepts.  Beyond
#: this, ``x·q`` could stray outside the exactly-representable float64
#: integers once summed over many dimensions; such queries (never
#: produced by the fingerprint pipeline, whose components live in
#: ``[0, 255]``) take the float fallback.
INTEGER_QUERY_LIMIT = float(1 << 20)


def is_integer_query(query: np.ndarray) -> bool:
    """Whether *query* is exactly representable in the integer domain."""
    q = np.asarray(query, dtype=np.float64)
    if not np.all(np.isfinite(q)):
        return False
    return bool(
        np.all(q == np.floor(q)) and np.all(np.abs(q) <= INTEGER_QUERY_LIMIT)
    )


def widen_rows(rows: np.ndarray) -> np.ndarray:
    """Widen gathered ``uint8`` rows to ``int32`` (the once-per-gather cast).

    A 4x working set instead of the float path's 8x; reusable across
    several queries of a batch scanning the same gather.
    """
    return np.ascontiguousarray(rows, dtype=np.int32)


def squared_distances(
    rows: np.ndarray,
    query: np.ndarray,
    widened: np.ndarray | None = None,
) -> np.ndarray:
    """Exact per-row ``‖x − q‖²`` of byte *rows* to *query*, as ``float64``.

    *widened* optionally supplies :func:`widen_rows`'s output so callers
    refining several queries against one gather widen only once.
    """
    q = np.asarray(query, dtype=np.float64).ravel()
    if is_integer_query(q):
        xi = widened if widened is not None else widen_rows(rows)
        qi = np.rint(q).astype(np.int64)
        x_sq = np.einsum("ij,ij->i", xi, xi, dtype=np.int64)
        cross = xi @ qi
        q_sq = int(qi @ qi)
        return (x_sq - 2 * cross + q_sq).astype(np.float64)
    # Non-integer query: reproduce the historical float64 pipeline so
    # results stay bit-identical for every input.
    diffs = np.asarray(rows).astype(np.float64) - q
    return np.einsum("ij,ij->i", diffs, diffs)


def range_refine(
    rows: np.ndarray,
    query: np.ndarray,
    epsilon: float,
    widened: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """ε-range refinement: ``(keep mask, distances of the kept rows)``."""
    dist_sq = squared_distances(rows, query, widened)
    keep = dist_sq <= float(epsilon) ** 2
    return keep, np.sqrt(dist_sq[keep])


def window_refine(
    rows: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
) -> np.ndarray:
    """Membership mask of byte *rows* in the half-open window ``[lo, hi)``.

    The comparisons run directly on the ``uint8`` rows — numpy's mixed
    uint8/float comparison is exact, so the mask equals the old
    cast-to-float path's without materialising a float copy.
    """
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    return np.all((rows >= lo) & (rows < hi), axis=1)


def clip_round_u8(values: np.ndarray) -> np.ndarray:
    """Round *values* half-to-even, clip to ``[0, 255]``, cast to ``uint8``.

    The corpus filler's perturbation epilogue, done in place on the float
    jitter buffer instead of on a second full-size copy.
    """
    values = np.asarray(values, dtype=np.float64)
    np.round(values, out=values)
    np.clip(values, 0.0, 255.0, out=values)
    return values.astype(np.uint8)
