"""Block selection: the filtering step of the S³ index (paper §IV-A).

Given a candidate fingerprint ``Q``, the filtering step selects a set of
p-blocks of the Hilbert partition.  Three selectors are provided:

* :func:`select_blocks_threshold` — one descent of the partition tree
  keeping every depth-``p`` block whose probability under the distortion
  model exceeds a threshold ``t`` (the paper's set ``B(t)``); sub-trees are
  pruned as soon as their box probability falls to ``t`` or below, which is
  sound because a box's probability upper-bounds every descendant's.
* :func:`statistical_blocks` — the statistical query of expectation α:
  searches the largest ``t_max`` with ``P_sup(t_max) >= α`` (eq. (4)) by a
  bracketing iteration in the spirit of the paper's "method inspired by
  Newton-Raphson", then returns ``B(t_max)``.
* :func:`best_first_blocks` — the *exact* minimal set ``B^min_α``: blocks
  emitted in non-increasing probability until the cumulative mass reaches
  α.  Costlier (priority queue, scalar); used as the optimality reference
  in the ablation benchmarks.

For the ε-range baseline, :func:`range_blocks` runs the same descent with
the probabilistic rule replaced by the geometric one (keep blocks whose
minimal distance to ``Q`` is at most ε) — the classical filtering the paper
compares against.

The descent is level-synchronous and numpy-vectorised: the frontier of
surviving nodes is held in flat arrays (Hamilton state, box bounds,
per-dimension CDF values) and both children of every node are produced by
one batched step.  The geometry matches
:class:`repro.hilbert.partition.PartitionNode` bit for bit (cross-checked in
the tests).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..distortion.model import IndependentDistortionModel
from ..errors import ConfigurationError
from ..hilbert.butz import HilbertCurve
from ..hilbert.partition import PartitionNode
from ..hilbert.vectorized import update_state_batch

_U64 = np.uint64


@dataclass
class BlockSelection:
    """Outcome of a filtering step.

    Attributes
    ----------
    prefixes:
        ``uint64`` curve prefixes of the selected depth-``p`` blocks, sorted
        in curve order.
    probabilities:
        Probability mass of each selected block under the distortion model
        (zeros for geometric range filtering).
    depth:
        The partition depth ``p`` the selection was computed at.
    threshold:
        Final probability threshold ``t`` (``nan`` for geometric filtering).
    total_probability:
        ``P_sup(t)`` — the cumulative mass of the selection.
    nodes_visited:
        Number of tree nodes expanded across all descents (filtering cost).
    descents:
        Number of full tree descents performed (1 unless the threshold had
        to be searched).
    """

    prefixes: np.ndarray
    probabilities: np.ndarray
    depth: int
    threshold: float
    total_probability: float
    nodes_visited: int
    descents: int = 1

    def __len__(self) -> int:
        return int(self.prefixes.size)


@dataclass
class _Frontier:
    """Mutable node-array state of one vectorised descent."""

    entry: np.ndarray
    direction: np.ndarray
    partial_w: np.ndarray
    prefix: np.ndarray
    lo: np.ndarray
    hi: np.ndarray
    extra: dict[str, np.ndarray] = field(default_factory=dict)


def _root_frontier(curve: HilbertCurve) -> _Frontier:
    n = curve.ndims
    return _Frontier(
        entry=np.zeros(1, dtype=_U64),
        direction=np.zeros(1, dtype=_U64),
        partial_w=np.zeros(1, dtype=_U64),
        prefix=np.zeros(1, dtype=_U64),
        lo=np.zeros((1, n), dtype=np.float64),
        hi=np.full((1, n), float(curve.side), dtype=np.float64),
    )


def _split_geometry(
    fr: _Frontier, curve: HilbertCurve, depth: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Return ``(dims, mid, value_child0, rows)`` for the next split.

    Mirrors :meth:`PartitionNode.split_info` on the whole frontier: *dims*
    is the dimension each node splits, *mid* the split coordinate and
    *value_child0* whether curve-child 0 takes the lower (0) or upper (1)
    half.
    """
    n = curve.ndims
    q = depth % n
    dims = ((_U64(n - q) + fr.direction) % _U64(n)).astype(np.int64)
    rows = np.arange(dims.size)
    mid = 0.5 * (fr.lo[rows, dims] + fr.hi[rows, dims])
    if q > 0:
        prev_w_bit = fr.partial_w & _U64(1)
    else:
        prev_w_bit = np.zeros(dims.size, dtype=_U64)
    e_bit = (fr.entry >> dims.astype(_U64)) & _U64(1)
    value_child0 = (prev_w_bit ^ e_bit).astype(np.int64)
    return dims, mid, value_child0, rows


def _advance(
    fr: _Frontier,
    curve: HilbertCurve,
    depth: int,
    dims: np.ndarray,
    mid: np.ndarray,
    value_child0: np.ndarray,
    keep0: np.ndarray,
    keep1: np.ndarray,
) -> _Frontier:
    """Materialise the surviving children of the frontier.

    ``keep0`` / ``keep1`` select which lower-half / upper-half children
    survive pruning.  Returns the next frontier (curve order is *not*
    preserved here; selections are sorted at the end).
    """
    n = curve.ndims
    q = depth % n

    parts = []
    for value, keep in ((0, keep0), (1, keep1)):
        idx = np.nonzero(keep)[0]
        if idx.size == 0:
            continue
        b = (np.int64(value) ^ value_child0[idx]).astype(_U64)
        lo = fr.lo[idx].copy()
        hi = fr.hi[idx].copy()
        if value == 0:
            hi[np.arange(idx.size), dims[idx]] = mid[idx]
        else:
            lo[np.arange(idx.size), dims[idx]] = mid[idx]
        part = _Frontier(
            entry=fr.entry[idx],
            direction=fr.direction[idx],
            partial_w=(fr.partial_w[idx] << _U64(1)) | b,
            prefix=(fr.prefix[idx] << _U64(1)) | b,
            lo=lo,
            hi=hi,
            extra={k: v[idx] for k, v in fr.extra.items()},
        )
        parts.append((value, idx, part))

    if not parts:
        out = _Frontier(
            entry=np.empty(0, dtype=_U64),
            direction=np.empty(0, dtype=_U64),
            partial_w=np.empty(0, dtype=_U64),
            prefix=np.empty(0, dtype=_U64),
            lo=np.empty((0, n)),
            hi=np.empty((0, n)),
            extra={k: v[:0] for k, v in fr.extra.items()},
        )
    else:
        out = _Frontier(
            entry=np.concatenate([p.entry for _, _, p in parts]),
            direction=np.concatenate([p.direction for _, _, p in parts]),
            partial_w=np.concatenate([p.partial_w for _, _, p in parts]),
            prefix=np.concatenate([p.prefix for _, _, p in parts]),
            lo=np.concatenate([p.lo for _, _, p in parts]),
            hi=np.concatenate([p.hi for _, _, p in parts]),
            extra={
                k: np.concatenate([p.extra[k] for _, _, p in parts])
                for k in fr.extra
            },
        )

    if q + 1 == n and out.prefix.size:
        out.entry, out.direction = update_state_batch(
            out.entry, out.direction, out.partial_w, n
        )
        out.partial_w = np.zeros_like(out.partial_w)
    return out


def select_blocks_threshold(
    query: np.ndarray,
    model: IndependentDistortionModel,
    curve: HilbertCurve,
    depth: int,
    threshold: float,
) -> BlockSelection:
    """Return the paper's ``B(t)``: depth-``p`` blocks with probability > t.

    One vectorised descent; a sub-tree is pruned as soon as its box
    probability drops to *threshold* or below.
    """
    query = _check_query(query, curve)
    if not 0.0 < threshold < 1.0:
        raise ConfigurationError(f"threshold must be in (0, 1), got {threshold}")
    _check_depth(depth, curve)

    n = curve.ndims
    fr = _root_frontier(curve)
    dims_all = np.arange(n)
    philo = model.cdf_multi(
        np.broadcast_to(dims_all, (1, n)), fr.lo - query[None, :]
    )
    phihi = model.cdf_multi(
        np.broadcast_to(dims_all, (1, n)), fr.hi - query[None, :]
    )
    fr.extra["philo"] = philo
    fr.extra["phihi"] = phihi
    fr.extra["prob"] = np.prod(phihi - philo, axis=1)

    nodes = 0
    for d in range(depth):
        m = fr.prefix.size
        if m == 0:
            break
        nodes += m
        dims, mid, v0, rows = _split_geometry(fr, curve, d)
        phimid = model.cdf_multi(dims, mid - query[dims])
        philo_j = fr.extra["philo"][rows, dims]
        phihi_j = fr.extra["phihi"][rows, dims]
        old = phihi_j - philo_j
        prob = fr.extra["prob"]
        with np.errstate(invalid="ignore", divide="ignore"):
            prob_low = np.where(old > 0, prob * (phimid - philo_j) / old, 0.0)
            prob_high = np.where(old > 0, prob * (phihi_j - phimid) / old, 0.0)
        keep0 = prob_low > threshold
        keep1 = prob_high > threshold

        # Stash child CDF values before _advance copies rows around.
        child_prob = {0: prob_low, 1: prob_high}
        nxt = _advance(fr, curve, d, dims, mid, v0, keep0, keep1)
        # Rebuild the per-child extras in the same concatenation order.
        extras_prob = []
        extras_philo = []
        extras_phihi = []
        for value, keep in ((0, keep0), (1, keep1)):
            idx = np.nonzero(keep)[0]
            if idx.size == 0:
                continue
            pl = fr.extra["philo"][idx].copy()
            ph = fr.extra["phihi"][idx].copy()
            if value == 0:
                ph[np.arange(idx.size), dims[idx]] = phimid[idx]
            else:
                pl[np.arange(idx.size), dims[idx]] = phimid[idx]
            extras_philo.append(pl)
            extras_phihi.append(ph)
            extras_prob.append(child_prob[value][idx])
        if extras_prob:
            nxt.extra["philo"] = np.concatenate(extras_philo)
            nxt.extra["phihi"] = np.concatenate(extras_phihi)
            nxt.extra["prob"] = np.concatenate(extras_prob)
        else:
            nxt.extra["philo"] = np.empty((0, n))
            nxt.extra["phihi"] = np.empty((0, n))
            nxt.extra["prob"] = np.empty(0)
        fr = nxt

    order = np.argsort(fr.prefix, kind="stable")
    probs = fr.extra.get("prob", np.empty(0))[order]
    return BlockSelection(
        prefixes=fr.prefix[order],
        probabilities=probs,
        depth=depth,
        threshold=threshold,
        total_probability=float(probs.sum()),
        nodes_visited=nodes,
    )


def statistical_blocks(
    query: np.ndarray,
    model: IndependentDistortionModel,
    curve: HilbertCurve,
    depth: int,
    alpha: float,
    initial_threshold: float | None = None,
    shrink: float = 0.25,
    refine_steps: int = 1,
    grow_steps: int = 2,
    max_descents: int = 40,
) -> BlockSelection:
    """Compute the statistical query block set of expectation *alpha*.

    Searches ``t_max`` of eq. (4): the largest threshold whose block set
    ``B(t)`` still carries probability mass at least *alpha*.  ``P_sup(t)``
    is monotone non-increasing in ``t``, so the search first shrinks ``t``
    geometrically (factor *shrink*) from *initial_threshold* until
    ``P_sup >= alpha``; if the very first probe succeeds with no failure
    bracket it instead *grows* ``t`` up to *grow_steps* times (so an
    over-generous start does not inflate the block set), and finally
    bisects *refine_steps* times inside whatever bracket exists to push
    ``t`` back up (fewer, higher-probability blocks).  Every probe is one
    full descent; probes are counted in ``descents`` / ``nodes_visited``.

    The expectation is conditioned on the referenced fingerprint lying in
    the byte grid: the distortion model leaks mass outside ``[0, 2^K)^D``
    where no fingerprint can exist, so the effective target is
    ``alpha * P(Q + ΔS ∈ grid)``.  Without this conditioning, queries near
    the grid boundary could make eq. (4) infeasible and degenerate into a
    full scan.
    """
    if not 0.0 < alpha < 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
    if not 0.0 < shrink < 1.0:
        raise ConfigurationError(f"shrink must be in (0, 1), got {shrink}")
    query = _check_query(query, curve)
    alpha_target = alpha * grid_probability(query, model, curve)
    t = initial_threshold if initial_threshold is not None else (1.0 - alpha) / 4.0
    t = min(max(t, 1e-12), 1.0 - 1e-12)

    nodes = 0
    descents = 0
    t_fail = None  # smallest t observed with P_sup < alpha_target
    best: BlockSelection | None = None
    while descents < max_descents:
        sel = select_blocks_threshold(query, model, curve, depth, t)
        descents += 1
        nodes += sel.nodes_visited
        if sel.total_probability >= alpha_target:
            best = sel
            break
        t_fail = t
        t *= shrink
        if t < 1e-12:
            best = sel  # cannot go lower; accept the closest achievable set
            break
    if best is None:  # pragma: no cover - max_descents is generous
        best = sel

    # A cold start can succeed immediately, leaving no failure bracket; try
    # growing t so an over-generous initial threshold does not inflate the
    # block set (larger t => fewer blocks).  Warm-started callers manage
    # this drift themselves and pass grow_steps=0.
    grow = 0
    while (
        t_fail is None
        and best.total_probability >= alpha_target
        and grow < grow_steps
        and descents < max_descents
        and best.threshold * 4.0 < 1.0
    ):
        t_up = best.threshold * 4.0
        sel = select_blocks_threshold(query, model, curve, depth, t_up)
        descents += 1
        nodes += sel.nodes_visited
        grow += 1
        if sel.total_probability >= alpha_target:
            best = sel
        else:
            t_fail = t_up

    if best.total_probability >= alpha_target and t_fail is not None:
        t_ok = best.threshold
        for _ in range(refine_steps):
            t_mid = 0.5 * (t_ok + t_fail)
            sel = select_blocks_threshold(query, model, curve, depth, t_mid)
            descents += 1
            nodes += sel.nodes_visited
            if sel.total_probability >= alpha_target:
                best = sel
                t_ok = t_mid
            else:
                t_fail = t_mid

    return BlockSelection(
        prefixes=best.prefixes,
        probabilities=best.probabilities,
        depth=depth,
        threshold=best.threshold,
        total_probability=best.total_probability,
        nodes_visited=nodes,
        descents=descents,
    )


def best_first_blocks(
    query: np.ndarray,
    model: IndependentDistortionModel,
    curve: HilbertCurve,
    depth: int,
    alpha: float,
    max_blocks: int = 1_000_000,
) -> BlockSelection:
    """Return the exact minimal block set ``B^min_α`` (ablation reference).

    Best-first expansion of the partition tree on box probability: leaves
    (depth-``p`` blocks) pop off the priority queue in non-increasing
    probability, so stopping when the cumulative mass reaches *alpha* yields
    the minimum-cardinality solution of eq. (3).  Like
    :func:`statistical_blocks`, the expectation is conditioned on the grid.
    """
    query = _check_query(query, curve)
    if not 0.0 < alpha < 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
    _check_depth(depth, curve)

    root = PartitionNode.root(curve)
    prob_root = model.box_probability(np.array(root.lo), np.array(root.hi), query)
    alpha_target = alpha * prob_root
    counter = 0
    heap = [(-prob_root, counter, root)]
    selected: list[tuple[int, float]] = []
    total = 0.0
    nodes = 0
    while heap and total < alpha_target and len(selected) < max_blocks:
        neg_prob, _, node = heapq.heappop(heap)
        prob = -neg_prob
        if prob <= 0.0:
            break
        if node.depth == depth:
            selected.append((node.prefix, prob))
            total += prob
            continue
        nodes += 1
        for child in node.children():
            child_prob = model.box_probability(
                np.array(child.lo, dtype=np.float64),
                np.array(child.hi, dtype=np.float64),
                query,
            )
            if child_prob > 0.0:
                counter += 1
                heapq.heappush(heap, (-child_prob, counter, child))

    selected.sort()
    prefixes = np.array([p for p, _ in selected], dtype=_U64)
    probs = np.array([pr for _, pr in selected], dtype=np.float64)
    return BlockSelection(
        prefixes=prefixes,
        probabilities=probs,
        depth=depth,
        threshold=float(probs.min()) if probs.size else float("nan"),
        total_probability=float(probs.sum()),
        nodes_visited=nodes,
    )


def range_blocks(
    query: np.ndarray,
    epsilon: float,
    curve: HilbertCurve,
    depth: int,
) -> BlockSelection:
    """Geometric filtering for an ε-range query (the classical baseline).

    Keeps every depth-``p`` block whose minimal L2 distance to *query* is at
    most *epsilon* — i.e. every block the query hyper-sphere intersects.
    """
    query = _check_query(query, curve)
    if epsilon < 0:
        raise ConfigurationError(f"epsilon must be >= 0, got {epsilon}")
    _check_depth(depth, curve)

    n = curve.ndims
    fr = _root_frontier(curve)
    gap = np.maximum(fr.lo - query[None, :], 0.0) ** 2 + np.maximum(
        query[None, :] - fr.hi, 0.0
    ) ** 2
    fr.extra["contrib"] = gap
    fr.extra["sumsq"] = gap.sum(axis=1)
    eps_sq = float(epsilon) ** 2

    nodes = 0
    for d in range(depth):
        m = fr.prefix.size
        if m == 0:
            break
        nodes += m
        dims, mid, v0, rows = _split_geometry(fr, curve, d)
        qj = query[dims]
        contrib_old = fr.extra["contrib"][rows, dims]
        sumsq = fr.extra["sumsq"]
        # Lower child: box [lo, mid); upper child: box [mid, hi).
        contrib_low = np.maximum(qj - mid, 0.0) ** 2 + np.maximum(
            fr.lo[rows, dims] - qj, 0.0
        ) ** 2
        contrib_high = np.maximum(mid - qj, 0.0) ** 2 + np.maximum(
            qj - fr.hi[rows, dims], 0.0
        ) ** 2
        sumsq_low = sumsq - contrib_old + contrib_low
        sumsq_high = sumsq - contrib_old + contrib_high
        keep0 = sumsq_low <= eps_sq
        keep1 = sumsq_high <= eps_sq

        child_sumsq = {0: sumsq_low, 1: sumsq_high}
        child_contrib = {0: contrib_low, 1: contrib_high}
        nxt = _advance(fr, curve, d, dims, mid, v0, keep0, keep1)
        sq_parts = []
        contrib_parts = []
        for value, keep in ((0, keep0), (1, keep1)):
            idx = np.nonzero(keep)[0]
            if idx.size == 0:
                continue
            c = fr.extra["contrib"][idx].copy()
            c[np.arange(idx.size), dims[idx]] = child_contrib[value][idx]
            contrib_parts.append(c)
            sq_parts.append(child_sumsq[value][idx])
        if sq_parts:
            nxt.extra["sumsq"] = np.concatenate(sq_parts)
            nxt.extra["contrib"] = np.concatenate(contrib_parts)
        else:
            nxt.extra["sumsq"] = np.empty(0)
            nxt.extra["contrib"] = np.empty((0, n))
        fr = nxt

    order = np.argsort(fr.prefix, kind="stable")
    return BlockSelection(
        prefixes=fr.prefix[order],
        probabilities=np.zeros(fr.prefix.size),
        depth=depth,
        threshold=float("nan"),
        total_probability=float("nan"),
        nodes_visited=nodes,
    )


def window_blocks(
    lo: np.ndarray,
    hi: np.ndarray,
    curve: HilbertCurve,
    depth: int,
) -> BlockSelection:
    """Geometric filtering for a hyper-rectangular window query.

    The paper contrasts its structure with Lawder's, for which "only
    hyper-rectangular range queries are computable"; this selector provides
    that classical window query on our structure too: every depth-``p``
    block intersecting the half-open box ``[lo, hi)`` is kept.
    """
    lo = np.asarray(lo, dtype=np.float64).ravel()
    hi = np.asarray(hi, dtype=np.float64).ravel()
    if lo.size != curve.ndims or hi.size != curve.ndims:
        raise ConfigurationError(
            f"window bounds must have {curve.ndims} components"
        )
    if np.any(lo > hi):
        raise ConfigurationError("window must satisfy lo <= hi per dimension")
    _check_depth(depth, curve)
    if np.any(lo == hi):
        # Half-open window with an empty side contains nothing.
        return BlockSelection(
            prefixes=np.empty(0, dtype=_U64),
            probabilities=np.empty(0),
            depth=depth,
            threshold=float("nan"),
            total_probability=float("nan"),
            nodes_visited=0,
        )

    n = curve.ndims
    fr = _root_frontier(curve)
    nodes = 0
    for d in range(depth):
        m = fr.prefix.size
        if m == 0:
            break
        nodes += m
        dims, mid, v0, rows = _split_geometry(fr, curve, d)
        # Child intersects the window iff its interval on the split
        # dimension overlaps [lo_j, hi_j); other dimensions are unchanged.
        keep0 = (fr.lo[rows, dims] < hi[dims]) & (mid > lo[dims])
        keep1 = (mid < hi[dims]) & (fr.hi[rows, dims] > lo[dims])
        fr = _advance(fr, curve, d, dims, mid, v0, keep0, keep1)

    order = np.argsort(fr.prefix, kind="stable")
    return BlockSelection(
        prefixes=fr.prefix[order],
        probabilities=np.zeros(fr.prefix.size),
        depth=depth,
        threshold=float("nan"),
        total_probability=float("nan"),
        nodes_visited=nodes,
    )


def threshold_cache_key(
    alpha: float, depth: int, model: IndependentDistortionModel
) -> tuple:
    """Key of the warm-start threshold cache for one query family.

    A usable warm start is specific to ``(alpha, depth)`` *and* to the
    distortion model: a threshold tuned for a narrow model selects far too
    few blocks under a wide one, so callers that alternate models per
    query must not poison each other's warm starts.  The model contributes
    a value-based identity token (:meth:`IndependentDistortionModel.cache_token`).
    """
    return (round(alpha, 6), depth, model.cache_token())


def statistical_blocks_cached(
    query: np.ndarray,
    model: IndependentDistortionModel,
    curve: HilbertCurve,
    depth: int,
    alpha: float,
    cache: dict[tuple, float],
) -> BlockSelection:
    """:func:`statistical_blocks` with a self-regulating warm-start cache.

    Queries of one workload share ``(alpha, depth, model)``, so the
    previous query's ``t_max`` (ratcheted up by 1.5×) is an excellent
    first probe: successes push the cached threshold toward minimal block
    sets while failures fall back through the shrink loop.  Typically
    saves 2–4 descents per query.  Both :class:`~repro.index.s3.S3Index`
    and the pseudo-disk searcher route through here, so equal cache
    histories give bit-identical selections.
    """
    cache_key = threshold_cache_key(alpha, depth, model)
    warm = cache.get(cache_key)
    selection = statistical_blocks(
        query,
        model,
        curve,
        depth,
        alpha,
        initial_threshold=None if warm is None else warm * 1.5,
        grow_steps=0 if warm is not None else 2,
    )
    if np.isfinite(selection.threshold) and selection.threshold > 0:
        cache[cache_key] = selection.threshold
    return selection


# ----------------------------------------------------------------------
# Multi-query (batched) statistical filtering.
#
# The batched selectors run the same descent as their single-query
# counterparts over a whole (B, D) query matrix at once: the frontier
# holds (query, node) pairs tagged with a `qidx` column, so every tree
# level is one set of numpy operations shared by all B queries instead of
# B independent descents.  All per-element arithmetic is the *same
# expression* as the single-query path, so each query's selection is
# bit-identical to what `select_blocks_threshold` / `statistical_blocks`
# would return for it alone (property-tested in tests/index/test_batch.py).


def select_blocks_threshold_multi(
    queries: np.ndarray,
    model: IndependentDistortionModel,
    curve: HilbertCurve,
    depth: int,
    thresholds: np.ndarray,
) -> list[BlockSelection]:
    """Batched :func:`select_blocks_threshold`: one descent for B queries.

    *queries* is ``(B, D)``; *thresholds* carries one pruning threshold
    per query.  Returns one :class:`BlockSelection` per query, each
    bit-identical to the single-query selector's output.
    """
    queries = _check_queries(queries, curve)
    thresholds = np.asarray(thresholds, dtype=np.float64).ravel()
    if thresholds.size != queries.shape[0]:
        raise ConfigurationError(
            f"got {queries.shape[0]} queries but {thresholds.size} thresholds"
        )
    if thresholds.size and not np.all((thresholds > 0.0) & (thresholds < 1.0)):
        raise ConfigurationError("thresholds must be in (0, 1)")
    _check_depth(depth, curve)

    num = queries.shape[0]
    if num == 0:
        return []
    n = curve.ndims
    fr = _Frontier(
        entry=np.zeros(num, dtype=_U64),
        direction=np.zeros(num, dtype=_U64),
        partial_w=np.zeros(num, dtype=_U64),
        prefix=np.zeros(num, dtype=_U64),
        lo=np.zeros((num, n), dtype=np.float64),
        hi=np.full((num, n), float(curve.side), dtype=np.float64),
    )
    dims_all = np.arange(n)
    philo = model.cdf_multi(np.broadcast_to(dims_all, (num, n)), fr.lo - queries)
    phihi = model.cdf_multi(np.broadcast_to(dims_all, (num, n)), fr.hi - queries)
    fr.extra["philo"] = philo
    fr.extra["phihi"] = phihi
    fr.extra["prob"] = np.prod(phihi - philo, axis=1)
    fr.extra["qidx"] = np.arange(num, dtype=np.int64)

    nodes = np.zeros(num, dtype=np.int64)
    for d in range(depth):
        if fr.prefix.size == 0:
            break
        qidx = fr.extra["qidx"]
        nodes += np.bincount(qidx, minlength=num)
        dims, mid, v0, rows = _split_geometry(fr, curve, d)
        phimid = model.cdf_multi(dims, mid - queries[qidx, dims])
        philo_j = fr.extra["philo"][rows, dims]
        phihi_j = fr.extra["phihi"][rows, dims]
        old = phihi_j - philo_j
        prob = fr.extra["prob"]
        with np.errstate(invalid="ignore", divide="ignore"):
            prob_low = np.where(old > 0, prob * (phimid - philo_j) / old, 0.0)
            prob_high = np.where(old > 0, prob * (phihi_j - phimid) / old, 0.0)
        t_row = thresholds[qidx]
        keep0 = prob_low > t_row
        keep1 = prob_high > t_row

        child_prob = {0: prob_low, 1: prob_high}
        nxt = _advance(fr, curve, d, dims, mid, v0, keep0, keep1)
        # Rebuild the CDF extras child-by-child in _advance's order; qidx
        # rides along automatically through the frontier's extra dict.
        extras_prob = []
        extras_philo = []
        extras_phihi = []
        for value, keep in ((0, keep0), (1, keep1)):
            idx = np.nonzero(keep)[0]
            if idx.size == 0:
                continue
            pl = fr.extra["philo"][idx].copy()
            ph = fr.extra["phihi"][idx].copy()
            if value == 0:
                ph[np.arange(idx.size), dims[idx]] = phimid[idx]
            else:
                pl[np.arange(idx.size), dims[idx]] = phimid[idx]
            extras_philo.append(pl)
            extras_phihi.append(ph)
            extras_prob.append(child_prob[value][idx])
        if extras_prob:
            nxt.extra["philo"] = np.concatenate(extras_philo)
            nxt.extra["phihi"] = np.concatenate(extras_phihi)
            nxt.extra["prob"] = np.concatenate(extras_prob)
        else:
            nxt.extra["philo"] = np.empty((0, n))
            nxt.extra["phihi"] = np.empty((0, n))
            nxt.extra["prob"] = np.empty(0)
        fr = nxt

    qidx = fr.extra["qidx"]
    order = np.lexsort((fr.prefix, qidx))
    prefixes = fr.prefix[order]
    probs = fr.extra["prob"][order]
    q_sorted = qidx[order]
    bounds = np.searchsorted(q_sorted, np.arange(num + 1))
    selections = []
    for i in range(num):
        s, e = int(bounds[i]), int(bounds[i + 1])
        p = probs[s:e]
        selections.append(BlockSelection(
            prefixes=prefixes[s:e],
            probabilities=p,
            depth=depth,
            threshold=float(thresholds[i]),
            total_probability=float(p.sum()),
            nodes_visited=int(nodes[i]),
        ))
    return selections


class _ThresholdSearch:
    """Per-query replay of :func:`statistical_blocks`'s threshold search.

    The search is a tiny scalar state machine (shrink → grow → refine);
    only the *probes* — full tree descents — are expensive, and those are
    batched across all still-active queries by
    :func:`statistical_blocks_multi`.  The transitions mirror the
    single-query control flow statement for statement, so each query's
    probe sequence (and hence its final selection) is bit-identical.
    """

    __slots__ = (
        "target", "shrink", "grow_steps", "max_descents", "t", "t_fail",
        "t_ok", "t_probe", "best", "descents", "nodes", "grow",
        "refine_left", "phase",
    )

    def __init__(
        self,
        target: float,
        initial_threshold: float,
        shrink: float,
        refine_steps: int,
        grow_steps: int,
        max_descents: int,
    ):
        self.target = target
        self.shrink = shrink
        self.grow_steps = grow_steps
        self.max_descents = max_descents
        self.t = initial_threshold
        self.t_fail: float | None = None
        self.t_ok = float("nan")
        self.best: BlockSelection | None = None
        self.descents = 0
        self.nodes = 0
        self.grow = 0
        self.refine_left = refine_steps
        self.phase = "shrink"
        self.t_probe = self.t

    @property
    def active(self) -> bool:
        return self.phase != "done"

    def consume(self, sel: BlockSelection) -> None:
        """Account one probe at ``t_probe`` and advance the state machine."""
        self.descents += 1
        self.nodes += sel.nodes_visited
        if self.phase == "shrink":
            if sel.total_probability >= self.target:
                self.best = sel
                self._enter_grow()
            else:
                self.t_fail = self.t
                self.t *= self.shrink
                if self.t < 1e-12:
                    self.best = sel  # closest achievable set
                    self.phase = "done"
                elif self.descents >= self.max_descents:
                    self.best = sel
                    self.phase = "done"
                else:
                    self.t_probe = self.t
        elif self.phase == "grow":
            self.grow += 1
            if sel.total_probability >= self.target:
                self.best = sel
                self._enter_grow()
            else:
                self.t_fail = self.t_probe
                self._enter_refine()
        elif self.phase == "refine":
            if sel.total_probability >= self.target:
                self.best = sel
                self.t_ok = self.t_probe
            else:
                self.t_fail = self.t_probe
            self.refine_left -= 1
            if self.refine_left > 0:
                self.t_probe = 0.5 * (self.t_ok + self.t_fail)
            else:
                self.phase = "done"
        else:  # pragma: no cover - defensive
            raise AssertionError("probe consumed after convergence")

    def _enter_grow(self) -> None:
        assert self.best is not None
        if (
            self.t_fail is None
            and self.best.total_probability >= self.target
            and self.grow < self.grow_steps
            and self.descents < self.max_descents
            and self.best.threshold * 4.0 < 1.0
        ):
            self.phase = "grow"
            self.t_probe = self.best.threshold * 4.0
        else:
            self._enter_refine()

    def _enter_refine(self) -> None:
        assert self.best is not None
        if (
            self.best.total_probability >= self.target
            and self.t_fail is not None
            and self.refine_left > 0
        ):
            self.phase = "refine"
            self.t_ok = self.best.threshold
            self.t_probe = 0.5 * (self.t_ok + self.t_fail)
        else:
            self.phase = "done"

    def result(self, depth: int) -> BlockSelection:
        assert self.best is not None
        return BlockSelection(
            prefixes=self.best.prefixes,
            probabilities=self.best.probabilities,
            depth=depth,
            threshold=self.best.threshold,
            total_probability=self.best.total_probability,
            nodes_visited=self.nodes,
            descents=self.descents,
        )


def statistical_blocks_multi(
    queries: np.ndarray,
    model: IndependentDistortionModel,
    curve: HilbertCurve,
    depth: int,
    alpha: float,
    initial_threshold: float | None = None,
    shrink: float = 0.25,
    refine_steps: int = 1,
    grow_steps: int = 2,
    max_descents: int = 40,
) -> list[BlockSelection]:
    """Batched :func:`statistical_blocks`: B threshold searches, shared descents.

    Every round performs **one** multi-query descent covering all queries
    whose search is still active (each at its own current probe
    threshold), so B queries share one pass per tree level instead of B
    independent descents.  Each query's probe sequence replays the
    single-query search exactly, so the returned selections are
    bit-identical to calling :func:`statistical_blocks` per query with the
    same parameters.
    """
    if not 0.0 < alpha < 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
    if not 0.0 < shrink < 1.0:
        raise ConfigurationError(f"shrink must be in (0, 1), got {shrink}")
    queries = _check_queries(queries, curve)
    num = queries.shape[0]
    if num == 0:
        return []

    t0 = initial_threshold if initial_threshold is not None else (1.0 - alpha) / 4.0
    t0 = min(max(t0, 1e-12), 1.0 - 1e-12)
    searches = [
        _ThresholdSearch(
            target=alpha * grid_probability(queries[i], model, curve),
            initial_threshold=t0,
            shrink=shrink,
            refine_steps=refine_steps,
            grow_steps=grow_steps,
            max_descents=max_descents,
        )
        for i in range(num)
    ]

    while True:
        active = [i for i in range(num) if searches[i].active]
        if not active:
            break
        idx = np.asarray(active, dtype=np.int64)
        probes = np.array([searches[i].t_probe for i in active])
        sels = select_blocks_threshold_multi(
            queries[idx], model, curve, depth, probes
        )
        for i, sel in zip(active, sels):
            searches[i].consume(sel)

    return [search.result(depth) for search in searches]


def statistical_blocks_batch_cached(
    queries: np.ndarray,
    model: IndependentDistortionModel,
    curve: HilbertCurve,
    depth: int,
    alpha: float,
    cache: dict[tuple, float],
) -> list[BlockSelection]:
    """Batched :func:`statistical_blocks_cached`: one warm start per batch.

    The warm-start cache is read **once** before the batch (every query in
    it shares the same initial probe threshold) and written **once**
    after it (the last query's converged ``t_max``, mirroring the
    sequential chain's "previous query" semantics).  A batch of size 1
    therefore reproduces the sequential cached loop bit for bit; larger
    batches are bit-identical to a sequential loop in which each query
    starts from the same cache state (see docs/batch-query.md).
    """
    cache_key = threshold_cache_key(alpha, depth, model)
    warm = cache.get(cache_key)
    selections = statistical_blocks_multi(
        queries,
        model,
        curve,
        depth,
        alpha,
        initial_threshold=None if warm is None else warm * 1.5,
        grow_steps=0 if warm is not None else 2,
    )
    for selection in selections:
        if np.isfinite(selection.threshold) and selection.threshold > 0:
            cache[cache_key] = selection.threshold
    return selections


def _check_queries(queries: np.ndarray, curve: HilbertCurve) -> np.ndarray:
    """Validate a ``(B, D)`` query matrix against *curve*."""
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim != 2 or queries.shape[1] != curve.ndims:
        raise ConfigurationError(
            f"queries must be (B, {curve.ndims}), got shape {queries.shape}"
        )
    return queries


# ----------------------------------------------------------------------
def grid_probability(
    query: np.ndarray,
    model: IndependentDistortionModel,
    curve: HilbertCurve,
) -> float:
    """Return ``P(Q + ΔS ∈ [0, 2^K)^D)`` — the in-grid distortion mass."""
    query = _check_query(query, curve)
    lo = np.zeros(curve.ndims)
    hi = np.full(curve.ndims, float(curve.side))
    return model.box_probability(lo, hi, query)


def _check_query(query: np.ndarray, curve: HilbertCurve) -> np.ndarray:
    query = np.asarray(query, dtype=np.float64).ravel()
    if query.size != curve.ndims:
        raise ConfigurationError(
            f"query has {query.size} components, curve expects {curve.ndims}"
        )
    return query


def _check_depth(depth: int, curve: HilbertCurve) -> None:
    if not 1 <= depth <= curve.total_bits:
        raise ConfigurationError(
            f"depth must be in [1, {curve.total_bits}], got {depth}"
        )
    if depth > 64:
        raise ConfigurationError(
            f"depth {depth} exceeds 64 bits; block prefixes are uint64"
        )
