"""Batched multi-query engine: shared filtering, coalesced scans, demux.

The paper's deployed system answers one statistical query per key-frame
fingerprint; the detection paths originally reproduced that literally — a
Python loop re-descending the Hilbert tree and re-scanning overlapping
curve sections for every query.  This module amortises that per-query
work across a frame batch:

1. **Shared block selection** — the threshold search of eq. (4) runs over
   the whole ``(B, D)`` query matrix at once
   (:func:`~repro.index.filtering.statistical_blocks_batch_cached`): all
   still-active searches share one vectorised pass per tree level, and
   the warm-start ``t_max`` cache is read/written once per batch.
2. **Scan coalescing** — temporally adjacent key-frames select heavily
   overlapping p-blocks, so the selected curve sections of a batch are
   merged into their disjoint union, each physical section is gathered
   exactly once, and rows are demultiplexed back to per-query
   :class:`~repro.index.s3.SearchResult`s.  O(B·overlap) I/O becomes
   O(union).
3. **Parallel execution** — ``workers=N`` shards the coalesced gather
   (monolithic index) or the per-segment fan-out (segmented index) across
   a thread pool; sharding is by position, so results stay deterministic.

Per-query results are **bit-identical** to the sequential
``statistical_query`` path started from the same warm-start cache state
(property-tested in ``tests/index/test_batch.py``); see
``docs/batch-query.md`` for the exact cache semantics of a batch.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

from ..distortion.model import IndependentDistortionModel
from ..errors import ConfigurationError
from .filtering import statistical_blocks_batch_cached
from .options import EXECUTOR_STRATEGIES, QueryOptions, resolve_options
from .parallel import (
    MONOLITHIC_STORE,
    ParallelScanError,
    ProcessScanPool,
    can_process_scan,
    segment_store_name,
)
from .planner import (
    Calibration,
    ExecutorPlan,
    PlannerStats,
    choose_executor,
    get_calibration,
    set_calibration,
)
from .s3 import QueryStats, S3Index, SearchResult
from .store import FingerprintStore
from .table import HilbertLayout

RowRange = tuple[int, int]

#: Minimum gathered rows before the column gather is sharded across the
#: thread pool.  Below this, thread startup and result concatenation
#: cost more than the fancy-index gather they parallelise (measured on
#: the 20-byte fingerprints of the paper's workload); above it, shards
#: amortise.  Callers can override per executor via
#: :class:`BatchQueryExecutor`'s ``parallel_gather_min_rows`` (the
#: serving layer's batcher exposes it as a config knob).
PARALLEL_GATHER_MIN_ROWS = 4096

#: Index size below which ``executor="auto"`` stays on threads: a
#: process pool's startup and per-call arena round-trips only pay for
#: themselves once the scan volume escapes the GIL-bound regime.
PROCESS_EXECUTOR_MIN_ROWS = 100_000

#: Hosts with this many cores or fewer never auto-select processes:
#: BENCH_parallel_scan shows the pool 0.67-0.86x *slower* than threads
#: when workers contend for one or two cores, on top of its startup
#: cost.  An explicit ``executor="processes"`` still overrides.  Unlike
#: the row threshold this survives as a hard guard under the measured
#: planner too — contended cores are a structural loss, not a cost
#: trade-off.
PROCESS_EXECUTOR_MIN_CPUS = 3

#: Cold-start estimate of the fraction of the index one batch's
#: coalesced union scans, used by the planner before the first batch
#: has produced real per-batch row counts (the statistical query is
#: sub-linear; a few percent is typical at laptop scale).
COLD_SCAN_FRACTION = 0.02


@dataclass
class BatchQueryStats:
    """Aggregate cost of one or more batched queries.

    ``logical_rows`` is what a sequential per-query loop would have
    scanned (the sum of every query's selected rows); ``unique_rows`` is
    what the coalesced scan actually gathered.  Their ratio is the I/O
    saved by coalescing.
    """

    queries: int = 0
    batches: int = 0
    blocks_selected: int = 0
    sections_scanned: int = 0
    logical_rows: int = 0
    unique_rows: int = 0
    results: int = 0
    segments_skipped: int = 0
    blocks_skipped: int = 0
    filter_seconds: float = 0.0
    scan_seconds: float = 0.0
    #: Cold-tier traffic of the batch: segments scanned through the blob
    #: backend, union rows fetched, payload bytes and wall-clock spent
    #: fetching them (wall-clock overlaps resident scans when the
    #: prefetcher is on, so ``cold_fetch_seconds`` can exceed the time
    #: the batch actually waited).
    cold_segments: int = 0
    cold_rows: int = 0
    cold_bytes: int = 0
    cold_fetch_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.filter_seconds + self.scan_seconds

    @property
    def coalescing_factor(self) -> float:
        """Logical rows per physically gathered row (>= 1 with overlap)."""
        if self.unique_rows == 0:
            return 1.0
        return self.logical_rows / self.unique_rows

    def merge(self, other: "BatchQueryStats") -> None:
        """Accumulate *other* into this (used when chunking a workload)."""
        self.queries += other.queries
        self.batches += other.batches
        self.blocks_selected += other.blocks_selected
        self.sections_scanned += other.sections_scanned
        self.logical_rows += other.logical_rows
        self.unique_rows += other.unique_rows
        self.results += other.results
        self.segments_skipped += other.segments_skipped
        self.blocks_skipped += other.blocks_skipped
        self.filter_seconds += other.filter_seconds
        self.scan_seconds += other.scan_seconds
        self.cold_segments += other.cold_segments
        self.cold_rows += other.cold_rows
        self.cold_bytes += other.cold_bytes
        self.cold_fetch_seconds += other.cold_fetch_seconds


# ----------------------------------------------------------------------
# Scan coalescing
# ----------------------------------------------------------------------
def coalesce_ranges(
    range_lists: Sequence[list[RowRange]],
) -> list[RowRange]:
    """Merge every query's row ranges into their disjoint sorted union.

    Each input list is the merged "curve sections" of one query (sorted,
    disjoint — as produced by
    :meth:`~repro.index.table.HilbertLayout.block_row_ranges`).  Touching
    ranges merge, so every input range lies **entirely inside exactly
    one** union range — the invariant the demux step relies on.
    """
    total = sum(len(ranges) for ranges in range_lists)
    if total == 0:
        return []
    starts = np.empty(total, dtype=np.int64)
    ends = np.empty(total, dtype=np.int64)
    at = 0
    for ranges in range_lists:
        for s, e in ranges:
            starts[at] = s
            ends[at] = e
            at += 1
    order = np.argsort(starts, kind="stable")
    starts = starts[order]
    ends = ends[order]
    running = np.maximum.accumulate(ends)
    new_group = np.empty(total, dtype=bool)
    new_group[0] = True
    new_group[1:] = starts[1:] > running[:-1]
    first = np.nonzero(new_group)[0]
    last = np.append(first[1:] - 1, total - 1)
    return [
        (int(s), int(e)) for s, e in zip(starts[first], running[last])
    ]


def _gather_columns(
    store: FingerprintStore,
    rows: np.ndarray,
    workers: int,
    min_rows: Optional[int] = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather ``(ids, timecodes, fingerprints)`` at *rows*, optionally sharded.

    Shards are contiguous position chunks and are concatenated back in
    order, so the output is identical for any worker count.  *min_rows*
    overrides :data:`PARALLEL_GATHER_MIN_ROWS`, the cutoff below which
    sharding is skipped.
    """
    if min_rows is None:
        min_rows = PARALLEL_GATHER_MIN_ROWS
    if workers > 1 and rows.size >= min_rows:
        chunks = np.array_split(rows, workers)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            parts = list(
                pool.map(
                    lambda c: (
                        store.ids[c],
                        store.timecodes[c],
                        store.fingerprints[c],
                    ),
                    chunks,
                )
            )
        return (
            np.concatenate([p[0] for p in parts]),
            np.concatenate([p[1] for p in parts]),
            np.concatenate([p[2] for p in parts]),
        )
    return store.ids[rows], store.timecodes[rows], store.fingerprints[rows]


def _demux_union(
    layout: HilbertLayout,
    per_query_ranges: Sequence[list[RowRange]],
    union: list[RowRange],
    u_ids: np.ndarray,
    u_tcs: np.ndarray,
    u_fps: np.ndarray,
) -> list[tuple]:
    """Split union columns back into per-query ``(rows, ids, tcs, fps)``.

    Fancy indexing copies, so the returned arrays never alias the union
    buffers — required when those buffers live in a shared-memory arena
    that is released right after the demux.
    """
    if union:
        u_starts = np.array([s for s, _ in union], dtype=np.int64)
        lengths = np.array([e - s for s, e in union], dtype=np.int64)
        offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(lengths)]
        )
    per_query = []
    for ranges in per_query_ranges:
        rows_q = layout.gather_rows(ranges)
        if rows_q.size:
            # Each per-query range sits inside exactly one union range, so
            # its rows map to positions by offsetting within that range.
            k = np.searchsorted(u_starts, rows_q, side="right") - 1
            pos = offsets[k] + (rows_q - u_starts[k])
        else:
            pos = np.empty(0, dtype=np.int64)
        per_query.append((rows_q, u_ids[pos], u_tcs[pos], u_fps[pos]))
    return per_query


def _scan_coalesced(
    layout: HilbertLayout,
    store: FingerprintStore,
    per_query_ranges: Sequence[list[RowRange]],
    workers: int = 1,
    min_rows: Optional[int] = None,
    pool: Optional[ProcessScanPool] = None,
    store_name: str = MONOLITHIC_STORE,
    gather_cache=None,
) -> tuple[list[tuple], int, int]:
    """Scan the union of all queries' sections once and demultiplex.

    Returns ``(per_query, union_sections, unique_rows)`` where each
    ``per_query`` entry is ``(rows, ids, timecodes, fingerprints)`` —
    exactly the columns the sequential ``_scan_blocks`` would have
    gathered for that query alone, in the same (curve) order.

    With *pool*, the union gather runs sharded across the scan worker
    processes into a shared-memory arena (no fingerprint bytes cross a
    pipe); the demux copies out of the arena, so results are plain
    arrays either way, byte-for-byte identical.

    With *gather_cache* (a :class:`~repro.serve.cache.GatherCache`),
    recurring ``(store, union)`` gathers are answered from cached
    column copies.  Fancy indexing copies, so cached columns are
    byte-identical to a fresh gather of the same immutable store rows;
    the serving layer invalidates the cache whenever the index mutates.
    """
    union = coalesce_ranges(per_query_ranges)
    total = sum(e - s for s, e in union)
    threshold = PARALLEL_GATHER_MIN_ROWS if min_rows is None else min_rows
    cached = (
        gather_cache.get(store_name, union)
        if gather_cache is not None else None
    )
    if cached is not None:
        u_ids, u_tcs, u_fps = cached
        per_query = _demux_union(
            layout, per_query_ranges, union, u_ids, u_tcs, u_fps
        )
    elif pool is not None and total >= max(threshold, 1):
        with pool.scan_union(store_name, union) as arena:
            u_ids, u_tcs, u_fps = arena.columns(0)
            per_query = _demux_union(
                layout, per_query_ranges, union, u_ids, u_tcs, u_fps
            )
            del u_ids, u_tcs, u_fps
    else:
        u_rows = layout.gather_rows(union)
        u_ids, u_tcs, u_fps = _gather_columns(
            store, u_rows, workers, min_rows
        )
        if gather_cache is not None:
            gather_cache.put(
                store_name, union, (u_ids, u_tcs, u_fps), total
            )
        per_query = _demux_union(
            layout, per_query_ranges, union, u_ids, u_tcs, u_fps
        )
    return per_query, len(union), total


# ----------------------------------------------------------------------
# Batched statistical queries
# ----------------------------------------------------------------------
def _check_batch(queries: np.ndarray, ndims: int) -> np.ndarray:
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim == 1:
        queries = queries[None, :]
    if queries.ndim != 2 or queries.shape[1] != ndims:
        raise ConfigurationError(
            f"queries must be (B, {ndims}), got shape {queries.shape}"
        )
    return queries


def query_batch_monolithic(
    index: S3Index,
    queries: np.ndarray,
    alpha: float,
    model: Optional[IndependentDistortionModel] = None,
    depth: Optional[int] = None,
    workers: int = 1,
    parallel_gather_min_rows: Optional[int] = None,
    pool: Optional[ProcessScanPool] = None,
    gather_cache=None,
) -> tuple[list[SearchResult], BatchQueryStats]:
    """Answer a batch of statistical queries against a monolithic index.

    Per-query results are bit-identical to ``index.statistical_query``
    called per query from the same warm-start cache state.  Per-query
    timing fields carry an equal share of the batch's filter/scan time.
    With *pool*, the coalesced gather runs on the process pool instead
    of threads (same results, see :mod:`repro.index.parallel`).
    """
    queries = _check_batch(queries, index.ndims)
    resolved = index._resolve_model(model)
    depth = index.depth if depth is None else depth
    index._check_depth(depth)
    num = queries.shape[0]
    batch = BatchQueryStats(queries=num, batches=1)
    if num == 0:
        return [], batch

    t0 = time.perf_counter()
    selections = statistical_blocks_batch_cached(
        queries, resolved, index.curve, depth, alpha,
        cache=index._threshold_cache,
    )
    t1 = time.perf_counter()
    per_ranges = [index.row_ranges(sel) for sel in selections]
    scans, union_sections, unique_rows = _scan_coalesced(
        index.layout, index.store, per_ranges, workers,
        parallel_gather_min_rows, pool=pool, gather_cache=gather_cache,
    )
    t2 = time.perf_counter()

    results = []
    for sel, ranges, (rows_q, ids, tcs, fps) in zip(
        selections, per_ranges, scans
    ):
        stats = QueryStats(
            blocks_selected=len(sel),
            sections_scanned=len(ranges),
            rows_scanned=int(rows_q.size),
            results=int(rows_q.size),
            nodes_visited=sel.nodes_visited,
            descents=sel.descents,
            filter_seconds=(t1 - t0) / num,
            refine_seconds=(t2 - t1) / num,
        )
        results.append(SearchResult(
            rows=rows_q, ids=ids, timecodes=tcs, fingerprints=fps,
            stats=stats,
        ))

    batch.blocks_selected = sum(len(s) for s in selections)
    batch.sections_scanned = union_sections
    batch.logical_rows = sum(len(r) for r in results)
    batch.unique_rows = unique_rows
    batch.results = batch.logical_rows
    batch.filter_seconds = t1 - t0
    batch.scan_seconds = t2 - t1
    return results, batch


def query_batch_segmented(
    index,
    queries: np.ndarray,
    alpha: float,
    model: Optional[IndependentDistortionModel] = None,
    depth: Optional[int] = None,
    workers: int = 1,
    parallel_gather_min_rows: Optional[int] = None,
    pool: Optional[ProcessScanPool] = None,
    prefilter: bool = True,
    gather_cache=None,
    prefetch: bool = True,
) -> tuple[list[SearchResult], BatchQueryStats]:
    """Answer a batch of statistical queries against a segmented index.

    The block selections are computed once per batch and fanned out:
    each sealed segment is scanned with one coalesced pass (segments run
    in parallel when ``workers > 1``), the memtable by block membership
    per query.  Merge order matches the sequential ``_fan_out`` —
    segments in manifest order, then the memtable — so per-query results
    are bit-identical to ``index.statistical_query`` from the same
    warm-start cache state.

    With *prefilter* (the default), each segment's sketch drops the
    selected blocks the segment provably holds no rows of **per query**,
    before the per-query ranges enter :func:`coalesce_ranges` — so the
    unions shrink, the pool/thread shards shrink with them, and a
    (query, segment) pair whose whole selection is pruned never reaches
    the gather at all.  The prune is admissible: dropped blocks hold no
    rows, so the surviving ranges — and the results — are identical.

    With *pool*, every sealed segment's union gather is submitted in a
    single :meth:`~repro.index.parallel.ProcessScanPool.scan_stores`
    call with per-worker segment affinity; the memtable (small, mutable)
    is always scanned in-process.

    **Cold segments** (tiered storage) never enter the pool or thread
    shards: block selection runs on their resident ``.keys`` sidecar,
    and exactly the coalesced union's byte ranges are fetched from the
    blob backend.  With *prefetch* (the default, when the index has a
    tier manager), those fetches are submitted **before** the resident
    scans start and collected after — backend latency overlaps local
    gathering.  Either way the fetched columns are the same bytes a
    resident gather would have produced, so results stay bit-identical.
    """
    from .segmented.lsm import SegmentedQueryStats

    queries = _check_batch(queries, index.ndims)
    resolved = index._resolve_model(model)
    depth = index._resolve_depth(depth)
    num = queries.shape[0]
    batch = BatchQueryStats(queries=num, batches=1)
    if num == 0:
        return [], batch

    t0 = time.perf_counter()
    selections = statistical_blocks_batch_cached(
        queries, resolved, index.curve, depth, alpha,
        cache=index._threshold_cache,
    )
    t1 = time.perf_counter()

    def seg_query_ranges(seg):
        """Per-query ranges of *seg*, sketch-pruned, plus skip counters."""
        sketch = seg.sketch if prefilter else None
        per_ranges = []
        skipped_q = []
        blocks_q = []
        for sel in selections:
            prefixes = sel.prefixes
            dropped = 0
            skipped = False
            if sketch is not None and len(prefixes):
                pruned = sketch.prune_prefixes(prefixes, sel.depth)
                dropped = len(prefixes) - len(pruned)
                skipped = len(pruned) == 0
                prefixes = pruned
            blocks_q.append(dropped)
            skipped_q.append(skipped)
            per_ranges.append(
                seg.layout.block_row_ranges(prefixes, sel.depth)
                if len(prefixes) else []
            )
        return per_ranges, skipped_q, blocks_q

    # Pin one snapshot view for the whole batch: the segment set, the
    # frozen memtables and the active-memtable length all come from the
    # same instant, so a background seal or compaction switching the
    # live view mid-batch can neither drop nor double-count rows.
    view = index._read_view()
    segments = list(view.segments)
    storage = getattr(index, "storage", None)
    # Block selection needs no store bytes (resident keys sidecars for
    # cold segments), so every segment's pruned per-query ranges — and
    # their coalesced unions — are known before a single row is read.
    seg_pruned = [seg_query_ranges(seg) for seg in segments]
    seg_unions = [coalesce_ranges(p[0]) for p in seg_pruned]
    resident = [
        (i, seg) for i, seg in enumerate(segments) if seg.index is not None
    ]

    # Cold fetches start *now*, before the resident scans, so backend
    # latency overlaps the local gathers below.
    cold_bytes0 = storage.stats.fetch_bytes if storage is not None else 0
    cold_secs0 = storage.stats.fetch_seconds if storage is not None else 0.0
    cold_handles: dict[int, object] = {}
    if storage is not None and prefetch:
        for i, seg in enumerate(segments):
            if seg.index is None and seg_unions[i]:
                cold_handles[i] = storage.prefetch(seg, seg_unions[i])

    def scan_resident(item):
        i, seg = item
        per_ranges = seg_pruned[i][0]
        scans, sections, unique = _scan_coalesced(
            seg.index.layout, seg.index.store, per_ranges, workers=1,
            min_rows=parallel_gather_min_rows,
            store_name=segment_store_name(seg.meta.name),
            gather_cache=gather_cache,
        )
        return i, (scans, sections, unique)

    seg_scans: list = [None] * len(segments)
    if pool is not None and resident:
        # One pool call covers every resident segment: each segment's
        # coalesced union is one work item, routed to the worker that
        # owns that segment's store attachment.  Pruned unions are
        # smaller work items; a fully pruned segment's union is empty
        # and produces no worker task at all (see scan_stores).
        with pool.scan_stores([
            (segment_store_name(seg.meta.name), seg_unions[i])
            for i, seg in resident
        ]) as arena:
            for k, (i, seg) in enumerate(resident):
                u_ids, u_tcs, u_fps = arena.columns(k)
                scans = _demux_union(
                    seg.index.layout, seg_pruned[i][0], seg_unions[i],
                    u_ids, u_tcs, u_fps,
                )
                del u_ids, u_tcs, u_fps
                seg_scans[i] = (
                    scans, len(seg_unions[i]),
                    sum(e - s for s, e in seg_unions[i]),
                )
    elif workers > 1 and len(resident) > 1:
        with ThreadPoolExecutor(max_workers=workers) as thread_pool:
            for i, scanned in thread_pool.map(scan_resident, resident):
                seg_scans[i] = scanned
    else:
        for item in resident:
            i, scanned = scan_resident(item)
            seg_scans[i] = scanned

    # Collect the cold fetches (or fetch synchronously when the
    # prefetcher is off) and demux them exactly like a resident union.
    cold_segments_scanned = 0
    for i, seg in enumerate(segments):
        if seg.index is not None:
            continue
        union = seg_unions[i]
        total = sum(e - s for s, e in union)
        if total == 0:
            u_ids = np.empty(0, dtype=np.uint32)
            u_tcs = np.empty(0, dtype=np.float64)
            u_fps = np.empty((0, index.ndims), dtype=np.uint8)
        elif i in cold_handles:
            u_ids, u_tcs, u_fps = storage.collect(cold_handles[i])
            cold_segments_scanned += 1
        else:
            u_ids, u_tcs, u_fps = storage.fetch_ranges(seg, union)
            cold_segments_scanned += 1
        scans = _demux_union(
            seg.layout, seg_pruned[i][0], union, u_ids, u_tcs, u_fps
        )
        seg_scans[i] = (scans, len(union), total)

    if storage is not None:
        for i, seg in enumerate(segments):
            if seg_unions[i]:
                storage.touch(seg)

    # Memtable scans — frozen memtables (oldest first) then the active
    # one, each bounded to the rows the pinned view captured.
    mem_tables = [(f.memtable, f.rows) for f in view.frozen]
    mem_tables.append((view.memtable, view.memtable_rows))
    mem_scans = []
    for memtable, limit in mem_tables:
        rows_q = [
            memtable.scan_selection(sel, limit=limit) for sel in selections
        ]
        parts_q = [memtable.take(rows) for rows in rows_q]
        mem_scans.append((rows_q, parts_q, limit))
    memtable_rows = sum(limit for _, _, limit in mem_scans)
    t2 = time.perf_counter()

    filter_share = (t1 - t0) / num
    scan_share = (t2 - t1) / num
    results = []
    for qi in range(num):
        sel = selections[qi]
        stats = SegmentedQueryStats(
            blocks_selected=len(sel),
            nodes_visited=sel.nodes_visited,
            descents=sel.descents,
            filter_seconds=filter_share,
        )
        rows_parts, ids_parts, tcs_parts, fps_parts = [], [], [], []
        base = 0
        for seg, (per_ranges, skipped_q, blocks_q), (scans, _, _) in zip(
            segments, seg_pruned, seg_scans
        ):
            rows_q, ids, tcs, fps = scans[qi]
            seg_stats = QueryStats(
                blocks_selected=len(sel),
                sections_scanned=len(per_ranges[qi]),
                rows_scanned=int(rows_q.size),
                results=int(rows_q.size),
            )
            stats.segments_skipped += int(skipped_q[qi])
            stats.blocks_skipped += blocks_q[qi]
            rows_parts.append(rows_q + base)
            ids_parts.append(ids)
            tcs_parts.append(tcs)
            fps_parts.append(fps)
            stats.per_segment.append(seg_stats)
            base += seg.meta.count
        for rows_q, parts_q, limit in mem_scans:
            mem = parts_q[qi]
            rows_parts.append(rows_q[qi] + base)
            ids_parts.append(mem.ids)
            tcs_parts.append(mem.timecodes)
            fps_parts.append(mem.fingerprints)
            base += limit

        merged = SearchResult(
            rows=np.concatenate(rows_parts),
            ids=np.concatenate(ids_parts),
            timecodes=np.concatenate(tcs_parts),
            fingerprints=np.concatenate(fps_parts),
            stats=stats,
        )
        stats.segments_scanned = len(segments)
        stats.memtable_rows_scanned = memtable_rows
        stats.sections_scanned = sum(
            s.sections_scanned for s in stats.per_segment
        )
        stats.rows_scanned = (
            sum(s.rows_scanned for s in stats.per_segment)
            + memtable_rows
        )
        stats.results = len(merged)
        stats.refine_seconds = scan_share
        results.append(merged)

    batch.blocks_selected = sum(len(s) for s in selections)
    batch.sections_scanned = sum(s[1] for s in seg_scans)
    batch.logical_rows = sum(len(r) for r in results)
    batch.unique_rows = (
        sum(s[2] for s in seg_scans)
        + sum(
            int(r.size) for rows_q, _, _ in mem_scans for r in rows_q
        )
    )
    batch.segments_skipped = sum(
        sum(int(f) for f in p[1]) for p in seg_pruned
    )
    batch.blocks_skipped = sum(sum(p[2]) for p in seg_pruned)
    batch.results = batch.logical_rows
    batch.filter_seconds = t1 - t0
    batch.scan_seconds = t2 - t1
    if storage is not None:
        batch.cold_segments = cold_segments_scanned
        batch.cold_rows = sum(
            s[2] for i, s in enumerate(seg_scans)
            if segments[i].index is None
        )
        batch.cold_bytes = storage.stats.fetch_bytes - cold_bytes0
        batch.cold_fetch_seconds = storage.stats.fetch_seconds - cold_secs0
        # Tier transitions run here, after the batch is fully merged —
        # never while the scan loop above is iterating the segment list.
        index._settle()
    return results, batch


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
class BatchQueryExecutor:
    """Chunk a query workload into batches and run the batched engine.

    One executor serves one ``(index, alpha, model, depth)`` workload —
    the combination the warm-start threshold cache is keyed on.  Both
    :class:`~repro.index.s3.S3Index` and
    :class:`~repro.index.segmented.lsm.SegmentedS3Index` are supported;
    the right engine is picked by duck-typing on the fan-out internals.

    Parameters
    ----------
    batch_size:
        Queries per engine call.  Larger batches amortise descent
        overhead and coalesce more aggressively but delay the warm-start
        cache update (it happens once per batch).
    workers:
        Shard count for the coalesced gather (monolithic) or the
        per-segment fan-out (segmented) — threads or processes depending
        on *executor*.  Results are identical for any value; 1 disables
        threading (but an explicit ``executor="processes"`` still runs
        a one-worker pool).
    parallel_gather_min_rows:
        Override of :data:`PARALLEL_GATHER_MIN_ROWS`, the row count
        below which the gather is never sharded.  ``None`` keeps the
        module default.
    executor:
        ``"threads"`` keeps the GIL-bound thread sharding.
        ``"processes"`` runs gathers on a
        :class:`~repro.index.parallel.ProcessScanPool` (zero-copy
        attach, no fingerprint bytes on pipes).  ``"auto"`` (default)
        asks the measured cost-model planner
        (:mod:`repro.index.planner`) to pick
        ``serial``/``threads``/``processes`` per batch from calibrated
        per-host costs — subject to the hard guards (never processes
        below :data:`PROCESS_EXECUTOR_MIN_CPUS` cores, below two
        workers, or without zero-copy backing), with the legacy
        fixed-threshold rule as the ``planner="fixed"`` opt-out and
        missing-calibration fallback — and falls back to threads
        cleanly whenever the pool cannot be built or dies mid-flight.

    The tuning parameters above are the **deprecated spelling**: pass a
    :class:`~repro.index.options.QueryOptions` via ``options=`` instead
    (it also carries the ``prefilter`` mode of the segment-sketch
    tier).  The old keywords keep working behind a
    ``DeprecationWarning``; mixing them with ``options=`` raises.
    """

    def __init__(
        self,
        index,
        alpha: Optional[float] = None,
        model: Optional[IndependentDistortionModel] = None,
        depth: Optional[int] = None,
        batch_size: Optional[int] = None,
        workers: Optional[int] = None,
        parallel_gather_min_rows: Optional[int] = None,
        executor: Optional[str] = None,
        options: Optional[QueryOptions] = None,
    ):
        if options is None and alpha is None:
            raise ConfigurationError(
                "BatchQueryExecutor: pass alpha= or options="
            )
        opts = resolve_options(
            "BatchQueryExecutor", options,
            alpha=alpha, depth=depth,
            batch_size=batch_size, workers=workers,
            executor=executor,
            parallel_gather_min_rows=parallel_gather_min_rows,
        )
        cpus = os.cpu_count()
        if cpus is not None and opts.workers > cpus:
            warnings.warn(
                f"workers={opts.workers} exceeds os.cpu_count()={cpus}; "
                "scan shards will contend for cores instead of using "
                "more of them",
                RuntimeWarning,
                stacklevel=2,
            )
        self.index = index
        self.options = opts
        self.alpha = opts.alpha
        self.model = model
        self.depth = opts.depth
        self.batch_size = opts.batch_size
        self.workers = opts.workers
        self.parallel_gather_min_rows = opts.parallel_gather_min_rows
        self.executor = opts.executor
        self.prefilter = opts.prefilter
        self.planner_mode = opts.planner
        self.stats = BatchQueryStats()
        self.planner_stats = PlannerStats()
        #: Optional :class:`~repro.serve.cache.GatherCache` the serving
        #: layer plugs in; ``None`` keeps every gather cold.
        self.gather_cache = None
        self._segmented = hasattr(index, "_fan_out")
        self._engine = (
            query_batch_segmented if self._segmented
            else query_batch_monolithic
        )
        self._calibration: Optional[Calibration] = None
        self._pool: Optional[ProcessScanPool] = None
        self._pool_key: Optional[tuple] = None
        self._pool_failed = False

    # ------------------------------------------------------------------
    # process-pool lifecycle
    # ------------------------------------------------------------------
    def _pool_stores(self) -> dict[str, FingerprintStore]:
        """Current ``name -> store`` mapping the pool must cover.

        Cold segments are excluded — their bytes live in the blob
        backend, not in anything a worker process could attach.  A tier
        transition changes the resident name set, so the pool key
        changes and :meth:`_ensure_pool` rebuilds naturally.
        """
        if self._segmented:
            return {
                segment_store_name(seg.meta.name): seg.index.store
                for seg in self.index._segments
                if seg.index is not None
            }
        return {MONOLITHIC_STORE: self.index.store}

    def planner_calibration(self) -> Optional[Calibration]:
        """This executor's cost calibration (``None`` in fixed mode)."""
        if self.planner_mode == "fixed":
            return None
        if self._calibration is None:
            self._calibration = get_calibration()
        return self._calibration

    def _rows_estimate(self) -> int:
        """Expected coalesced rows of the next batch.

        Rolling average of past batches once any have run; before that,
        a :data:`COLD_SCAN_FRACTION` share of the index (the planner's
        ``observe`` loop corrects any cold-start error within a few
        batches).
        """
        if self.stats.batches:
            return max(1, round(self.stats.unique_rows / self.stats.batches))
        return max(1, int(len(self.index) * COLD_SCAN_FRACTION))

    def _cold_bytes_estimate(self) -> int:
        """Expected blob-backend bytes of the next batch (0 untiered).

        Rolling average like :meth:`_rows_estimate`; before the first
        batch, the cold fraction of the index scaled by
        :data:`COLD_SCAN_FRACTION` — the same cold-start heuristic.
        """
        storage = getattr(self.index, "storage", None)
        if storage is None:
            return 0
        if self.stats.batches:
            return max(0, round(self.stats.cold_bytes / self.stats.batches))
        per_row = self.index.ndims + 4 + 8
        cold_rows = sum(
            seg.meta.count for seg in self.index._segments
            if seg.index is None
        )
        return int(cold_rows * per_row * COLD_SCAN_FRACTION)

    def plan_batch(self, record: bool = False) -> ExecutorPlan:
        """Plan the next batch's strategy (``serial|threads|processes``).

        An explicit ``executor=`` setting bypasses the planner, exactly
        as before; ``"auto"`` asks :func:`~repro.index.planner.choose_executor`
        under the configured planner mode.  With *record*, the decision
        is counted into :attr:`planner_stats` (one call per batch).
        """
        rows = self._rows_estimate()
        if self.executor == "threads" or self._pool_failed:
            plan = ExecutorPlan(
                "threads", rows, source="explicit",
                reason=(
                    "pool failed earlier" if self._pool_failed
                    else "executor=threads"
                ),
            )
        elif self.executor == "processes":
            plan = ExecutorPlan(
                "processes", rows, source="explicit",
                reason="executor=processes",
            )
        else:
            workers = self.workers
            can = (
                workers >= 2
                and can_process_scan(list(self._pool_stores().values()))
            )
            plan = choose_executor(
                rows, self.batch_size, os.cpu_count() or 1,
                workers=workers,
                index_rows=len(self.index),
                can_processes=can,
                calibration=self.planner_calibration(),
                mode=self.planner_mode,
                min_rows=PROCESS_EXECUTOR_MIN_ROWS,
                min_cpus=PROCESS_EXECUTOR_MIN_CPUS,
                cold_bytes=self._cold_bytes_estimate(),
            )
        if record:
            self.planner_stats.record(plan)
        return plan

    def resolve_executor(self) -> str:
        """The strategy the next batch will use (``threads``/``processes``).

        The planner's ``"serial"`` maps to ``"threads"`` here — both run
        in-process without the pool; serial just skips thread sharding.
        """
        plan = self.plan_batch()
        return "processes" if plan.strategy == "processes" else "threads"

    def planner_snapshot(self) -> dict:
        """Planner block of the serve ``stats`` op / ``info --json``."""
        cal = self._calibration
        return {
            "mode": self.planner_mode,
            "executor": self.executor,
            "rows_estimate": self._rows_estimate(),
            "calibration": cal.to_json() if cal is not None else None,
            **self.planner_stats.snapshot(),
        }

    def _ensure_pool(self) -> Optional[ProcessScanPool]:
        """Build (or rebuild, after segment turnover) the scan pool.

        Returns ``None`` — and remembers the failure — when the pool
        cannot be built, so callers silently keep the thread path.
        """
        stores = self._pool_stores()
        if not stores:
            return None
        key = tuple(sorted(stores))
        if self._pool is not None and self._pool_key == key:
            return self._pool
        self._teardown_pool()
        try:
            self._pool = ProcessScanPool(stores, self.workers)
            self._pool_key = key
        except Exception as exc:
            self._pool_failed = True
            if self.executor == "processes":
                raise
            warnings.warn(
                f"process scan pool unavailable ({exc}); "
                "falling back to threads",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        return self._pool

    def _teardown_pool(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None
            self._pool_key = None

    def warm(self) -> str:
        """Pre-build the scan pool (serve startup); returns the strategy."""
        strategy = self.resolve_executor()
        if strategy == "processes":
            pool = self._ensure_pool()
            if pool is None:
                return "threads"
            pool.ping()
        return strategy

    def pool_stats(self) -> Optional[dict]:
        """Snapshot of the live pool's transport counters, if any."""
        if self._pool is None:
            return None
        return self._pool.stats.snapshot()

    def close(self) -> None:
        """Release the process pool (no-op on the thread path)."""
        self._teardown_pool()

    def __enter__(self) -> "BatchQueryExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self._teardown_pool()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def query_batch(self, queries: np.ndarray) -> list[SearchResult]:
        """Run one engine call over *queries* (no chunking)."""
        plan = self.plan_batch(record=True)
        pool = None
        if plan.strategy == "processes":
            pool = self._ensure_pool()
            if pool is None:
                plan = replace(
                    plan, strategy="threads",
                    reason=plan.reason + "; pool unavailable",
                )
        executed = plan.strategy
        kwargs = dict(
            model=self.model, depth=self.depth,
            workers=1 if plan.strategy == "serial" else self.workers,
            parallel_gather_min_rows=self.parallel_gather_min_rows,
        )
        if self._segmented:
            kwargs["prefilter"] = self.options.prefilter_enabled
            kwargs["prefetch"] = self.options.prefetch_enabled
        if self.gather_cache is not None:
            kwargs["gather_cache"] = self.gather_cache
        try:
            results, batch = self._engine(
                self.index, queries, self.alpha, pool=pool, **kwargs
            )
        except ParallelScanError as exc:
            # The pool could not finish the batch (workers kept dying,
            # shared memory vanished, ...).  The batch is retried on the
            # thread path — the caller sees a result, never the error.
            warnings.warn(
                f"process scan pool failed ({exc}); "
                "retrying batch on threads",
                RuntimeWarning,
                stacklevel=2,
            )
            self._teardown_pool()
            self._pool_failed = True
            executed = "threads"
            results, batch = self._engine(
                self.index, queries, self.alpha, pool=None, **kwargs
            )
        self.stats.merge(batch)
        self._observe_batch(plan, executed, batch, pool)
        return results

    def _observe_batch(
        self,
        plan: ExecutorPlan,
        executed: str,
        batch: BatchQueryStats,
        pool: Optional[ProcessScanPool],
    ) -> None:
        """Fold one finished batch into the planner's rolling state."""
        self.planner_stats.observe(plan, batch.scan_seconds)
        if executed == "processes" and pool is not None:
            pool.stats.planner_predicted_ns += plan.predicted_chosen_ns
            pool.stats.planner_actual_ns += batch.scan_seconds * 1e9
        cal = self._calibration
        # Cached gathers don't pay the per-row cost the calibration
        # models, so their timings must not be folded back in.
        if cal is not None and self.gather_cache is None:
            updated = cal.observe(
                executed, batch.unique_rows, batch.scan_seconds
            )
            # Real cold-fetch traffic corrects the planner's per-byte
            # backend cost the same EMA way.
            refined = updated.observe_cold(
                batch.cold_bytes, batch.cold_fetch_seconds
            )
            if refined is not cal:
                self._calibration = refined
                # Rolling refresh: later executors in this process plan
                # from the traffic-corrected constants.
                set_calibration(refined)

    def query_all(self, queries: np.ndarray) -> list[SearchResult]:
        """Run *queries* through the engine in ``batch_size`` chunks."""
        queries = _check_batch(queries, self.index.ndims)
        results: list[SearchResult] = []
        for start in range(0, queries.shape[0], self.batch_size):
            results.extend(
                self.query_batch(queries[start:start + self.batch_size])
            )
        return results
