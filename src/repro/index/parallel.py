"""Process-parallel zero-copy scan execution.

The refinement scan dominates query cost at scale (paper Fig. 7/8), and
Python threads cannot parallelise it: numpy's fancy gather holds the
GIL, so the thread-sharded scan of :mod:`repro.index.batch` tops out
well below the hardware.  This module escapes the GIL with a pool of
**scan worker processes** built around one invariant:

    **no fingerprint byte ever crosses a pipe.**

* Workers attach every store **once at startup** through the zero-copy
  handle layer (:class:`~repro.index.store.StoreHandle`): file-backed
  stores are ``np.memmap``-ed, in-RAM stores are copied once into POSIX
  shared memory (:meth:`~repro.index.store.FingerprintStore.to_shared`)
  and attached by name.
* A work item is metadata only — ``(store name, row ranges, arena
  offset)`` — a few hundred bytes.  The transport layer *measures* every
  payload it pickles and counts any array/bytes content it finds in
  :attr:`PoolStats.fingerprint_bytes_serialized`; the benchmark gate
  asserts that counter stays **zero**.
* Gather output lands in a per-call shared-memory **arena**: each worker
  memcpy's its contiguous store slices into its reserved arena rows, and
  the parent demultiplexes per-query results straight out of the arena
  views.  Results cross the pipe as ``(task id, row count)``.

Failure handling: a killed or crashed worker is detected by liveness
polling while results are awaited; the pool respawns it (the replacement
re-attaches the same handles) and resubmits the dead worker's in-flight
items — arena writes are idempotent, so duplicated execution is
harmless.  A pool that cannot make progress raises
:class:`ParallelScanError`, which the executor layer treats as "fall
back to threads", never as a failed query.

Determinism: workers only move bytes.  Which process copies a slice
never changes what lands where, so results are bit-identical to the
serial scan for any worker count (property-tested in
``tests/index/test_parallel.py``).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import connection
from multiprocessing.connection import Connection
from typing import Optional, Sequence

import numpy as np

from ..errors import ReproError
from .store import FingerprintStore, StoreHandle, attach_shm

RowRange = tuple[int, int]

#: Store name used for a monolithic index's single store.
MONOLITHIC_STORE = "store"

#: Environment knobs pinned to ``1`` in worker processes so BLAS/OpenMP
#: runtimes do not oversubscribe the cores the pool already occupies.
WORKER_THREAD_ENV = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)

_PING_TIMEOUT = 10.0
_RESULT_POLL_SECONDS = 0.05
_STALL_TIMEOUT = 60.0


def segment_store_name(name: str) -> str:
    """Pool store name of the sealed segment called *name*."""
    return f"seg:{name}"


class ParallelScanError(ReproError):
    """The process pool could not complete a scan (callers fall back)."""


def shared_memory_available() -> bool:
    """Whether POSIX shared memory works on this host (cached probe)."""
    global _SHM_AVAILABLE
    if _SHM_AVAILABLE is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=8)
            probe.close()
            probe.unlink()
            _SHM_AVAILABLE = True
        except Exception:
            _SHM_AVAILABLE = False
    return _SHM_AVAILABLE


_SHM_AVAILABLE: Optional[bool] = None


def can_process_scan(stores: Sequence[FingerprintStore]) -> bool:
    """Whether a :class:`ProcessScanPool` can serve these stores.

    True when every store already has file backing (pure mmap attach) or
    shared memory is available to copy the in-RAM ones into.

    Callers pass only **resident** stores: a cold segment's bytes live
    in the blob backend, so it is scanned through the tier manager's
    fetch path, never through the pool.  An all-cold index therefore
    has no pool-servable stores at all (this returns ``False``).  Tier
    demotions may unlink a ``.store`` file a live worker still has
    mmap-attached — that is safe on POSIX (the inode outlives the
    mapping) and the executor rebuilds the pool on the next batch, when
    the resident name set no longer matches its key.
    """
    if not stores:
        return False
    if all(
        s.shared_handle is not None and s.shared_handle.kind == "file"
        for s in stores
    ):
        return True
    return shared_memory_available()


@dataclass
class PoolStats:
    """Transport and lifecycle counters of one :class:`ProcessScanPool`.

    ``fingerprint_bytes_serialized`` counts array/buffer payload bytes
    found in anything the pool pickled onto a pipe — the zero-copy
    contract says it stays 0, and the benchmark gate asserts it.
    """

    workers: int = 0
    scans: int = 0
    tasks: int = 0
    items_skipped: int = 0
    rows_gathered: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    fingerprint_bytes_serialized: int = 0
    worker_deaths: int = 0
    tasks_retried: int = 0
    shm_stores: int = 0
    mmap_stores: int = 0
    #: Cost the execution planner predicted for the batches this pool
    #: ran vs what they actually took (``repro.index.planner``); both
    #: accumulate so their ratio is the pool-path prediction error.
    planner_predicted_ns: float = 0.0
    planner_actual_ns: float = 0.0

    def snapshot(self) -> dict:
        """JSON-safe copy (the serve layer's ``stats`` payload)."""
        return {
            "workers": self.workers,
            "scans": self.scans,
            "tasks": self.tasks,
            "items_skipped": self.items_skipped,
            "rows_gathered": self.rows_gathered,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "fingerprint_bytes_serialized":
                self.fingerprint_bytes_serialized,
            "worker_deaths": self.worker_deaths,
            "tasks_retried": self.tasks_retried,
            "shm_stores": self.shm_stores,
            "mmap_stores": self.mmap_stores,
            "planner_predicted_ns": round(self.planner_predicted_ns, 1),
            "planner_actual_ns": round(self.planner_actual_ns, 1),
        }


# ----------------------------------------------------------------------
# Arena layout (shared between parent and workers)
# ----------------------------------------------------------------------
def _align8(n: int) -> int:
    return (n + 7) & ~7


def _arena_layout(rows: int, ndims: int) -> tuple[int, int, int]:
    """``(ids offset, timecodes offset, total bytes)`` of a scan arena.

    Column blocks are 8-byte aligned so the ``uint32``/``float64`` views
    are aligned regardless of the fingerprint block's size.
    """
    ids_off = _align8(rows * ndims)
    tcs_off = _align8(ids_off + rows * 4)
    return ids_off, tcs_off, tcs_off + rows * 8


def _arena_views(
    buf, rows: int, ndims: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    ids_off, tcs_off, _ = _arena_layout(rows, ndims)
    fps = np.ndarray((rows, ndims), dtype=np.uint8, buffer=buf, offset=0)
    ids = np.ndarray((rows,), dtype=np.uint32, buffer=buf, offset=ids_off)
    tcs = np.ndarray((rows,), dtype=np.float64, buffer=buf, offset=tcs_off)
    return fps, ids, tcs


def split_row_ranges(
    ranges: Sequence[RowRange], parts: int
) -> list[tuple[int, list[RowRange]]]:
    """Split sorted disjoint *ranges* into ≤ *parts* equal-row chunks.

    Returns ``(gathered-row offset, sub-ranges)`` pairs; chunk boundaries
    may fall inside a range (the copy is contiguous either way).  The
    concatenation of the chunks reproduces the input row-for-row, so the
    split never affects results — only which worker copies what.
    """
    total = sum(e - s for s, e in ranges)
    if total == 0:
        return []
    parts = max(1, min(parts, total))
    bounds = [(i * total) // parts for i in range(parts + 1)]
    chunks: list[tuple[int, list[RowRange]]] = []
    for k in range(parts):
        lo, hi = bounds[k], bounds[k + 1]
        if lo == hi:
            continue
        chunk: list[RowRange] = []
        pos = 0
        for s, e in ranges:
            n = e - s
            a, b = max(lo, pos), min(hi, pos + n)
            if a < b:
                chunk.append((s + (a - pos), s + (b - pos)))
            pos += n
            if pos >= hi:
                break
        chunks.append((lo, chunk))
    return chunks


def _payload_array_bytes(obj) -> int:
    """Bytes of array/buffer content inside a transport payload.

    The zero-copy discipline: work items and results are built from
    scalars, strings and tuples only.  Anything buffer-like that sneaks
    in is measured and charged to the fingerprint-bytes counter so the
    benchmark assertion catches the regression.
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (tuple, list)):
        return sum(_payload_array_bytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(
            _payload_array_bytes(k) + _payload_array_bytes(v)
            for k, v in obj.items()
        )
    return 0


@contextmanager
def _single_thread_env():
    """Pin BLAS/OpenMP env knobs to 1 while spawning worker processes.

    Children inherit the environment at fork/spawn time; the parent's
    values are restored immediately after.
    """
    saved = {}
    for key in WORKER_THREAD_ENV:
        saved[key] = os.environ.get(key)
        os.environ[key] = "1"
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _worker_main(worker_id, handles, conn):
    """Scan worker loop: attach stores once, then copy ranges into arenas.

    The transport is this worker's private duplex pipe — no lock or
    queue is shared with any other process, so a worker killed at any
    instant can never wedge its siblings or its own replacement (a
    ``multiprocessing.Queue`` reader dies holding the shared read lock).
    """
    for key in WORKER_THREAD_ENV:
        os.environ.setdefault(key, "1")
    try:
        stores = {
            name: FingerprintStore.open_shared(handle)
            for name, handle in handles.items()
        }
    except Exception as exc:  # unattachable handle: not survivable
        conn.send(("fatal", worker_id, f"{type(exc).__name__}: {exc}"))
        return
    conn.send(("ready", worker_id, os.getpid()))
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # parent went away
            break
        if msg is None:
            break
        if msg[0] == "ping":
            conn.send(("pong", msg[1], worker_id))
            continue
        _, task_id, store_name, ranges, arena_name, arena_rows, row_offset \
            = msg
        try:
            store = stores[store_name]
            shm = attach_shm(arena_name)
            try:
                fps, ids, tcs = _arena_views(
                    shm.buf, arena_rows, store.ndims
                )
                at = row_offset
                for s, e in ranges:
                    n = e - s
                    fps[at:at + n] = store.fingerprints[s:e]
                    ids[at:at + n] = store.ids[s:e]
                    tcs[at:at + n] = store.timecodes[s:e]
                    at += n
                del fps, ids, tcs
            finally:
                shm.close()
            conn.send(("ok", task_id, at - row_offset))
        except Exception as exc:
            conn.send(("err", task_id, f"{type(exc).__name__}: {exc}"))


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class ScanArena:
    """One scan call's gathered columns, living in shared memory.

    ``columns(i)`` returns the ``(ids, timecodes, fingerprints)`` views
    of logical item *i*.  The views are only valid until :meth:`close`;
    the batch demux fancy-indexes per-query copies out of them before
    the arena is released, so no shared page outlives the call.
    """

    def __init__(self, shm, rows: int, ndims: int,
                 item_bounds: list[tuple[int, int]]):
        self._shm = shm
        self.rows = rows
        self._bounds = item_bounds
        fps, ids, tcs = _arena_views(shm.buf, rows, ndims)
        self._fps, self._ids, self._tcs = fps, ids, tcs

    def columns(
        self, item: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        s, e = self._bounds[item]
        return self._ids[s:e], self._tcs[s:e], self._fps[s:e]

    def close(self) -> None:
        if self._shm is None:
            return
        self._fps = self._ids = self._tcs = None
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double close
            pass
        self._shm = None

    def __enter__(self) -> "ScanArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class _Worker:
    process: multiprocessing.process.BaseProcess
    conn: Connection
    respawns: int = 0


class ProcessScanPool:
    """A pool of scan processes with per-worker store affinity.

    Parameters
    ----------
    stores:
        ``name -> store`` mapping of every store the pool may be asked
        to scan.  Stores with zero-copy backing (mmap/shm) are attached
        as-is; in-RAM stores are copied into shared memory **once**,
        here — never per query.
    workers:
        Number of scan processes.
    context:
        ``multiprocessing`` start method; default ``fork`` where
        available (instant start, inherited page cache), else ``spawn``.
    max_task_retries:
        Resubmissions tolerated per scan call before the pool gives up
        with :class:`ParallelScanError`.
    """

    def __init__(
        self,
        stores: dict[str, FingerprintStore],
        workers: int,
        context: Optional[str] = None,
        max_task_retries: int = 8,
    ):
        if workers < 1:
            raise ParallelScanError(f"workers must be >= 1, got {workers}")
        if not stores:
            raise ParallelScanError("a scan pool needs at least one store")
        ndims = {s.ndims for s in stores.values()}
        if len(ndims) != 1:
            raise ParallelScanError(
                f"stores must share one dimension, got {sorted(ndims)}"
            )
        self.ndims = ndims.pop()
        self.workers = workers
        self.stats = PoolStats(workers=workers)
        self._max_task_retries = max_task_retries
        self._closed = False
        self._task_seq = 0
        self._owned_shm: list = []
        self._handles: dict[str, StoreHandle] = {}
        self._store_slot: dict[str, int] = {}
        for slot, (name, store) in enumerate(stores.items()):
            handle = store.shared_handle
            if handle is None:
                shared, shm = store.to_shared()
                self._owned_shm.append(shm)
                handle = shared.shared_handle
                self.stats.shm_stores += 1
            elif handle.kind == "shm":
                self.stats.shm_stores += 1
            else:
                self.stats.mmap_stores += 1
            self._handles[name] = handle
            self._store_slot[name] = slot

        if context is None:
            methods = multiprocessing.get_all_start_methods()
            context = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(context)
        self._workers: list[_Worker] = []
        try:
            for wid in range(workers):
                self._workers.append(self._spawn(wid))
            self.ping()
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, worker_id: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, self._handles, child_conn),
            daemon=True,
            name=f"s3-scan-{worker_id}",
        )
        with _single_thread_env():
            process.start()
        child_conn.close()
        return _Worker(process=process, conn=parent_conn)

    def ping(self, timeout: float = _PING_TIMEOUT) -> None:
        """Block until every worker has attached its stores and answered."""
        self._task_seq += 1
        ping_id = -self._task_seq
        for worker in self._workers:
            self._put(worker, ("ping", ping_id))
        awaiting = set(range(self.workers))
        deadline = time.monotonic() + timeout
        while awaiting:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ParallelScanError(
                    f"scan workers {sorted(awaiting)} did not answer ping"
                )
            for wid, msg in self._poll(min(remaining, 0.2)):
                if msg[0] == "fatal":
                    raise ParallelScanError(
                        f"scan worker {msg[1]} failed to attach stores: "
                        f"{msg[2]}"
                    )
                if msg[0] == "pong" and msg[1] == ping_id:
                    awaiting.discard(msg[2])

    def close(self) -> None:
        """Stop the workers and release every owned shared-memory block."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except Exception:
                pass
        deadline = time.monotonic() + 2.0
        for worker in self._workers:
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(1.0)
        for worker in self._workers:
            worker.conn.close()
        for shm in self._owned_shm:
            try:
                shm.close()
                shm.unlink()
            except Exception:  # pragma: no cover - already gone
                pass
        self._owned_shm.clear()

    def __enter__(self) -> "ProcessScanPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # scanning
    # ------------------------------------------------------------------
    def scan_union(
        self, store_name: str, ranges: Sequence[RowRange]
    ) -> ScanArena:
        """Gather the union *ranges* of one store, sharded over all workers.

        Returns a single-item :class:`ScanArena` whose ``columns(0)`` is
        exactly what the serial gather would produce, in the same order.
        """
        chunks = split_row_ranges(ranges, self.workers)
        total = sum(e - s for s, e in ranges)
        entries = [
            (store_name, chunk, offset, wid % self.workers)
            for wid, (offset, chunk) in enumerate(chunks)
        ]
        return self._execute(entries, total, [(0, total)])

    def scan_stores(
        self, items: Sequence[tuple[str, Sequence[RowRange]]]
    ) -> ScanArena:
        """Gather each item's ranges from its store, one task per item.

        Item *i* of the returned arena corresponds to ``items[i]``.
        Tasks are routed with **store affinity**: a given store's scans
        always land on the same worker (slot modulo pool size), so each
        sealed segment is read through the mapping of the process that
        owns it and stays hot in that process's page-cache view.
        """
        entries = []
        bounds = []
        offset = 0
        for store_name, ranges in items:
            rows = sum(e - s for s, e in ranges)
            bounds.append((offset, offset + rows))
            if rows:
                entries.append((
                    store_name, list(ranges), offset,
                    self._store_slot[store_name] % self.workers,
                ))
            else:
                # Pre-filtered (or naturally empty) items never become
                # worker tasks; the counter makes that visible upstream.
                self.stats.items_skipped += 1
            offset += rows
        return self._execute(entries, offset, bounds)

    # ------------------------------------------------------------------
    def _execute(
        self,
        entries: Sequence[tuple[str, list[RowRange], int, int]],
        total_rows: int,
        item_bounds: list[tuple[int, int]],
    ) -> ScanArena:
        if self._closed:
            raise ParallelScanError("scan pool is closed")
        from multiprocessing import shared_memory

        _, _, size = _arena_layout(total_rows, self.ndims)
        shm = shared_memory.SharedMemory(create=True, size=max(size, 1))
        try:
            self._run(entries, shm.name, total_rows)
        except BaseException:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            raise
        self.stats.scans += 1
        self.stats.rows_gathered += total_rows
        return ScanArena(shm, total_rows, self.ndims, item_bounds)

    def _put(self, worker: _Worker, payload) -> None:
        encoded = pickle.dumps(payload)
        self.stats.bytes_sent += len(encoded)
        self.stats.fingerprint_bytes_serialized += \
            _payload_array_bytes(payload)
        try:
            worker.conn.send(payload)
        except (BrokenPipeError, OSError):
            # Dead worker: _heal() notices on the next poll round and
            # resubmits whatever was routed here.
            pass

    def _poll(self, timeout: float) -> list[tuple[int, tuple]]:
        """Drain every readable worker pipe; returns ``(wid, msg)`` pairs.

        A pipe at EOF (worker died) is closed here; the death itself is
        handled by :meth:`_heal` via ``is_alive``.
        """
        by_conn = {
            w.conn: wid
            for wid, w in enumerate(self._workers)
            if not w.conn.closed
        }
        messages = []
        for conn in connection.wait(list(by_conn), timeout=timeout):
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                conn.close()
                continue
            self.stats.bytes_received += len(pickle.dumps(msg))
            messages.append((by_conn[conn], msg))
        return messages

    def _run(self, entries, arena_name: str, arena_rows: int) -> None:
        pending: dict[int, tuple[int, tuple]] = {}
        for store_name, ranges, row_offset, wid in entries:
            self._task_seq += 1
            task = (
                "gather", self._task_seq, store_name, tuple(ranges),
                arena_name, arena_rows, row_offset,
            )
            self._put(self._workers[wid], task)
            pending[self._task_seq] = (wid, task)
            self.stats.tasks += 1
        retries = 0
        last_progress = time.monotonic()
        while pending:
            messages = self._poll(_RESULT_POLL_SECONDS)
            if not messages:
                resubmitted = self._heal(pending)
                retries += resubmitted
                if retries > self._max_task_retries:
                    raise ParallelScanError(
                        "scan workers keep dying; giving up after "
                        f"{retries} resubmissions"
                    )
                if resubmitted:
                    last_progress = time.monotonic()
                elif time.monotonic() - last_progress > _STALL_TIMEOUT:
                    raise ParallelScanError(
                        f"scan made no progress for {_STALL_TIMEOUT:.0f}s "
                        f"({len(pending)} tasks outstanding)"
                    )
                continue
            last_progress = time.monotonic()
            for _wid, msg in messages:
                kind = msg[0]
                if kind == "ok":
                    pending.pop(msg[1], None)
                elif kind == "err":
                    if msg[1] in pending:
                        raise ParallelScanError(
                            f"scan task failed: {msg[2]}"
                        )
                elif kind == "fatal":
                    raise ParallelScanError(
                        f"scan worker {msg[1]} failed to attach stores: "
                        f"{msg[2]}"
                    )
                # stale pongs/readies/oks from an aborted call: dropped

    def _heal(self, pending: dict[int, tuple[int, tuple]]) -> int:
        """Respawn dead workers; resubmit their in-flight tasks.

        Returns the number of resubmissions.  Arena writes are
        idempotent, so a task that was actually completed (its result
        lost with the dying process's queue feeder) is safely redone.
        """
        resubmitted = 0
        for wid, worker in enumerate(self._workers):
            if worker.process.is_alive():
                continue
            self.stats.worker_deaths += 1
            worker.conn.close()
            replacement = self._spawn(wid)
            replacement.respawns = worker.respawns + 1
            self._workers[wid] = replacement
            for task_id, (owner, task) in list(pending.items()):
                if owner == wid:
                    self._put(replacement, task)
                    resubmitted += 1
                    self.stats.tasks_retried += 1
        return resubmitted

    # ------------------------------------------------------------------
    def kill_worker(self, worker_id: int = 0) -> int:
        """Kill one worker process (fault-injection hook for tests).

        Returns the killed pid.  The next scan detects the death,
        respawns the worker and retries its items.
        """
        process = self._workers[worker_id].process
        pid = process.pid
        process.kill()
        process.join(2.0)
        return pid
