"""Index diagnostics: occupancy and curve-clustering measurements.

The S³ design leans on two empirical properties the paper asserts but
never needs to expose programmatically:

* **block occupancy** — real fingerprints cluster, so p-blocks are far
  from uniformly filled; the occupancy profile explains where refinement
  time goes and how the depth trade-off behaves on a given corpus;
* **curve clustering** — blocks selected together by a query merge into
  few contiguous row sections (the Hilbert curve's locality), which is
  what bounds the dispersion of memory accesses.

This module computes both, for operators tuning an index and for the
diagnostics example.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .s3 import S3Index


@dataclass(frozen=True)
class OccupancySummary:
    """Distribution of rows over the populated p-blocks at one depth."""

    depth: int
    total_blocks: int
    populated_blocks: int
    max_rows: int
    mean_rows: float
    gini: float

    @property
    def occupancy_rate(self) -> float:
        """Fraction of the partition's blocks holding at least one row."""
        return self.populated_blocks / self.total_blocks


def block_occupancy(index: S3Index, depth: int | None = None) -> np.ndarray:
    """Return the per-populated-block row counts at *depth*.

    Counts only populated blocks (the partition has ``2^depth`` blocks in
    total, nearly all empty for realistic depths).
    """
    depth = index.depth if depth is None else depth
    if not 1 <= depth <= index.layout.max_depth:
        raise ConfigurationError(
            f"depth must be in [1, {index.layout.max_depth}], got {depth}"
        )
    shift = np.uint64(index.layout.key_bits - depth)
    prefixes = index.layout.keys >> shift
    _, counts = np.unique(prefixes, return_counts=True)
    return counts


def occupancy_summary(index: S3Index, depth: int | None = None) -> OccupancySummary:
    """Summarise the occupancy distribution at *depth*."""
    depth = index.depth if depth is None else depth
    counts = block_occupancy(index, depth)
    return OccupancySummary(
        depth=depth,
        total_blocks=1 << depth,
        populated_blocks=int(counts.size),
        max_rows=int(counts.max()),
        mean_rows=float(counts.mean()),
        gini=_gini(counts),
    )


def _gini(counts: np.ndarray) -> float:
    """Gini coefficient of the occupancy distribution (0 = uniform)."""
    sorted_counts = np.sort(counts.astype(np.float64))
    n = sorted_counts.size
    if n == 0 or sorted_counts.sum() == 0:
        return 0.0
    cum = np.cumsum(sorted_counts)
    return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)


@dataclass(frozen=True)
class ClusteringSummary:
    """How well selected blocks merge into contiguous row sections."""

    queries: int
    mean_blocks: float
    mean_sections: float

    @property
    def merge_factor(self) -> float:
        """Blocks per contiguous section (> 1 = clustering at work)."""
        if self.mean_sections == 0:
            return float("inf")
        return self.mean_blocks / self.mean_sections


def clustering_summary(
    index: S3Index,
    queries: np.ndarray,
    alpha: float,
    depth: int | None = None,
) -> ClusteringSummary:
    """Measure the Hilbert clustering benefit on a query sample.

    For each query, counts the selected blocks and the merged row ranges;
    their ratio is the number of neighbouring-block coalescings the curve
    provided per section.
    """
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim != 2 or queries.shape[0] == 0:
        raise ConfigurationError("queries must be a non-empty (N, D) array")
    blocks = 0.0
    sections = 0.0
    for q in queries:
        selection = index.block_selection(q, alpha, depth=depth)
        ranges = index.row_ranges(selection)
        blocks += len(selection)
        sections += len(ranges)
    n = queries.shape[0]
    return ClusteringSummary(
        queries=n, mean_blocks=blocks / n, mean_sections=sections / n
    )
