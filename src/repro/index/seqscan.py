"""Sequential scan baseline (paper §V-B).

The reference method the paper measures the S³ index against: a brute-force
ε-range query that touches every fingerprint.  It is deliberately written
the same way the index's refinement step is (chunked, vectorised distance
computations over the raw byte columns) so the two are comparable — the
paper makes the same point ("we implemented our own version of the
sequential scan so that the two methods are comparable").
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..errors import ConfigurationError, IndexError_
from .kernels import squared_distances
from .s3 import QueryStats, SearchResult
from .store import FingerprintStore

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .options import QueryOptions


class SequentialScanIndex:
    """Chunked brute-force ε-range search over a fingerprint store."""

    def __init__(self, store: FingerprintStore, chunk_rows: int = 262_144):
        if len(store) == 0:
            raise IndexError_("cannot scan an empty store")
        if chunk_rows < 1:
            raise ConfigurationError(f"chunk_rows must be >= 1, got {chunk_rows}")
        self.store = store
        self.chunk_rows = chunk_rows

    def __len__(self) -> int:
        return len(self.store)

    @property
    def ndims(self) -> int:
        return self.store.ndims

    @property
    def supports_coalesced_scans(self) -> bool:
        """False: every query is one full pass, nothing to coalesce."""
        return False

    def range_query(
        self,
        query: np.ndarray,
        epsilon: float,
        options: Optional["QueryOptions"] = None,
    ) -> SearchResult:
        """Return every fingerprint within *epsilon* of *query* (exact).

        ``options`` is accepted for :class:`~repro.index.IndexProtocol`
        uniformity; a brute-force scan has no knobs it applies to.
        """
        query = np.asarray(query, dtype=np.float64).ravel()
        if query.size != self.ndims:
            raise ConfigurationError(
                f"query has {query.size} components, store has {self.ndims}"
            )
        if epsilon < 0:
            raise ConfigurationError(f"epsilon must be >= 0, got {epsilon}")

        t0 = time.perf_counter()
        eps_sq = float(epsilon) ** 2
        hits: list[np.ndarray] = []
        dists: list[np.ndarray] = []
        fp = self.store.fingerprints
        for start in range(0, len(self), self.chunk_rows):
            stop = min(start + self.chunk_rows, len(self))
            dist_sq = squared_distances(fp[start:stop], query)
            local = np.nonzero(dist_sq <= eps_sq)[0]
            if local.size:
                hits.append(local + start)
                dists.append(np.sqrt(dist_sq[local]))
        rows = (
            np.concatenate(hits) if hits else np.empty(0, dtype=np.int64)
        )
        distances = (
            np.concatenate(dists) if dists else np.empty(0, dtype=np.float64)
        )
        t1 = time.perf_counter()

        stats = QueryStats(
            blocks_selected=0,
            sections_scanned=1,
            rows_scanned=len(self),
            results=int(rows.size),
            refine_seconds=t1 - t0,
        )
        return SearchResult(
            rows=rows,
            ids=self.store.ids[rows],
            timecodes=self.store.timecodes[rows],
            fingerprints=self.store.fingerprints[rows],
            distances=distances,
            stats=stats,
        )

    def knn_query(self, query: np.ndarray, k: int) -> SearchResult:
        """Exact k-nearest-neighbour query (for the k-NN ablation).

        The paper argues k-NN search is ill-suited to copy detection
        because the number of relevant fingerprints per query varies wildly
        (§I); this exact scan provides the comparison point.
        """
        query = np.asarray(query, dtype=np.float64).ravel()
        if query.size != self.ndims:
            raise ConfigurationError(
                f"query has {query.size} components, store has {self.ndims}"
            )
        if not 1 <= k <= len(self):
            raise ConfigurationError(f"k must be in [1, {len(self)}], got {k}")

        t0 = time.perf_counter()
        dist_sq = squared_distances(self.store.fingerprints, query)
        rows = np.argpartition(dist_sq, k - 1)[:k]
        rows = rows[np.argsort(dist_sq[rows], kind="stable")]
        t1 = time.perf_counter()

        stats = QueryStats(
            rows_scanned=len(self),
            results=k,
            sections_scanned=1,
            refine_seconds=t1 - t0,
        )
        return SearchResult(
            rows=rows,
            ids=self.store.ids[rows],
            timecodes=self.store.timecodes[rows],
            fingerprints=self.store.fingerprints[rows],
            distances=np.sqrt(dist_sq[rows]),
            stats=stats,
        )
