"""The unified query-options surface of every index front-end.

Query tuning used to drift across entry points: ``alpha``,
``batch_size``, ``workers``, ``executor`` and the gather threshold were
passed as ad-hoc keywords with different spellings to
:class:`~repro.index.batch.BatchQueryExecutor`,
:class:`~repro.cbcd.detector.CopyDetector`,
:class:`~repro.cbcd.monitor.StreamMonitor`, the CLI and
:class:`~repro.serve.server.ServeConfig`.  :class:`QueryOptions` is the
one dataclass they all accept now (``options=``), carrying the query
expectation, the batching/sharding knobs and the pre-filter mode of the
segment-sketch tier (:mod:`repro.index.segmented.sketch`).

``alpha`` and ``depth`` remain first-class method parameters too — they
are query *semantics* from the paper, not engine tuning — but every
tuning keyword outside ``options=`` is deprecated: the old spellings
keep working through :func:`warn_deprecated_kwargs` shims that emit
``DeprecationWarning`` (CI lints internal use; see ``docs/prefilter.md``
for the migration note).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Iterable, Optional

from ..errors import ConfigurationError
from .planner import PLANNER_MODES

#: Executor strategies accepted by the batched engine (canonical home;
#: re-exported by :mod:`repro.index.batch` for compatibility).
EXECUTOR_STRATEGIES = ("auto", "threads", "processes")

#: Pre-filter modes of the segment-sketch tier.  ``"auto"`` consults a
#: segment's sketch whenever one is loaded (always, for segmented
#: indexes — sketches are built at seal/compaction time), ``"on"``
#: behaves identically today and additionally promises sketch use as
#: formats evolve, ``"off"`` bypasses the tier entirely.  All three
#: return bit-identical results; the mode only changes what is *read*.
PREFILTER_MODES = ("auto", "on", "off")

#: Cold-segment prefetch modes of the tiered-storage subsystem.
#: ``"auto"`` overlaps blob-backend fetches with resident scans via the
#: tier manager's prefetcher; ``"off"`` fetches synchronously at the
#: point of need (deterministic ordering for debugging, or backends
#: that dislike concurrency).  Results are bit-identical either way.
PREFETCH_MODES = ("auto", "off")

#: WAL durability modes of the ingest path (canonical definition in
#: :mod:`repro.index.segmented.wal`, re-exported here alongside the
#: other front-end knob vocabularies).  ``"always"`` fsyncs every
#: append, ``"group"`` coalesces concurrent appends into one fsync
#: (durable-on-ack, the serving default), ``"async"`` never fsyncs.
DURABILITY_MODES = ("always", "group", "async")


def validate_durability(value: str, api: str = "durability") -> str:
    """Return *value* if it is a durability mode, else raise with help.

    The shared friendly validation behind ``repro-s3 ingest
    --durability``, ``repro-s3 serve --durability`` and
    :class:`~repro.serve.server.ServeConfig`.
    """
    if value in DURABILITY_MODES:
        return value
    raise ConfigurationError(
        f"{api}: unknown durability mode {value!r} — pick one of "
        f"{', '.join(DURABILITY_MODES)} (always = fsync every append; "
        "group = one fsync per batch of concurrent appends, still "
        "durable before acknowledging; async = no fsync, fastest but "
        "a crash can lose the tail)"
    )


@dataclass(frozen=True)
class QueryOptions:
    """Engine-facing tuning of one query workload.

    Attributes
    ----------
    alpha:
        Expectation of the statistical query (paper §II).
    depth:
        Partition depth override; ``None`` keeps the index default.
    batch_size:
        Queries per batched-engine call.
    workers:
        Shard count for the coalesced gather / segment fan-out.
    executor:
        ``"auto"`` | ``"threads"`` | ``"processes"`` — see
        :class:`~repro.index.batch.BatchQueryExecutor`.
    parallel_gather_min_rows:
        Override of the row count below which gathers are never sharded
        (``None`` keeps the module default).
    prefilter:
        Segment-sketch pre-filter mode (:data:`PREFILTER_MODES`).
    prefetch:
        Cold-segment prefetch mode (:data:`PREFETCH_MODES`); only
        meaningful on a tiered segmented index.
    planner:
        How ``executor="auto"`` decides
        (:data:`~repro.index.planner.PLANNER_MODES`): ``"auto"`` uses
        the measured cost model with a fixed-rule fallback,
        ``"measured"`` insists on the cost model, ``"fixed"`` keeps the
        legacy row-threshold rule.  Ignored when *executor* is explicit.
    """

    alpha: float = 0.8
    depth: Optional[int] = None
    batch_size: int = 32
    workers: int = 1
    executor: str = "auto"
    parallel_gather_min_rows: Optional[int] = None
    prefilter: str = "auto"
    prefetch: str = "auto"
    planner: str = "auto"

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError(
                f"alpha must be in (0, 1], got {self.alpha}"
            )
        if self.depth is not None and self.depth < 1:
            raise ConfigurationError(
                f"depth must be >= 1, got {self.depth}"
            )
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.executor not in EXECUTOR_STRATEGIES:
            raise ConfigurationError(
                f"executor must be one of {EXECUTOR_STRATEGIES!r}, "
                f"got {self.executor!r}"
            )
        if self.parallel_gather_min_rows is not None \
                and self.parallel_gather_min_rows < 0:
            raise ConfigurationError(
                "parallel_gather_min_rows must be >= 0, got "
                f"{self.parallel_gather_min_rows}"
            )
        if self.prefilter not in PREFILTER_MODES:
            raise ConfigurationError(
                f"prefilter must be one of {PREFILTER_MODES!r}, "
                f"got {self.prefilter!r}"
            )
        if self.prefetch not in PREFETCH_MODES:
            raise ConfigurationError(
                f"prefetch must be one of {PREFETCH_MODES!r}, "
                f"got {self.prefetch!r}"
            )
        if self.planner not in PLANNER_MODES:
            raise ConfigurationError(
                f"planner must be one of {PLANNER_MODES!r}, "
                f"got {self.planner!r}"
            )

    # ------------------------------------------------------------------
    @property
    def prefilter_enabled(self) -> bool:
        """Whether the sketch tier may be consulted under this mode."""
        return self.prefilter != "off"

    @property
    def prefetch_enabled(self) -> bool:
        """Whether cold fetches may overlap resident scans."""
        return self.prefetch != "off"

    def replace(self, **changes) -> "QueryOptions":
        """A copy with *changes* applied (validates like the constructor)."""
        return replace(self, **changes)


def warn_deprecated_kwargs(api: str, names: Iterable[str]) -> None:
    """Emit the one ``DeprecationWarning`` of the legacy-kwargs shims.

    ``stacklevel=3`` points at the caller of the shimmed API, not the
    shim itself.
    """
    listed = ", ".join(sorted(set(names)))
    warnings.warn(
        f"{api}: passing {listed} as ad-hoc keyword(s) is deprecated; "
        "pass a repro.index.QueryOptions via options= instead",
        DeprecationWarning,
        stacklevel=3,
    )


def resolve_options(
    api: str,
    options: Optional[QueryOptions],
    *,
    alpha: Optional[float] = None,
    depth: Optional[int] = None,
    **legacy,
) -> QueryOptions:
    """Fold one call's ``options=`` and legacy keywords into QueryOptions.

    *legacy* holds the deprecated tuning keywords (``batch_size``,
    ``workers``, ``executor``, ``parallel_gather_min_rows``) with
    ``None`` meaning "not passed".  Passing any of them without
    ``options=`` works but warns; passing them *alongside* ``options=``
    is ambiguous and raises.  ``alpha``/``depth`` stay first-class: with
    ``options=`` they act as per-call overrides, without it they seed
    the constructed options.
    """
    passed = {k: v for k, v in legacy.items() if v is not None}
    if options is not None:
        if passed:
            raise ConfigurationError(
                f"{api}: pass either options= or the legacy keyword(s) "
                f"{sorted(passed)}, not both"
            )
        changes = {}
        if alpha is not None:
            changes["alpha"] = alpha
        if depth is not None:
            changes["depth"] = depth
        return options.replace(**changes) if changes else options
    if passed:
        warn_deprecated_kwargs(api, passed)
    if alpha is not None:
        passed["alpha"] = alpha
    if depth is not None:
        passed["depth"] = depth
    return QueryOptions(**passed)
