"""Exact k-nearest-neighbour search on the S³ structure.

The paper argues k-NN is the wrong *query semantics* for copy detection
(§I), but the index it builds supports exact k-NN naturally — and a
complete library should offer it.  This is the classic Hjaltason–Samet
incremental best-first search over the partition tree:

* a priority queue orders partition nodes by their minimal distance to the
  query;
* popping a depth-``p`` block scans its (contiguous) rows and updates the
  running k-best set;
* the search terminates as soon as the next node's lower bound exceeds the
  current k-th best distance — which certifies exactness.

Cost counters mirror the other query types, so the k-NN ablation can
compare fairly.
"""

from __future__ import annotations

import heapq
import time

import numpy as np

from ..errors import ConfigurationError
from ..hilbert.partition import PartitionNode
from .s3 import QueryStats, S3Index, SearchResult


def knn_query(
    index: S3Index,
    query: np.ndarray,
    k: int,
    depth: int | None = None,
) -> SearchResult:
    """Return the exact *k* nearest fingerprints to *query*.

    *depth* bounds how far tree nodes are split before being scanned
    (deeper = tighter bounds, more queue churn); defaults to the index's
    partition depth.
    """
    query = np.asarray(query, dtype=np.float64).ravel()
    if query.size != index.ndims:
        raise ConfigurationError(
            f"query has {query.size} components, index has {index.ndims}"
        )
    if not 1 <= k <= len(index):
        raise ConfigurationError(f"k must be in [1, {len(index)}], got {k}")
    depth = index.depth if depth is None else depth
    if not 1 <= depth <= index.layout.max_depth:
        raise ConfigurationError(
            f"depth must be in [1, {index.layout.max_depth}], got {depth}"
        )

    t0 = time.perf_counter()
    fingerprints = index.store.fingerprints
    root = PartitionNode.root(index.curve)
    counter = 0
    heap: list[tuple[float, int, PartitionNode]] = [
        (root.min_sq_distance(query), counter, root)
    ]
    # Max-heap of the best k squared distances (negated) with row ids.
    best: list[tuple[float, int]] = []
    nodes_visited = 0
    rows_scanned = 0
    blocks_scanned = 0

    def kth_bound() -> float:
        if len(best) < k:
            return np.inf
        return -best[0][0]

    while heap:
        bound, _, node = heapq.heappop(heap)
        if bound > kth_bound():
            break
        if node.depth >= depth:
            ranges = index.layout.block_row_ranges(
                np.array([node.prefix], dtype=np.uint64), node.depth
            )
            blocks_scanned += 1
            for start, stop in ranges:
                chunk = fingerprints[start:stop].astype(np.float64) - query
                dist_sq = np.einsum("ij,ij->i", chunk, chunk)
                rows_scanned += stop - start
                for offset, d2 in enumerate(dist_sq):
                    if len(best) < k:
                        heapq.heappush(best, (-d2, start + offset))
                    elif d2 < -best[0][0]:
                        heapq.heapreplace(best, (-d2, start + offset))
            continue
        nodes_visited += 1
        for child in node.children():
            child_bound = child.min_sq_distance(query)
            if child_bound <= kth_bound():
                counter += 1
                heapq.heappush(heap, (child_bound, counter, child))
    t1 = time.perf_counter()

    ordered = sorted(((-negd, row) for negd, row in best))
    rows = np.array([row for _, row in ordered], dtype=np.int64)
    distances = np.sqrt(np.array([d2 for d2, _ in ordered]))
    stats = QueryStats(
        blocks_selected=blocks_scanned,
        sections_scanned=blocks_scanned,
        rows_scanned=rows_scanned,
        results=int(rows.size),
        nodes_visited=nodes_visited,
        filter_seconds=0.0,
        refine_seconds=t1 - t0,
    )
    return SearchResult(
        rows=rows,
        ids=index.store.ids[rows],
        timecodes=index.store.timecodes[rows],
        fingerprints=index.store.fingerprints[rows],
        distances=distances,
        stats=stats,
    )
