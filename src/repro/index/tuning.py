"""Partition-depth tuning (paper §IV-A).

The response time of a query decomposes as ``T(p) = T_f(p) + T_r(p)``: the
filtering time grows with the partition depth ``p`` (more tree nodes, more
block/row lookups) while the refinement time shrinks (smaller blocks, fewer
irrelevant rows scanned).  ``T(p)`` generally has a single minimum
``p_min``, which the paper learns "at the start of the retrieval stage" on
sample queries.  :func:`tune_depth` does exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..distortion.model import IndependentDistortionModel
from ..errors import ConfigurationError
from .s3 import S3Index


@dataclass(frozen=True)
class DepthProfile:
    """Measured cost profile of one candidate depth."""

    depth: int
    filter_seconds: float
    refine_seconds: float
    rows_scanned: float
    blocks_selected: float

    @property
    def total_seconds(self) -> float:
        """Mean response time T(p) at this depth."""
        return self.filter_seconds + self.refine_seconds


def profile_depths(
    index: S3Index,
    queries: np.ndarray,
    alpha: float,
    depths: Sequence[int],
    model: Optional[IndependentDistortionModel] = None,
) -> list[DepthProfile]:
    """Measure mean ``T_f`` / ``T_r`` per query for each candidate depth."""
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim != 2:
        raise ConfigurationError("queries must be a 2-D array (N, D)")
    if queries.shape[0] == 0:
        raise ConfigurationError("need at least one sample query")
    profiles = []
    for depth in depths:
        filter_s = refine_s = rows = blocks = 0.0
        for q in queries:
            result = index.statistical_query(q, alpha, model=model, depth=depth)
            filter_s += result.stats.filter_seconds
            refine_s += result.stats.refine_seconds
            rows += result.stats.rows_scanned
            blocks += result.stats.blocks_selected
        num = queries.shape[0]
        profiles.append(
            DepthProfile(
                depth=depth,
                filter_seconds=filter_s / num,
                refine_seconds=refine_s / num,
                rows_scanned=rows / num,
                blocks_selected=blocks / num,
            )
        )
    return profiles


def tune_depth(
    index: S3Index,
    queries: np.ndarray,
    alpha: float,
    depths: Optional[Sequence[int]] = None,
    model: Optional[IndependentDistortionModel] = None,
    apply: bool = True,
) -> tuple[int, list[DepthProfile]]:
    """Learn ``p_min`` on sample queries and (optionally) apply it.

    Returns the depth with the smallest measured mean response time and the
    full profile list.  With ``apply=True`` (default) the index's default
    depth is updated, mirroring the paper's start-of-retrieval learning
    step.
    """
    if depths is None:
        hi = index.layout.max_depth
        lo = max(1, min(4, hi))
        depths = sorted(set(range(lo, hi + 1, max(1, (hi - lo) // 8 or 1))))
    profiles = profile_depths(index, queries, alpha, depths, model=model)
    best = min(profiles, key=lambda prof: prof.total_seconds)
    if apply:
        index.depth = best.depth
    return best.depth, profiles
