"""The segmented (LSM-style) S³ index: online ingestion over sealed segments.

The paper's S³ structure is static — "no dynamic insertion or deletion
are possible" — which matches its batch experiments but not its
operational setting (INA references new broadcast material every day).
:class:`SegmentedS3Index` converts the structure into a servable,
continuously growing engine with the classic log-structured recipe:

* inserts land in a mutable in-memory **memtable** after being made
  durable in a **write-ahead log** (:mod:`.wal` — per-append, group or
  async fsync, see the ``durability`` knob);
* when the memtable exceeds ``flush_rows`` it is **sealed**: sorted along
  the Hilbert curve and written as an immutable segment — a
  :class:`~repro.index.store.FingerprintStore` +
  :class:`~repro.index.table.HilbertLayout` pair in the existing on-disk
  format — after which the WAL is rotated;
* **compaction** (:mod:`.compaction`) merges small segments back into one
  Hilbert-ordered segment so query fan-out stays bounded;
* queries compute the block selection **once** (it depends only on the
  query, the distortion model and the shared curve geometry — not on the
  data) and fan it out across every sealed segment plus the memtable,
  merging the per-segment results.  The answer is therefore *identical*
  to a monolithic :class:`~repro.index.s3.S3Index` over the union of the
  records, for statistical and ε-range queries alike.

A ``MANIFEST.json`` (:mod:`.manifest`) tracks the live segments and the
current WAL; reopening a directory after a crash replays the WAL, so no
acknowledged insert is ever lost.

**Snapshot isolation.**  All live structure hangs off one immutable
:class:`_LiveView` — the tuple of sealed segments, the tuple of frozen
(seal-pending) memtables, and the active memtable.  Writers (seal,
compaction, tier transitions) build a *new* view and swap it atomically
under the state lock; readers capture the current view once per query
(:meth:`SegmentedS3Index._read_view`) and scan that consistent set even
while a background seal or compaction switches the live one over.
Sealing is split into **freeze** (rotate the WAL, park the memtable on
the frozen list — cheap, blocks appends only for the rotation) and
**seal** (curve-sort and write the segment — heavy, runs entirely off
the ingest path), so a :class:`.maintenance.MaintenanceThread` can do
the heavy half in the background while queries and ingest proceed.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, NamedTuple, Optional

import numpy as np

from ...distortion.model import IndependentDistortionModel, NormalDistortionModel
from ...errors import (
    ConfigurationError,
    IndexError_,
    IngestBackpressure,
    StorageError,
)
from ...hilbert.butz import HilbertCurve
from ..filtering import BlockSelection, range_blocks, statistical_blocks_cached
from ..kernels import range_refine
from ..options import QueryOptions
from ..s3 import QueryStats, S3Index, SearchResult
from ..store import FingerprintStore, PathLike
from .compaction import CompactionPolicy, merge_segment_stores
from .maintenance import MaintenanceConfig, MaintenanceThread
from .manifest import (
    Manifest,
    SegmentMeta,
    segment_filename,
    wal_filename,
)
from .memtable import MemTable
from .sketch import SegmentSketch, SketchConfig, sketch_filename
from .wal import WriteAheadLog, replay

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ...storage.coldseg import ColdSegmentReader
    from ...storage.manager import StorageConfig, TierManager


@dataclass
class SegmentedQueryStats(QueryStats):
    """Aggregated cost of one fan-out query, plus the per-segment split.

    ``segments_scanned`` counts every live segment the fan-out covered
    (its historical meaning); ``segments_skipped`` counts how many of
    those the sketch tier proved empty without touching their store, and
    ``blocks_skipped`` the selected blocks pruned per segment before the
    row-range lookup.
    """

    segments_scanned: int = 0
    segments_skipped: int = 0
    blocks_skipped: int = 0
    memtable_rows_scanned: int = 0
    segments_cold: int = 0
    cold_rows: int = 0
    per_segment: list[QueryStats] = field(default_factory=list)


@dataclass
class Segment:
    """One sealed, immutable segment: manifest entry, index and sketch.

    ``sketch`` is ``None`` only transiently (segments from directories
    written before the sketch tier, prior to the rebuild in
    :meth:`SegmentedS3Index.open`).

    Exactly one of ``index`` / ``cold`` is set: a **resident** segment
    (hot or warm tier) carries its :class:`S3Index`; a **cold** one
    carries a :class:`~repro.storage.coldseg.ColdSegmentReader` — keys
    sidecar only, store bytes in the blob backend.  ``layout`` abstracts
    over the two, so block selection code never cares about tiers.

    Segment objects are themselves immutable once published in a view:
    tier transitions build a *replacement* Segment and swap it in
    (:meth:`SegmentedS3Index._swap_segment`), so a query pinned on an
    old view keeps a usable object however the live tiering moves.
    """

    meta: SegmentMeta
    index: Optional[S3Index]
    sketch: Optional[SegmentSketch] = None
    cold: Optional["ColdSegmentReader"] = None

    @property
    def resident(self) -> bool:
        return self.index is not None

    @property
    def layout(self):
        """The segment's :class:`HilbertLayout`, whatever its tier."""
        if self.index is not None:
            return self.index.layout
        if self.cold is None:
            raise StorageError(
                f"segment {self.meta.name} has neither index nor cold reader"
            )
        return self.cold.layout


@dataclass
class CompactionResult:
    """Outcome of one compaction step."""

    merged_segments: int
    merged_rows: int
    segment_name: str
    seconds: float


@dataclass(frozen=True)
class _FrozenMemtable:
    """A memtable parked between freeze and seal (immutable).

    ``wal_names`` are the log files backing its records — removed from
    the manifest's ``frozen_wals`` and unlinked only once the segment
    they seal into is durable.  ``seal_seq`` is the sequence number the
    freeze reserved for both the rotated WAL and the eventual segment,
    so one flush consumes one number (``seg-N`` next to ``wal-N``,
    exactly as the pre-pipelined inline seal named them).
    """

    memtable: MemTable
    rows: int
    wal_names: tuple[str, ...]
    seal_seq: int


@dataclass(frozen=True)
class _LiveView:
    """The atomically-swapped snapshot of all live structure."""

    segments: tuple[Segment, ...]
    frozen: tuple[_FrozenMemtable, ...]
    memtable: MemTable


class ReadView(NamedTuple):
    """What one query scans: a pinned, internally consistent snapshot.

    ``memtable_rows`` bounds the active-memtable scan to the rows that
    were published when the snapshot was taken — appends racing the
    query are excluded wholesale instead of half-seen.
    """

    segments: tuple[Segment, ...]
    frozen: tuple[_FrozenMemtable, ...]
    memtable: MemTable
    memtable_rows: int


class _RWGate:
    """Writer-preferring reader-writer gate for WAL rotation.

    Appenders hold the shared side across WAL append + memtable insert,
    so the exclusive side (freeze) observes no in-flight append: every
    acknowledged record is in *both* the log being rotated out and the
    memtable being frozen, or in neither.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False

    @contextmanager
    def shared(self):
        with self._cond:
            while self._writer:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def exclusive(self):
        with self._cond:
            while self._writer:
                self._cond.wait()
            self._writer = True
            while self._readers:
                self._cond.wait()
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


class SegmentedS3Index:
    """A live, crash-recoverable S³ index composed of sealed segments.

    Use :meth:`create` to initialise a fresh directory and :meth:`open`
    to reopen one (replaying the WAL).  All segments share one geometry
    — dimension, curve order, key levels, partition depth — fixed at
    creation time and recorded in the manifest.

    Thread model: any number of query threads plus any number of ingest
    threads are safe concurrently (queries pin snapshot views; ingests
    group-commit through the WAL's lock).  Maintenance — seal,
    compaction, tier settling — is serialised by the maintenance lock,
    whether it runs inline (``flush()``/``compact()``) or on the
    background worker (:meth:`start_maintenance`).
    """

    def __init__(
        self,
        directory: Path,
        manifest: Manifest,
        segments: list[Segment],
        memtable: MemTable,
        wal: WriteAheadLog,
        model: Optional[IndependentDistortionModel],
        flush_rows: int,
        policy: CompactionPolicy,
        auto_compact: bool,
        sketch_config: Optional[SketchConfig] = None,
    ):
        self.directory = directory
        self.manifest = manifest
        self._view = _LiveView(tuple(segments), (), memtable)
        self._wal = wal
        self.model = model
        self.flush_rows = flush_rows
        self.policy = policy
        self.auto_compact = auto_compact
        self.sketch_config = sketch_config or SketchConfig()
        self.curve = HilbertCurve(manifest.ndims, manifest.order)
        self._threshold_cache: dict[tuple, float] = {}
        #: The tier manager, set by :meth:`attach_storage` (directly or
        #: via :meth:`open`'s ``storage=``).  ``None`` = untiered: every
        #: segment resident, no budget, no blob backend.
        self.storage: Optional["TierManager"] = None
        # Concurrency: view swaps + manifest writes under _state_lock;
        # memtable inserts under _ingest_lock; seal/compact/settle under
        # _maint_lock; WAL rotation behind the gate's exclusive side.
        self._state_lock = threading.RLock()
        self._ingest_lock = threading.Lock()
        self._maint_lock = threading.RLock()
        self._wal_gate = _RWGate()
        #: WAL files backing the *active* memtable (more than one right
        #: after an open() that replayed frozen logs).
        self._active_wal_names: list[str] = (
            list(manifest.frozen_wals) + [manifest.wal]
        )
        self._maintenance: Optional[MaintenanceThread] = None
        self._shed_count = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: PathLike,
        ndims: int,
        order: int = 8,
        key_levels: int = 2,
        depth: Optional[int] = None,
        model: Optional[IndependentDistortionModel] = None,
        flush_rows: int = 8192,
        policy: Optional[CompactionPolicy] = None,
        auto_compact: bool = True,
        sync: bool = True,
        durability: Optional[str] = None,
        sketch_config: Optional[SketchConfig] = None,
        storage: Optional["StorageConfig"] = None,
    ) -> "SegmentedS3Index":
        """Initialise a fresh segmented index in *directory*.

        With *storage*, the directory is tiered from birth: the config
        is recorded in the manifest and sealed segments demote to the
        blob backend whenever the resident set exceeds the budget.

        *durability* picks the WAL fsync policy (``"always"``,
        ``"group"`` or ``"async"``, see :mod:`.wal`); when ``None`` the
        legacy *sync* flag decides (``True`` → always, ``False`` →
        async).
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if Manifest.exists(directory):
            raise IndexError_(
                f"already a segmented index directory: {directory}"
            )
        if ndims < 1:
            raise ConfigurationError(f"ndims must be >= 1, got {ndims}")
        key_bits = key_levels * ndims
        if not 1 <= key_bits <= 64:
            raise ConfigurationError(
                f"key_levels * ndims must be in [1, 64], got {key_bits}"
            )
        if depth is None:
            depth = min(16, key_bits)
        if not 1 <= depth <= key_bits:
            raise ConfigurationError(
                f"depth must be in [1, {key_bits}], got {depth}"
            )
        if model is not None and model.ndims != ndims:
            raise ConfigurationError(
                f"model dimension {model.ndims} != index dimension {ndims}"
            )
        if flush_rows < 1:
            raise ConfigurationError(
                f"flush_rows must be >= 1, got {flush_rows}"
            )
        manifest = Manifest(
            ndims=ndims,
            order=order,
            key_levels=key_levels,
            depth=depth,
            sigma=getattr(model, "sigma", None),
            next_seq=1,
            wal=wal_filename(0),
        )
        wal = WriteAheadLog.create(
            directory / manifest.wal, ndims, sync=sync,
            durability=durability,
        )
        manifest.save(directory)
        memtable = MemTable(ndims, order, key_levels)
        index = cls(
            directory, manifest, [], memtable, wal, model,
            flush_rows, policy or CompactionPolicy(), auto_compact,
            sketch_config,
        )
        if storage is not None:
            index.attach_storage(storage)
        return index

    @classmethod
    def open(
        cls,
        directory: PathLike,
        model: Optional[IndependentDistortionModel] = None,
        flush_rows: int = 8192,
        policy: Optional[CompactionPolicy] = None,
        auto_compact: bool = True,
        sync: bool = True,
        durability: Optional[str] = None,
        mmap: bool = False,
        sketch_config: Optional[SketchConfig] = None,
        storage: Optional["StorageConfig"] = None,
    ) -> "SegmentedS3Index":
        """Reopen *directory*: load segments, replay the WAL, GC orphans.

        *model* overrides the manifest's calibrated σ; by default a
        :class:`~repro.distortion.model.NormalDistortionModel` is rebuilt
        from the manifest, mirroring :meth:`repro.index.s3.S3Index.load`.
        With ``mmap=True`` sealed segment stores are memory-mapped
        instead of read into RAM — segment files are curve-ordered on
        disk, so the mapping survives index construction and gives scan
        worker processes zero-copy file-backed attachment.

        WALs a background freeze parked (``manifest.frozen_wals``) are
        replayed *before* the active WAL, oldest first — a crash at any
        point of a background seal loses no acknowledged record.

        Segments the manifest marks ``cold`` load **sidecars only**
        (sketch + keys) — opening never fetches a cold store from the
        blob backend.  *storage* overrides the manifest's persisted
        tier settings (it is required when the manifest records cold
        segments but no ``cold_dir`` — e.g. a directory tiered against
        an in-memory backend).
        """
        directory = Path(directory)
        manifest = Manifest.load(directory)
        if model is None and manifest.sigma is not None:
            model = NormalDistortionModel(manifest.ndims, manifest.sigma)
        sketch_config = sketch_config or SketchConfig()
        from ...storage.coldseg import ColdSegmentReader, keys_filename, load_keys
        from ...storage.manager import (
            TIER_COLD,
            TIER_HOT,
            TIER_WARM,
            StorageConfig,
        )

        key_bits = manifest.key_levels * manifest.ndims
        segments = []
        manifest_dirty = False
        for meta in manifest.segments:
            path = directory / (meta.name + ".store")
            if meta.tier == TIER_COLD:
                # Sidecars only.  Both were made durable before the
                # manifest flipped the tier, so their absence means real
                # damage, not a crash window.
                sketch_path = directory / sketch_filename(meta.name)
                try:
                    sketch = SegmentSketch.load(sketch_path, key_bits)
                except IndexError_ as exc:
                    raise StorageError(
                        f"cold segment {meta.name} is missing its sketch "
                        f"sidecar ({sketch_path}): {exc}"
                    ) from exc
                keys = load_keys(
                    directory / keys_filename(meta.name), meta.count, key_bits
                )
                reader = ColdSegmentReader(
                    meta.name, meta.count, manifest.ndims,
                    manifest.order, manifest.key_levels, keys,
                )
                # A crash between the manifest flip and the local-store
                # unlink leaves a stale .store; the blob is durable, so
                # the local copy is garbage.
                path.unlink(missing_ok=True)
                segments.append(
                    Segment(meta=meta, index=None, sketch=sketch, cold=reader)
                )
                continue
            store = FingerprintStore.load(path, mmap=mmap)
            if len(store) != meta.count or store.ndims != manifest.ndims:
                raise IndexError_(
                    f"segment {path} does not match its manifest entry: "
                    f"{len(store)}x{store.ndims} vs "
                    f"{meta.count}x{manifest.ndims}"
                )
            index = S3Index(
                store,
                order=manifest.order,
                key_levels=manifest.key_levels,
                depth=manifest.depth,
                model=model,
            )
            # Load the pre-filter sidecar; segments from before the
            # sketch tier (or with a damaged sidecar) get theirs rebuilt
            # and the manifest is rewritten once below.  Rebuild only
            # ever reads the local store — never the blob backend.
            sketch = None
            sketch_path = directory / sketch_filename(meta.name)
            if meta.sketch is not None and sketch_path.is_file():
                try:
                    sketch = SegmentSketch.load(
                        sketch_path, index.layout.key_bits
                    )
                except IndexError_:
                    sketch = None
            if sketch is None:
                sketch = SegmentSketch.build(
                    index.layout, store.fingerprints, sketch_config
                )
                sketch.save(sketch_path)
                meta.sketch = sketch.to_meta()
                manifest_dirty = True
            # Residency reflects how we actually loaded, not what the
            # manifest last said (advisory for resident tiers).
            meta.tier = TIER_WARM if mmap else TIER_HOT
            segments.append(Segment(meta=meta, index=index, sketch=sketch))
        if manifest_dirty:
            manifest.save(directory)
        memtable = MemTable(manifest.ndims, manifest.order, manifest.key_levels)
        # Frozen WALs first (oldest first), then the active WAL — the
        # same order the records were acknowledged in.
        for frozen_name in manifest.frozen_wals:
            frozen_path = directory / frozen_name
            if frozen_path.is_file():
                for fp, ids, tcs in replay(frozen_path):
                    memtable.add(fp, ids, tcs)
        wal_path = directory / manifest.wal
        if wal_path.is_file():
            for fp, ids, tcs in replay(wal_path):
                memtable.add(fp, ids, tcs)
            wal = WriteAheadLog.open(wal_path, sync=sync, durability=durability)
        else:
            wal = WriteAheadLog.create(
                wal_path, manifest.ndims, sync=sync, durability=durability
            )
        _collect_orphans(directory, manifest)
        index = cls(
            directory, manifest, segments, memtable, wal, model,
            flush_rows, policy or CompactionPolicy(), auto_compact,
            sketch_config,
        )
        config = storage
        if config is None and manifest.storage is not None:
            config = StorageConfig.from_manifest(manifest.storage)
        has_cold = any(s.meta.tier == TIER_COLD for s in segments)
        if config is None and has_cold:
            raise StorageError(
                f"{directory} has cold segments but no storage "
                "configuration: pass storage=StorageConfig(...) to open()"
            )
        if config is not None:
            index.attach_storage(config, persist=storage is not None)
        return index

    def attach_storage(
        self, config: "StorageConfig", persist: bool = True
    ) -> "TierManager":
        """Put this index under tiered-storage management.

        Creates the :class:`~repro.storage.manager.TierManager`, records
        the config in the manifest (when *persist* and the config is
        representable — an explicit backend object is not), GCs orphan
        blobs, and immediately enforces the budget (a freshly opened
        directory demotes down to it before serving anything).
        """
        from ...storage.manager import TierManager

        if self.storage is not None:
            raise StorageError("storage is already attached to this index")
        manager = TierManager(self, config)
        self.storage = manager
        if persist and config.backend is None:
            with self._state_lock:
                self.manifest.storage = config.to_manifest()
                self.manifest.save(self.directory)
        manager.collect_orphan_blobs()
        manager.enforce_budget()
        return manager

    def storage_info(self) -> dict:
        """Per-tier residency and activity (``info --json``, serve stats).

        Available on untiered indexes too — then every segment is
        resident and the ``manager`` block is ``None``.
        """
        tiers = {
            tier: {"segments": 0, "rows": 0, "bytes": 0}
            for tier in ("hot", "warm", "cold")
        }
        per_row = self.ndims + 4 + 8
        for seg in self._view.segments:
            bucket = tiers[seg.meta.tier]
            bucket["segments"] += 1
            bucket["rows"] += seg.meta.count
            bucket["bytes"] += seg.meta.count * per_row
        return {
            "tiered": self.storage is not None,
            "tiers": tiers,
            "manager": (
                self.storage.snapshot() if self.storage is not None else None
            ),
        }

    def _settle(self) -> None:
        """Apply pending tier transitions (no-op when untiered).

        With background maintenance running, query threads *request* a
        settle instead of performing it — tier transitions move
        off-lane with the rest of the heavy work.  Inline, the settle
        is skipped (not blocked on) when maintenance work holds the
        lock: budget enforcement is advisory and the next settle
        catches up.
        """
        if self.storage is None:
            return
        worker = self._maintenance
        if worker is not None and not worker.on_worker():
            worker.request_settle()
            return
        if not self._maint_lock.acquire(blocking=False):
            return
        try:
            self.storage.settle()
        finally:
            self._maint_lock.release()

    def close(self) -> None:
        """Stop maintenance, close the WAL (records stay durable)."""
        self.stop_maintenance()
        self._wal.close()
        if self.storage is not None:
            self.storage.close()

    def __enter__(self) -> "SegmentedS3Index":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # background maintenance
    # ------------------------------------------------------------------
    @property
    def maintenance(self) -> Optional[MaintenanceThread]:
        """The background worker, or ``None`` when maintenance is inline."""
        return self._maintenance

    def start_maintenance(
        self, config: Optional[MaintenanceConfig] = None
    ) -> MaintenanceThread:
        """Move seal/compaction/settling onto a background worker.

        From this point ``add`` never seals inline: reaching
        ``flush_rows`` requests a background seal, and unsealed rows
        beyond the backpressure limit shed with
        :class:`IngestBackpressure` instead of stalling the caller.
        """
        if self._maintenance is not None:
            raise ConfigurationError(
                "maintenance is already running for this index"
            )
        self._maintenance = MaintenanceThread(
            self, config or MaintenanceConfig()
        )
        return self._maintenance

    def stop_maintenance(self, drain: bool = True) -> None:
        """Stop the background worker (draining queued jobs first)."""
        worker = self._maintenance
        if worker is not None:
            self._maintenance = None
            worker.close(drain=drain)

    def _background_seal(self) -> Optional[SegmentMeta]:
        """Worker entry: freeze the memtable and seal every frozen one."""
        with self._maint_lock:
            self._freeze_active()
            meta = None
            while self._view.frozen:
                meta = self._seal_oldest_frozen()
            if meta is not None:
                worker = self._maintenance
                if self.auto_compact and worker is not None:
                    counts = [s.meta.count for s in self._view.segments]
                    if self.policy.plan(counts):
                        worker.request_compact()
                self._settle()
            return meta

    def _background_compact(self) -> Optional[CompactionResult]:
        """Worker entry: one policy-driven compaction step."""
        return self.compact()

    def _background_settle(self) -> None:
        """Worker entry: apply pending tier transitions."""
        if self.storage is None:
            return
        with self._maint_lock:
            self.storage.settle()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def ndims(self) -> int:
        return self.manifest.ndims

    @property
    def depth(self) -> int:
        return self.manifest.depth

    @property
    def durability(self) -> str:
        """The WAL fsync policy (``always`` / ``group`` / ``async``)."""
        return self._wal.durability

    @property
    def num_segments(self) -> int:
        return len(self._view.segments)

    @property
    def _segments(self) -> list[Segment]:
        """The current view's segments (legacy accessor; do not mutate)."""
        return list(self._view.segments)

    @property
    def _memtable(self) -> MemTable:
        """The current active memtable (legacy accessor)."""
        return self._view.memtable

    @property
    def segments(self) -> list[SegmentMeta]:
        """Manifest entries of the live segments (copies)."""
        return [
            SegmentMeta(s.meta.name, s.meta.count, s.meta.sketch, s.meta.tier)
            for s in self._view.segments
        ]

    def prefilter_info(self) -> dict:
        """Resident-footprint summary of the sketch tier."""
        view = self._view
        sketches = [s.sketch for s in view.segments if s.sketch is not None]
        return {
            "segments": len(view.segments),
            "sketches": len(sketches),
            "depth": self.sketch_config.depth,
            "block_rows": self.sketch_config.block_rows,
            "resident_bytes": sum(s.nbytes() for s in sketches),
        }

    @property
    def pending_rows(self) -> int:
        """Records not yet sealed (active + frozen memtables)."""
        view = self._view
        return sum(f.rows for f in view.frozen) + len(view.memtable)

    def ingest_info(self) -> dict:
        """Write-path pressure: memtable, WAL, compaction debt, queue.

        The shared schema behind ``repro-s3 info --json`` (``ingest``
        block) and ``serve stats``.
        """
        view = self._view
        counts = [s.meta.count for s in view.segments]
        planned = self.policy.plan(counts)
        worker = self._maintenance
        return {
            "durability": self._wal.durability,
            "memtable_rows": len(view.memtable),
            "frozen_memtables": len(view.frozen),
            "frozen_rows": sum(f.rows for f in view.frozen),
            "wal": self._wal.stats(),
            "compaction_debt": {
                "segments": len(planned),
                "rows": sum(counts[i] for i in planned),
            },
            "backpressure_sheds": self._shed_count,
            "maintenance": worker.stats() if worker is not None else None,
        }

    def __len__(self) -> int:
        view = self._view
        return (
            sum(s.meta.count for s in view.segments)
            + sum(f.rows for f in view.frozen)
            + len(view.memtable)
        )

    def _read_view(self) -> ReadView:
        """Pin the current snapshot for one query (cheap, lock-free)."""
        view = self._view
        return ReadView(
            view.segments, view.frozen, view.memtable, len(view.memtable)
        )

    def record(self, row: int) -> tuple[np.ndarray, int, float]:
        """The ``(fingerprint, id, timecode)`` at global *row*.

        Rows number the sealed segments in manifest order (each in curve
        order), then any frozen memtables (oldest first), then the
        active memtable in insertion order — the same virtual
        concatenation query results index into.
        """
        view = self._read_view()
        total = (
            sum(s.meta.count for s in view.segments)
            + sum(f.rows for f in view.frozen)
            + view.memtable_rows
        )
        if row < 0 or row >= total:
            raise ConfigurationError(
                f"row must be in [0, {total}), got {row}"
            )
        for seg in view.segments:
            if row < seg.meta.count:
                if seg.index is None:
                    # Cold: fetch exactly the one row's columns.
                    ids, tcs, fps = self.storage.fetch_ranges(
                        seg, [(row, row + 1)]
                    )
                    return (fps[0].copy(), int(ids[0]), float(tcs[0]))
                store = seg.index.store
                return (
                    store.fingerprints[row].copy(),
                    int(store.ids[row]),
                    float(store.timecodes[row]),
                )
            row -= seg.meta.count
        for frozen in view.frozen:
            if row < frozen.rows:
                part = frozen.memtable.take(np.array([row]))
                return (
                    part.fingerprints[0].copy(),
                    int(part.ids[0]),
                    float(part.timecodes[0]),
                )
            row -= frozen.rows
        part = view.memtable.take(np.array([row]))
        return (
            part.fingerprints[0].copy(),
            int(part.ids[0]),
            float(part.timecodes[0]),
        )

    def reset_threshold_cache(self) -> None:
        """Forget warm-start thresholds (see :meth:`S3Index.reset_threshold_cache`)."""
        self._threshold_cache.clear()

    @property
    def supports_coalesced_scans(self) -> bool:
        """Whether batched queries can merge overlapping section scans.

        True: every sealed segment is a contiguous curve-ordered array, so
        batched queries scan each segment's section union in one gather
        (the memtable is scanned by block membership, outside coalescing).
        """
        return True

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def add(
        self,
        fingerprints: np.ndarray,
        ids: np.ndarray,
        timecodes: np.ndarray,
    ) -> int:
        """Durably insert a batch of records; returns the number added.

        The batch is appended to the WAL first (fsync per the
        ``durability`` mode — concurrent callers share one fsync in
        ``"group"`` mode), then buffered in the memtable.  Reaching
        ``flush_rows`` seals inline, or requests a background seal when
        maintenance is running; past the backpressure limit the insert
        is shed with :class:`IngestBackpressure` (retryable) instead.
        """
        self._check_backpressure()
        with self._wal_gate.shared():
            added = self._wal.append(fingerprints, ids, timecodes)
            if added == 0:
                return 0
            with self._ingest_lock:
                self._view.memtable.add(fingerprints, ids, timecodes)
        if len(self._view.memtable) >= self.flush_rows:
            worker = self._maintenance
            if worker is not None:
                worker.request_seal()
            else:
                self.flush()
        return added

    def _check_backpressure(self) -> None:
        """Shed the ingest when unsealed rows outrun maintenance."""
        worker = self._maintenance
        if worker is None:
            return
        limit = worker.config.backpressure_rows or 4 * self.flush_rows
        pending = self.pending_rows
        if pending < limit:
            return
        worker.request_seal()
        self._shed_count += 1
        raise IngestBackpressure(
            f"ingest shedding: {pending} unsealed rows >= backpressure "
            f"limit {limit}; retry once the background seal catches up",
            pending_rows=pending,
        )

    def flush(self) -> Optional[SegmentMeta]:
        """Seal all buffered records into immutable segments, now.

        Freezes the active memtable and seals every frozen one (oldest
        first), synchronously on the calling thread.  No-op (returns
        ``None``) when nothing is buffered.  Each segment file is fully
        written and fsynced before the manifest references it, and WALs
        are removed only after their records are sealed, so a crash at
        any point loses nothing and duplicates nothing.
        """
        with self._maint_lock:
            self._freeze_active()
            meta = None
            while self._view.frozen:
                meta = self._seal_oldest_frozen()
            if meta is None:
                return None
            if self.auto_compact:
                self.compact()
            # Sealing may have pushed the resident set over the budget.
            self._settle()
            return meta

    def _freeze_active(self) -> bool:
        """Rotate the WAL and park the active memtable on the frozen list.

        The cheap half of sealing: appenders are excluded only for the
        duration of one WAL create + manifest write.  Crash-safe at
        every step — the old WAL joins ``frozen_wals`` in the manifest
        before the memtable moves, so replay-on-open always covers the
        parked records.
        """
        with self._wal_gate.exclusive():
            if len(self._view.memtable) == 0:
                return False
            with self._state_lock:
                seq = self.manifest.next_seq
                self.manifest.next_seq = seq + 1
            new_name = wal_filename(seq)
            new_wal = WriteAheadLog.create(
                self.directory / new_name, self.ndims,
                durability=self._wal.durability,
            )
            old_wal = self._wal
            backing = tuple(self._active_wal_names)
            with self._state_lock:
                view = self._view
                for name in backing:
                    if name not in self.manifest.frozen_wals:
                        self.manifest.frozen_wals.append(name)
                self.manifest.wal = new_name
                self.manifest.save(self.directory)
                frozen = _FrozenMemtable(
                    memtable=view.memtable,
                    rows=len(view.memtable),
                    wal_names=backing,
                    seal_seq=seq,
                )
                self._view = _LiveView(
                    view.segments,
                    view.frozen + (frozen,),
                    MemTable(
                        self.ndims, self.manifest.order,
                        self.manifest.key_levels,
                    ),
                )
                self._wal = new_wal
                self._active_wal_names = [new_name]
            old_wal.close()
            return True

    def _seal_oldest_frozen(self) -> Optional[SegmentMeta]:
        """Seal the oldest frozen memtable into a segment (heavy half).

        Runs entirely off the ingest path: the frozen memtable is
        immutable, so sorting and writing need no locks; only the final
        view/manifest switchover takes the state lock.  The frozen WALs
        are deleted last — after the segment and the manifest that
        references it are durable.
        """
        view = self._view
        if not view.frozen:
            return None
        frozen = view.frozen[0]
        store = frozen.memtable.to_store()
        index = S3Index(
            store,
            order=self.manifest.order,
            key_levels=self.manifest.key_levels,
            depth=self.manifest.depth,
            model=self.model,
        )
        # The freeze reserved this seq alongside the rotated WAL's name.
        name = segment_filename(frozen.seal_seq)
        seg_path = self.directory / (name + ".store")
        index.store.save(seg_path)
        _fsync_file(seg_path)
        sketch = SegmentSketch.build(
            index.layout, index.store.fingerprints, self.sketch_config
        )
        sketch.save(self.directory / sketch_filename(name))
        meta = SegmentMeta(name=name, count=len(store), sketch=sketch.to_meta())
        with self._state_lock:
            view = self._view
            self.manifest.segments.append(meta)
            self.manifest.frozen_wals = [
                w for w in self.manifest.frozen_wals
                if w not in frozen.wal_names
            ]
            self.manifest.save(self.directory)
            self._view = _LiveView(
                view.segments + (
                    Segment(meta=meta, index=index, sketch=sketch),
                ),
                view.frozen[1:],
                view.memtable,
            )
        for wal_name in frozen.wal_names:
            (self.directory / wal_name).unlink(missing_ok=True)
        return meta

    def compact(self, force: bool = False) -> Optional[CompactionResult]:
        """Merge segments according to the policy (everything if *force*).

        Returns ``None`` when there is nothing to merge.  The merge runs
        against a pinned snapshot of the segment set — queries keep
        scanning the old view until the atomic switchover — and the
        merged segment is written and fsynced before the manifest
        switches; the replaced files are deleted last, so a crash
        mid-compaction leaves at worst an orphan file that :meth:`open`
        collects.
        """
        with self._maint_lock:
            snapshot = list(self._view.segments)
            counts = [seg.meta.count for seg in snapshot]
            if force:
                picked = list(range(len(counts))) if len(counts) >= 2 else []
            else:
                picked = self.policy.plan(counts)
            if not picked:
                return None
            t0 = time.perf_counter()
            old = [snapshot[i] for i in picked]
            # Cold inputs are fetched whole from the blob backend; their
            # blobs are discarded below once the manifest has switched.
            index, sketch = merge_segment_stores(
                [self._segment_store(seg) for seg in old],
                ndims=self.ndims,
                order=self.manifest.order,
                key_levels=self.manifest.key_levels,
                depth=self.manifest.depth,
                model=self.model,
                sketch_config=self.sketch_config,
            )
            merged = index.store
            with self._state_lock:
                seq = self.manifest.next_seq
                self.manifest.next_seq = seq + 1
            name = segment_filename(seq)
            seg_path = self.directory / (name + ".store")
            index.store.save(seg_path)
            _fsync_file(seg_path)
            sketch.save(self.directory / sketch_filename(name))

            meta = SegmentMeta(
                name=name, count=len(merged), sketch=sketch.to_meta()
            )
            old_names = {seg.meta.name for seg in old}
            with self._state_lock:
                view = self._view
                new_segments: list[Segment] = []
                inserted = False
                for seg in view.segments:
                    if seg.meta.name in old_names:
                        if not inserted:
                            new_segments.append(
                                Segment(meta=meta, index=index, sketch=sketch)
                            )
                            inserted = True
                        continue
                    new_segments.append(seg)
                self._view = _LiveView(
                    tuple(new_segments), view.frozen, view.memtable
                )
                self.manifest.segments = [s.meta for s in new_segments]
                self.manifest.save(self.directory)
            for seg in old:
                (self.directory / (seg.meta.name + ".store")).unlink(
                    missing_ok=True
                )
                (self.directory / sketch_filename(seg.meta.name)).unlink(
                    missing_ok=True
                )
                if self.storage is not None:
                    from ...storage.coldseg import keys_filename

                    (self.directory / keys_filename(seg.meta.name)).unlink(
                        missing_ok=True
                    )
                    self.storage.discard_blob(seg.meta.name)
            self._settle()
            return CompactionResult(
                merged_segments=len(picked),
                merged_rows=len(merged),
                segment_name=name,
                seconds=time.perf_counter() - t0,
            )

    def _swap_segment(
        self, old: Segment, new: Segment, persist: bool = True
    ) -> bool:
        """Atomically replace *old* with *new* in the live view.

        The copy-on-write primitive behind tier transitions: the old
        Segment object is left untouched, so queries pinned on a view
        that contains it keep a working store/reader.  Returns ``False``
        (no swap, no manifest write) when *old* is no longer live —
        e.g. compacted away while the transition was being prepared.
        """
        with self._state_lock:
            view = self._view
            position = next(
                (i for i, seg in enumerate(view.segments) if seg is old),
                None,
            )
            if position is None:
                return False
            segments = (
                view.segments[:position]
                + (new,)
                + view.segments[position + 1:]
            )
            self._view = _LiveView(segments, view.frozen, view.memtable)
            self.manifest.segments = [s.meta for s in segments]
            if persist:
                self.manifest.save(self.directory)
            return True

    def _segment_store(self, seg: Segment) -> FingerprintStore:
        """The full store of *seg*, fetching the blob when cold."""
        if seg.index is not None:
            return seg.index.store
        if self.storage is None:
            raise StorageError(
                f"segment {seg.meta.name} is cold but no storage is attached"
            )
        return self.storage.load_store(seg)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def statistical_query(
        self,
        query: np.ndarray,
        alpha: float,
        model: Optional[IndependentDistortionModel] = None,
        depth: Optional[int] = None,
        options: Optional[QueryOptions] = None,
    ) -> SearchResult:
        """Statistical query of expectation α across segments + memtable.

        The block selection is computed once — it depends only on the
        query, the model and the shared curve geometry — and applied to
        every segment and to the memtable, so the merged result equals a
        monolithic :class:`S3Index` over the same records.  Segment
        sketches prune provably-empty segments first (admissible — same
        result bit for bit); ``options.prefilter="off"`` disables that.
        """
        resolved = self._resolve_model(model)
        depth = self._resolve_depth(depth)
        t0 = time.perf_counter()
        selection = statistical_blocks_cached(
            query, resolved, self.curve, depth, alpha,
            cache=self._threshold_cache,
        )
        t1 = time.perf_counter()
        result = self._fan_out(
            selection, refine=None, prefilter=self._prefilter_on(options)
        )
        result.stats.filter_seconds = t1 - t0
        return result

    def statistical_query_batch(
        self,
        queries: np.ndarray,
        alpha: float,
        model: Optional[IndependentDistortionModel] = None,
        depth: Optional[int] = None,
        workers: int = 1,
        options: Optional[QueryOptions] = None,
    ) -> list[SearchResult]:
        """Answer a batch of statistical queries in one fan-out pass.

        Block selections are computed once for the whole batch (shared
        descents, one warm-start cache read/write), then each sealed
        segment is scanned with a single coalesced pass over the union of
        the batch's curve sections — segments in parallel when
        ``workers > 1`` — and the memtable by block membership.  Each
        result is bit-identical to :meth:`statistical_query` on that
        query from the same warm-start cache state.
        """
        from ..batch import query_batch_segmented

        results, _ = query_batch_segmented(
            self, queries, alpha, model=model, depth=depth, workers=workers,
            prefilter=self._prefilter_on(options),
        )
        return results

    def range_query(
        self,
        query: np.ndarray,
        epsilon: float,
        depth: Optional[int] = None,
        options: Optional[QueryOptions] = None,
    ) -> SearchResult:
        """ε-range query across segments + memtable (exact refinement).

        Range queries use both sketch prunes: occupancy (skip segments
        with no rows in the selected blocks) and the per-block min/max
        lower bound (skip row ranges whose every block has ``lb² > ε²``
        — rows the refinement would reject anyway).
        """
        depth = self._resolve_depth(depth)
        t0 = time.perf_counter()
        selection = range_blocks(query, epsilon, self.curve, depth)
        t1 = time.perf_counter()
        result = self._fan_out(
            selection,
            refine=(np.asarray(query, dtype=np.float64), epsilon),
            prefilter=self._prefilter_on(options),
        )
        result.stats.filter_seconds = t1 - t0
        return result

    @staticmethod
    def _prefilter_on(options: Optional[QueryOptions]) -> bool:
        return options.prefilter_enabled if options is not None else True

    # ------------------------------------------------------------------
    def _resolve_model(
        self, model: Optional[IndependentDistortionModel]
    ) -> IndependentDistortionModel:
        resolved = model if model is not None else self.model
        if resolved is None:
            raise ConfigurationError(
                "no distortion model: pass `model=` or set a default on the index"
            )
        if resolved.ndims != self.ndims:
            raise ConfigurationError(
                f"model dimension {resolved.ndims} != index dimension "
                f"{self.ndims}"
            )
        return resolved

    def _resolve_depth(self, depth: Optional[int]) -> int:
        if depth is None:
            return self.manifest.depth
        key_bits = self.manifest.key_levels * self.ndims
        if not 1 <= depth <= key_bits:
            raise ConfigurationError(
                f"depth must be in [1, {key_bits}], got {depth}"
            )
        return depth

    def _fan_out(
        self,
        selection: BlockSelection,
        refine: Optional[tuple[np.ndarray, float]],
        prefilter: bool = True,
    ) -> SearchResult:
        """Scan the selection in every segment + the memtables and merge.

        The segment set, frozen memtables and active-memtable length
        are pinned once (:meth:`_read_view`), so the scan covers one
        consistent snapshot even while a background seal or compaction
        switches the live view over mid-query.

        With *refine* set (``(query, epsilon)``), an exact distance test
        is applied to each part — the ε-range refinement — and distances
        are reported.  With *prefilter* (the default), each segment's
        sketch first drops the selected blocks the segment provably holds
        no rows of; a segment whose whole selection is dropped is skipped
        without touching its store or mmap.  Both prunes are admissible,
        so the merged result is bit-identical either way.
        """
        view = self._read_view()
        stats = SegmentedQueryStats()
        parts: list[SearchResult] = []
        base = 0
        for seg in view.segments:
            t0 = time.perf_counter()
            prefixes = selection.prefixes
            sketch = seg.sketch if prefilter else None
            if sketch is not None and len(prefixes):
                pruned = sketch.prune_prefixes(prefixes, selection.depth)
                stats.blocks_skipped += len(prefixes) - len(pruned)
                if len(pruned) == 0:
                    stats.segments_skipped += 1
                    seg_stats = QueryStats(blocks_selected=len(selection))
                    seg_stats.refine_seconds = time.perf_counter() - t0
                    parts.append(_empty_part(self.ndims, refine, seg_stats))
                    stats.per_segment.append(seg_stats)
                    base += seg.meta.count
                    continue
                prefixes = pruned
            ranges = seg.layout.block_row_ranges(
                prefixes, selection.depth
            )
            if sketch is not None and refine is not None and ranges:
                kept = sketch.prune_ranges(ranges, refine[0], refine[1])
                if not kept:
                    stats.segments_skipped += 1
                ranges = kept
            rows = seg.layout.gather_rows(ranges)
            if seg.index is not None:
                store = seg.index.store
                ids_col = store.ids
                tcs_col = store.timecodes
                fps = store.fingerprints[rows]
                gathered = False
            elif rows.size:
                # Cold: block selection needed no store bytes; now fetch
                # exactly the selected ranges' columns from the backend.
                ids_col, tcs_col, fps = self.storage.fetch_ranges(
                    seg, ranges
                )
                gathered = True
                stats.segments_cold += 1
                stats.cold_rows += int(rows.size)
            else:
                ids_col = np.empty(0, dtype=np.uint32)
                tcs_col = np.empty(0, dtype=np.float64)
                fps = np.empty((0, self.ndims), dtype=np.uint8)
                gathered = True
            if self.storage is not None:
                self.storage.touch(seg)
            distances = None
            seg_stats = QueryStats(
                blocks_selected=len(selection),
                sections_scanned=len(ranges),
                rows_scanned=int(rows.size),
            )
            if refine is not None and rows.size:
                q, epsilon = refine
                keep, distances = range_refine(fps, q, epsilon)
                rows = rows[keep]
                fps = fps[keep]
                if gathered:
                    ids_col = ids_col[keep]
                    tcs_col = tcs_col[keep]
            elif refine is not None:
                distances = np.empty(0, dtype=np.float64)
            part = SearchResult(
                rows=rows + base,
                ids=ids_col if gathered else ids_col[rows],
                timecodes=tcs_col if gathered else tcs_col[rows],
                fingerprints=fps,
                distances=distances,
                stats=seg_stats,
            )
            seg_stats.results = len(part)
            seg_stats.refine_seconds = time.perf_counter() - t0
            parts.append(part)
            stats.per_segment.append(seg_stats)
            base += seg.meta.count

        # The memtable parts — frozen memtables (oldest first) then the
        # active one, bounded to the pinned snapshot length: block
        # membership for statistical queries, exact distances for range
        # queries (strictly tighter than block membership, hence still
        # consistent with the monolithic answer).
        memtable_rows = 0
        mem_refine_seconds = 0.0
        mem_parts = [(f.memtable, f.rows) for f in view.frozen]
        mem_parts.append((view.memtable, view.memtable_rows))
        for memtable, limit in mem_parts:
            t0 = time.perf_counter()
            if refine is None:
                mem_rows = memtable.scan_selection(selection, limit=limit)
                mem_distances = None
            else:
                q, epsilon = refine
                mem_rows, mem_distances = memtable.range_rows(
                    q, epsilon, limit=limit
                )
            mem_part_store = memtable.take(mem_rows)
            mem_stats = QueryStats(
                blocks_selected=len(selection),
                rows_scanned=limit,
                results=int(mem_rows.size),
                refine_seconds=time.perf_counter() - t0,
            )
            parts.append(SearchResult(
                rows=mem_rows + base,
                ids=mem_part_store.ids,
                timecodes=mem_part_store.timecodes,
                fingerprints=mem_part_store.fingerprints,
                distances=mem_distances,
                stats=mem_stats,
            ))
            memtable_rows += limit
            mem_refine_seconds += mem_stats.refine_seconds
            base += limit

        merged = SearchResult(
            rows=np.concatenate([p.rows for p in parts]),
            ids=np.concatenate([p.ids for p in parts]),
            timecodes=np.concatenate([p.timecodes for p in parts]),
            fingerprints=np.concatenate([p.fingerprints for p in parts]),
            distances=(
                np.concatenate([p.distances for p in parts])
                if refine is not None else None
            ),
            stats=stats,
        )
        stats.blocks_selected = len(selection)
        stats.nodes_visited = selection.nodes_visited
        stats.descents = selection.descents
        stats.segments_scanned = len(view.segments)
        stats.memtable_rows_scanned = memtable_rows
        stats.sections_scanned = sum(
            s.sections_scanned for s in stats.per_segment
        )
        stats.rows_scanned = (
            sum(s.rows_scanned for s in stats.per_segment)
            + memtable_rows
        )
        stats.refine_seconds = (
            sum(s.refine_seconds for s in stats.per_segment)
            + mem_refine_seconds
        )
        stats.results = len(merged)
        # Tier transitions (promotion hysteresis, budget demotions) run
        # here — off-lane when maintenance is running, otherwise on the
        # calling thread after the scan is fully merged.
        self._settle()
        return merged


def _empty_part(
    ndims: int,
    refine: Optional[tuple[np.ndarray, float]],
    stats: QueryStats,
) -> SearchResult:
    """The zero-row part of a sketch-skipped segment (store untouched)."""
    return SearchResult(
        rows=np.empty(0, dtype=np.int64),
        ids=np.empty(0, dtype=np.uint32),
        timecodes=np.empty(0, dtype=np.float64),
        fingerprints=np.empty((0, ndims), dtype=np.uint8),
        distances=(
            np.empty(0, dtype=np.float64) if refine is not None else None
        ),
        stats=stats,
    )


def _fsync_file(path: Path) -> None:
    """Flush a freshly written file's contents to stable storage."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _collect_orphans(directory: Path, manifest: Manifest) -> None:
    """Delete files a crash left behind (not referenced by the manifest).

    ``.keys`` sidecars are live for **every** manifest segment whatever
    its tier: a resident segment may have been demoted before (the
    sidecar is reused), and a cold one depends on it.  Frozen WALs are
    live until the memtable they back is sealed.  Blob GC is separate
    (:meth:`TierManager.collect_orphan_blobs`) and equally keeps every
    manifest-referenced blob.
    """
    live = {seg.name + ".store" for seg in manifest.segments}
    live |= {sketch_filename(seg.name) for seg in manifest.segments}
    live |= {seg.name + ".keys" for seg in manifest.segments}
    live.add(manifest.wal)
    live |= set(manifest.frozen_wals)
    for path in directory.iterdir():
        name = path.name
        if name.startswith("seg-") and name.endswith(".store") \
                and name not in live:
            path.unlink(missing_ok=True)
        elif name.startswith("seg-") and name.endswith(".sketch") \
                and name not in live:
            path.unlink(missing_ok=True)
        elif name.startswith("seg-") and name.endswith(".keys") \
                and name not in live:
            path.unlink(missing_ok=True)
        elif name.startswith("wal-") and name.endswith(".log") \
                and name not in live:
            path.unlink(missing_ok=True)
        elif name.endswith(".tmp"):
            path.unlink(missing_ok=True)
