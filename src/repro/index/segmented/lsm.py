"""The segmented (LSM-style) S³ index: online ingestion over sealed segments.

The paper's S³ structure is static — "no dynamic insertion or deletion
are possible" — which matches its batch experiments but not its
operational setting (INA references new broadcast material every day).
:class:`SegmentedS3Index` converts the structure into a servable,
continuously growing engine with the classic log-structured recipe:

* inserts land in a mutable in-memory **memtable** after being made
  durable in a **write-ahead log** (:mod:`.wal`);
* when the memtable exceeds ``flush_rows`` it is **sealed**: sorted along
  the Hilbert curve and written as an immutable segment — a
  :class:`~repro.index.store.FingerprintStore` +
  :class:`~repro.index.table.HilbertLayout` pair in the existing on-disk
  format — after which the WAL is rotated;
* **compaction** (:mod:`.compaction`) merges small segments back into one
  Hilbert-ordered segment so query fan-out stays bounded;
* queries compute the block selection **once** (it depends only on the
  query, the distortion model and the shared curve geometry — not on the
  data) and fan it out across every sealed segment plus the memtable,
  merging the per-segment results.  The answer is therefore *identical*
  to a monolithic :class:`~repro.index.s3.S3Index` over the union of the
  records, for statistical and ε-range queries alike.

A ``MANIFEST.json`` (:mod:`.manifest`) tracks the live segments and the
current WAL; reopening a directory after a crash replays the WAL, so no
acknowledged insert is ever lost.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Optional

import numpy as np

from ...distortion.model import IndependentDistortionModel, NormalDistortionModel
from ...errors import ConfigurationError, IndexError_, StorageError
from ...hilbert.butz import HilbertCurve
from ..filtering import BlockSelection, range_blocks, statistical_blocks_cached
from ..kernels import range_refine
from ..options import QueryOptions
from ..s3 import QueryStats, S3Index, SearchResult
from ..store import FingerprintStore, PathLike
from .compaction import CompactionPolicy, merge_segment_stores
from .manifest import (
    Manifest,
    SegmentMeta,
    segment_filename,
    wal_filename,
)
from .memtable import MemTable
from .sketch import SegmentSketch, SketchConfig, sketch_filename
from .wal import WriteAheadLog, replay

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ...storage.coldseg import ColdSegmentReader
    from ...storage.manager import StorageConfig, TierManager


@dataclass
class SegmentedQueryStats(QueryStats):
    """Aggregated cost of one fan-out query, plus the per-segment split.

    ``segments_scanned`` counts every live segment the fan-out covered
    (its historical meaning); ``segments_skipped`` counts how many of
    those the sketch tier proved empty without touching their store, and
    ``blocks_skipped`` the selected blocks pruned per segment before the
    row-range lookup.
    """

    segments_scanned: int = 0
    segments_skipped: int = 0
    blocks_skipped: int = 0
    memtable_rows_scanned: int = 0
    segments_cold: int = 0
    cold_rows: int = 0
    per_segment: list[QueryStats] = field(default_factory=list)


@dataclass
class Segment:
    """One sealed, immutable segment: manifest entry, index and sketch.

    ``sketch`` is ``None`` only transiently (segments from directories
    written before the sketch tier, prior to the rebuild in
    :meth:`SegmentedS3Index.open`).

    Exactly one of ``index`` / ``cold`` is set: a **resident** segment
    (hot or warm tier) carries its :class:`S3Index`; a **cold** one
    carries a :class:`~repro.storage.coldseg.ColdSegmentReader` — keys
    sidecar only, store bytes in the blob backend.  ``layout`` abstracts
    over the two, so block selection code never cares about tiers.
    """

    meta: SegmentMeta
    index: Optional[S3Index]
    sketch: Optional[SegmentSketch] = None
    cold: Optional["ColdSegmentReader"] = None

    @property
    def resident(self) -> bool:
        return self.index is not None

    @property
    def layout(self):
        """The segment's :class:`HilbertLayout`, whatever its tier."""
        if self.index is not None:
            return self.index.layout
        if self.cold is None:
            raise StorageError(
                f"segment {self.meta.name} has neither index nor cold reader"
            )
        return self.cold.layout


@dataclass
class CompactionResult:
    """Outcome of one compaction step."""

    merged_segments: int
    merged_rows: int
    segment_name: str
    seconds: float


class SegmentedS3Index:
    """A live, crash-recoverable S³ index composed of sealed segments.

    Use :meth:`create` to initialise a fresh directory and :meth:`open`
    to reopen one (replaying the WAL).  All segments share one geometry
    — dimension, curve order, key levels, partition depth — fixed at
    creation time and recorded in the manifest.
    """

    def __init__(
        self,
        directory: Path,
        manifest: Manifest,
        segments: list[Segment],
        memtable: MemTable,
        wal: WriteAheadLog,
        model: Optional[IndependentDistortionModel],
        flush_rows: int,
        policy: CompactionPolicy,
        auto_compact: bool,
        sketch_config: Optional[SketchConfig] = None,
    ):
        self.directory = directory
        self.manifest = manifest
        self._segments = segments
        self._memtable = memtable
        self._wal = wal
        self.model = model
        self.flush_rows = flush_rows
        self.policy = policy
        self.auto_compact = auto_compact
        self.sketch_config = sketch_config or SketchConfig()
        self.curve = HilbertCurve(manifest.ndims, manifest.order)
        self._threshold_cache: dict[tuple, float] = {}
        #: The tier manager, set by :meth:`attach_storage` (directly or
        #: via :meth:`open`'s ``storage=``).  ``None`` = untiered: every
        #: segment resident, no budget, no blob backend.
        self.storage: Optional["TierManager"] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: PathLike,
        ndims: int,
        order: int = 8,
        key_levels: int = 2,
        depth: Optional[int] = None,
        model: Optional[IndependentDistortionModel] = None,
        flush_rows: int = 8192,
        policy: Optional[CompactionPolicy] = None,
        auto_compact: bool = True,
        sync: bool = True,
        sketch_config: Optional[SketchConfig] = None,
        storage: Optional["StorageConfig"] = None,
    ) -> "SegmentedS3Index":
        """Initialise a fresh segmented index in *directory*.

        With *storage*, the directory is tiered from birth: the config
        is recorded in the manifest and sealed segments demote to the
        blob backend whenever the resident set exceeds the budget.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if Manifest.exists(directory):
            raise IndexError_(
                f"already a segmented index directory: {directory}"
            )
        if ndims < 1:
            raise ConfigurationError(f"ndims must be >= 1, got {ndims}")
        key_bits = key_levels * ndims
        if not 1 <= key_bits <= 64:
            raise ConfigurationError(
                f"key_levels * ndims must be in [1, 64], got {key_bits}"
            )
        if depth is None:
            depth = min(16, key_bits)
        if not 1 <= depth <= key_bits:
            raise ConfigurationError(
                f"depth must be in [1, {key_bits}], got {depth}"
            )
        if model is not None and model.ndims != ndims:
            raise ConfigurationError(
                f"model dimension {model.ndims} != index dimension {ndims}"
            )
        if flush_rows < 1:
            raise ConfigurationError(
                f"flush_rows must be >= 1, got {flush_rows}"
            )
        manifest = Manifest(
            ndims=ndims,
            order=order,
            key_levels=key_levels,
            depth=depth,
            sigma=getattr(model, "sigma", None),
            next_seq=1,
            wal=wal_filename(0),
        )
        wal = WriteAheadLog.create(directory / manifest.wal, ndims, sync=sync)
        manifest.save(directory)
        memtable = MemTable(ndims, order, key_levels)
        index = cls(
            directory, manifest, [], memtable, wal, model,
            flush_rows, policy or CompactionPolicy(), auto_compact,
            sketch_config,
        )
        if storage is not None:
            index.attach_storage(storage)
        return index

    @classmethod
    def open(
        cls,
        directory: PathLike,
        model: Optional[IndependentDistortionModel] = None,
        flush_rows: int = 8192,
        policy: Optional[CompactionPolicy] = None,
        auto_compact: bool = True,
        sync: bool = True,
        mmap: bool = False,
        sketch_config: Optional[SketchConfig] = None,
        storage: Optional["StorageConfig"] = None,
    ) -> "SegmentedS3Index":
        """Reopen *directory*: load segments, replay the WAL, GC orphans.

        *model* overrides the manifest's calibrated σ; by default a
        :class:`~repro.distortion.model.NormalDistortionModel` is rebuilt
        from the manifest, mirroring :meth:`repro.index.s3.S3Index.load`.
        With ``mmap=True`` sealed segment stores are memory-mapped
        instead of read into RAM — segment files are curve-ordered on
        disk, so the mapping survives index construction and gives scan
        worker processes zero-copy file-backed attachment.

        Segments the manifest marks ``cold`` load **sidecars only**
        (sketch + keys) — opening never fetches a cold store from the
        blob backend.  *storage* overrides the manifest's persisted
        tier settings (it is required when the manifest records cold
        segments but no ``cold_dir`` — e.g. a directory tiered against
        an in-memory backend).
        """
        directory = Path(directory)
        manifest = Manifest.load(directory)
        if model is None and manifest.sigma is not None:
            model = NormalDistortionModel(manifest.ndims, manifest.sigma)
        sketch_config = sketch_config or SketchConfig()
        from ...storage.coldseg import ColdSegmentReader, keys_filename, load_keys
        from ...storage.manager import (
            TIER_COLD,
            TIER_HOT,
            TIER_WARM,
            StorageConfig,
        )

        key_bits = manifest.key_levels * manifest.ndims
        segments = []
        manifest_dirty = False
        for meta in manifest.segments:
            path = directory / (meta.name + ".store")
            if meta.tier == TIER_COLD:
                # Sidecars only.  Both were made durable before the
                # manifest flipped the tier, so their absence means real
                # damage, not a crash window.
                sketch_path = directory / sketch_filename(meta.name)
                try:
                    sketch = SegmentSketch.load(sketch_path, key_bits)
                except IndexError_ as exc:
                    raise StorageError(
                        f"cold segment {meta.name} is missing its sketch "
                        f"sidecar ({sketch_path}): {exc}"
                    ) from exc
                keys = load_keys(
                    directory / keys_filename(meta.name), meta.count, key_bits
                )
                reader = ColdSegmentReader(
                    meta.name, meta.count, manifest.ndims,
                    manifest.order, manifest.key_levels, keys,
                )
                # A crash between the manifest flip and the local-store
                # unlink leaves a stale .store; the blob is durable, so
                # the local copy is garbage.
                path.unlink(missing_ok=True)
                segments.append(
                    Segment(meta=meta, index=None, sketch=sketch, cold=reader)
                )
                continue
            store = FingerprintStore.load(path, mmap=mmap)
            if len(store) != meta.count or store.ndims != manifest.ndims:
                raise IndexError_(
                    f"segment {path} does not match its manifest entry: "
                    f"{len(store)}x{store.ndims} vs "
                    f"{meta.count}x{manifest.ndims}"
                )
            index = S3Index(
                store,
                order=manifest.order,
                key_levels=manifest.key_levels,
                depth=manifest.depth,
                model=model,
            )
            # Load the pre-filter sidecar; segments from before the
            # sketch tier (or with a damaged sidecar) get theirs rebuilt
            # and the manifest is rewritten once below.  Rebuild only
            # ever reads the local store — never the blob backend.
            sketch = None
            sketch_path = directory / sketch_filename(meta.name)
            if meta.sketch is not None and sketch_path.is_file():
                try:
                    sketch = SegmentSketch.load(
                        sketch_path, index.layout.key_bits
                    )
                except IndexError_:
                    sketch = None
            if sketch is None:
                sketch = SegmentSketch.build(
                    index.layout, store.fingerprints, sketch_config
                )
                sketch.save(sketch_path)
                meta.sketch = sketch.to_meta()
                manifest_dirty = True
            # Residency reflects how we actually loaded, not what the
            # manifest last said (advisory for resident tiers).
            meta.tier = TIER_WARM if mmap else TIER_HOT
            segments.append(Segment(meta=meta, index=index, sketch=sketch))
        if manifest_dirty:
            manifest.save(directory)
        memtable = MemTable(manifest.ndims, manifest.order, manifest.key_levels)
        wal_path = directory / manifest.wal
        if wal_path.is_file():
            for fp, ids, tcs in replay(wal_path):
                memtable.add(fp, ids, tcs)
            wal = WriteAheadLog.open(wal_path, sync=sync)
        else:
            wal = WriteAheadLog.create(wal_path, manifest.ndims, sync=sync)
        _collect_orphans(directory, manifest)
        index = cls(
            directory, manifest, segments, memtable, wal, model,
            flush_rows, policy or CompactionPolicy(), auto_compact,
            sketch_config,
        )
        config = storage
        if config is None and manifest.storage is not None:
            config = StorageConfig.from_manifest(manifest.storage)
        has_cold = any(s.meta.tier == TIER_COLD for s in segments)
        if config is None and has_cold:
            raise StorageError(
                f"{directory} has cold segments but no storage "
                "configuration: pass storage=StorageConfig(...) to open()"
            )
        if config is not None:
            index.attach_storage(config, persist=storage is not None)
        return index

    def attach_storage(
        self, config: "StorageConfig", persist: bool = True
    ) -> "TierManager":
        """Put this index under tiered-storage management.

        Creates the :class:`~repro.storage.manager.TierManager`, records
        the config in the manifest (when *persist* and the config is
        representable — an explicit backend object is not), GCs orphan
        blobs, and immediately enforces the budget (a freshly opened
        directory demotes down to it before serving anything).
        """
        from ...storage.manager import TierManager

        if self.storage is not None:
            raise StorageError("storage is already attached to this index")
        manager = TierManager(self, config)
        self.storage = manager
        if persist and config.backend is None:
            self.manifest.storage = config.to_manifest()
            self.manifest.save(self.directory)
        manager.collect_orphan_blobs()
        manager.enforce_budget()
        return manager

    def storage_info(self) -> dict:
        """Per-tier residency and activity (``info --json``, serve stats).

        Available on untiered indexes too — then every segment is
        resident and the ``manager`` block is ``None``.
        """
        tiers = {
            tier: {"segments": 0, "rows": 0, "bytes": 0}
            for tier in ("hot", "warm", "cold")
        }
        per_row = self.ndims + 4 + 8
        for seg in self._segments:
            bucket = tiers[seg.meta.tier]
            bucket["segments"] += 1
            bucket["rows"] += seg.meta.count
            bucket["bytes"] += seg.meta.count * per_row
        return {
            "tiered": self.storage is not None,
            "tiers": tiers,
            "manager": (
                self.storage.snapshot() if self.storage is not None else None
            ),
        }

    def _settle(self) -> None:
        """Apply pending tier transitions (no-op when untiered)."""
        if self.storage is not None:
            self.storage.settle()

    def close(self) -> None:
        """Close the WAL file handle (buffered records stay durable)."""
        self._wal.close()
        if self.storage is not None:
            self.storage.close()

    def __enter__(self) -> "SegmentedS3Index":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def ndims(self) -> int:
        return self.manifest.ndims

    @property
    def depth(self) -> int:
        return self.manifest.depth

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    @property
    def segments(self) -> list[SegmentMeta]:
        """Manifest entries of the live segments (copies)."""
        return [
            SegmentMeta(s.meta.name, s.meta.count, s.meta.sketch, s.meta.tier)
            for s in self._segments
        ]

    def prefilter_info(self) -> dict:
        """Resident-footprint summary of the sketch tier."""
        sketches = [s.sketch for s in self._segments if s.sketch is not None]
        return {
            "segments": len(self._segments),
            "sketches": len(sketches),
            "depth": self.sketch_config.depth,
            "block_rows": self.sketch_config.block_rows,
            "resident_bytes": sum(s.nbytes() for s in sketches),
        }

    @property
    def pending_rows(self) -> int:
        """Records buffered in the memtable (not yet sealed)."""
        return len(self._memtable)

    def __len__(self) -> int:
        return self.manifest.total_sealed() + len(self._memtable)

    def record(self, row: int) -> tuple[np.ndarray, int, float]:
        """The ``(fingerprint, id, timecode)`` at global *row*.

        Rows number the sealed segments in manifest order (each in curve
        order) followed by the memtable in insertion order — the same
        virtual concatenation query results index into.
        """
        if row < 0 or row >= len(self):
            raise ConfigurationError(
                f"row must be in [0, {len(self)}), got {row}"
            )
        for seg in self._segments:
            if row < seg.meta.count:
                if seg.index is None:
                    # Cold: fetch exactly the one row's columns.
                    ids, tcs, fps = self.storage.fetch_ranges(
                        seg, [(row, row + 1)]
                    )
                    return (fps[0].copy(), int(ids[0]), float(tcs[0]))
                store = seg.index.store
                return (
                    store.fingerprints[row].copy(),
                    int(store.ids[row]),
                    float(store.timecodes[row]),
                )
            row -= seg.meta.count
        part = self._memtable.take(np.array([row]))
        return (
            part.fingerprints[0].copy(),
            int(part.ids[0]),
            float(part.timecodes[0]),
        )

    def reset_threshold_cache(self) -> None:
        """Forget warm-start thresholds (see :meth:`S3Index.reset_threshold_cache`)."""
        self._threshold_cache.clear()

    @property
    def supports_coalesced_scans(self) -> bool:
        """Whether batched queries can merge overlapping section scans.

        True: every sealed segment is a contiguous curve-ordered array, so
        batched queries scan each segment's section union in one gather
        (the memtable is scanned by block membership, outside coalescing).
        """
        return True

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def add(
        self,
        fingerprints: np.ndarray,
        ids: np.ndarray,
        timecodes: np.ndarray,
    ) -> int:
        """Durably insert a batch of records; returns the number added.

        The batch is appended to the WAL first (fsynced when ``sync``),
        then buffered in the memtable; once the memtable reaches
        ``flush_rows`` it is sealed into a segment automatically.
        """
        added = self._wal.append(fingerprints, ids, timecodes)
        if added == 0:
            return 0
        self._memtable.add(fingerprints, ids, timecodes)
        if len(self._memtable) >= self.flush_rows:
            self.flush()
        return added

    def flush(self) -> Optional[SegmentMeta]:
        """Seal the memtable into a new immutable segment.

        No-op (returns ``None``) when the memtable is empty.  The segment
        file is fully written and fsynced before the manifest references
        it, and the WAL is rotated afterwards, so a crash at any point
        loses nothing and duplicates nothing.
        """
        if len(self._memtable) == 0:
            return None
        store = self._memtable.to_store()
        index = S3Index(
            store,
            order=self.manifest.order,
            key_levels=self.manifest.key_levels,
            depth=self.manifest.depth,
            model=self.model,
        )
        seq = self.manifest.next_seq
        name = segment_filename(seq)
        seg_path = self.directory / (name + ".store")
        index.store.save(seg_path)
        _fsync_file(seg_path)
        sketch = SegmentSketch.build(
            index.layout, index.store.fingerprints, self.sketch_config
        )
        sketch.save(self.directory / sketch_filename(name))

        new_wal_name = wal_filename(seq)
        new_wal = WriteAheadLog.create(
            self.directory / new_wal_name, self.ndims, sync=self._wal.sync
        )
        old_wal_path = self.directory / self.manifest.wal

        meta = SegmentMeta(name=name, count=len(store), sketch=sketch.to_meta())
        self.manifest.segments.append(meta)
        self.manifest.wal = new_wal_name
        self.manifest.next_seq = seq + 1
        self.manifest.save(self.directory)

        self._wal.close()
        self._wal = new_wal
        old_wal_path.unlink(missing_ok=True)
        self._segments.append(Segment(meta=meta, index=index, sketch=sketch))
        self._memtable.clear()

        if self.auto_compact:
            self.compact()
        # Sealing may have pushed the resident set over the budget.
        self._settle()
        return meta

    def compact(self, force: bool = False) -> Optional[CompactionResult]:
        """Merge segments according to the policy (everything if *force*).

        Returns ``None`` when there is nothing to merge.  The merged
        segment is written and fsynced before the manifest switches over;
        the replaced files are deleted last, so a crash mid-compaction
        leaves at worst an orphan file that :meth:`open` collects.
        """
        counts = [seg.meta.count for seg in self._segments]
        if force:
            picked = list(range(len(counts))) if len(counts) >= 2 else []
        else:
            picked = self.policy.plan(counts)
        if not picked:
            return None
        t0 = time.perf_counter()
        # Cold inputs are fetched whole from the blob backend; their
        # blobs are discarded below once the manifest has switched over.
        index, sketch = merge_segment_stores(
            [self._segment_store(self._segments[i]) for i in picked],
            ndims=self.ndims,
            order=self.manifest.order,
            key_levels=self.manifest.key_levels,
            depth=self.manifest.depth,
            model=self.model,
            sketch_config=self.sketch_config,
        )
        merged = index.store
        seq = self.manifest.next_seq
        name = segment_filename(seq)
        seg_path = self.directory / (name + ".store")
        index.store.save(seg_path)
        _fsync_file(seg_path)
        sketch.save(self.directory / sketch_filename(name))

        meta = SegmentMeta(name=name, count=len(merged), sketch=sketch.to_meta())
        picked_set = set(picked)
        old = [self._segments[i] for i in picked]
        new_segments: list[Segment] = []
        inserted = False
        for i, seg in enumerate(self._segments):
            if i in picked_set:
                if not inserted:
                    new_segments.append(
                        Segment(meta=meta, index=index, sketch=sketch)
                    )
                    inserted = True
                continue
            new_segments.append(seg)
        self._segments = new_segments
        self.manifest.segments = [s.meta for s in new_segments]
        self.manifest.next_seq = seq + 1
        self.manifest.save(self.directory)
        for seg in old:
            (self.directory / (seg.meta.name + ".store")).unlink(
                missing_ok=True
            )
            (self.directory / sketch_filename(seg.meta.name)).unlink(
                missing_ok=True
            )
            if self.storage is not None:
                from ...storage.coldseg import keys_filename

                (self.directory / keys_filename(seg.meta.name)).unlink(
                    missing_ok=True
                )
                self.storage.discard_blob(seg.meta.name)
        self._settle()
        return CompactionResult(
            merged_segments=len(picked),
            merged_rows=len(merged),
            segment_name=name,
            seconds=time.perf_counter() - t0,
        )

    def _segment_store(self, seg: Segment) -> FingerprintStore:
        """The full store of *seg*, fetching the blob when cold."""
        if seg.index is not None:
            return seg.index.store
        if self.storage is None:
            raise StorageError(
                f"segment {seg.meta.name} is cold but no storage is attached"
            )
        return self.storage.load_store(seg)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def statistical_query(
        self,
        query: np.ndarray,
        alpha: float,
        model: Optional[IndependentDistortionModel] = None,
        depth: Optional[int] = None,
        options: Optional[QueryOptions] = None,
    ) -> SearchResult:
        """Statistical query of expectation α across segments + memtable.

        The block selection is computed once — it depends only on the
        query, the model and the shared curve geometry — and applied to
        every segment and to the memtable, so the merged result equals a
        monolithic :class:`S3Index` over the same records.  Segment
        sketches prune provably-empty segments first (admissible — same
        result bit for bit); ``options.prefilter="off"`` disables that.
        """
        resolved = self._resolve_model(model)
        depth = self._resolve_depth(depth)
        t0 = time.perf_counter()
        selection = statistical_blocks_cached(
            query, resolved, self.curve, depth, alpha,
            cache=self._threshold_cache,
        )
        t1 = time.perf_counter()
        result = self._fan_out(
            selection, refine=None, prefilter=self._prefilter_on(options)
        )
        result.stats.filter_seconds = t1 - t0
        return result

    def statistical_query_batch(
        self,
        queries: np.ndarray,
        alpha: float,
        model: Optional[IndependentDistortionModel] = None,
        depth: Optional[int] = None,
        workers: int = 1,
        options: Optional[QueryOptions] = None,
    ) -> list[SearchResult]:
        """Answer a batch of statistical queries in one fan-out pass.

        Block selections are computed once for the whole batch (shared
        descents, one warm-start cache read/write), then each sealed
        segment is scanned with a single coalesced pass over the union of
        the batch's curve sections — segments in parallel when
        ``workers > 1`` — and the memtable by block membership.  Each
        result is bit-identical to :meth:`statistical_query` on that
        query from the same warm-start cache state.
        """
        from ..batch import query_batch_segmented

        results, _ = query_batch_segmented(
            self, queries, alpha, model=model, depth=depth, workers=workers,
            prefilter=self._prefilter_on(options),
        )
        return results

    def range_query(
        self,
        query: np.ndarray,
        epsilon: float,
        depth: Optional[int] = None,
        options: Optional[QueryOptions] = None,
    ) -> SearchResult:
        """ε-range query across segments + memtable (exact refinement).

        Range queries use both sketch prunes: occupancy (skip segments
        with no rows in the selected blocks) and the per-block min/max
        lower bound (skip row ranges whose every block has ``lb² > ε²``
        — rows the refinement would reject anyway).
        """
        depth = self._resolve_depth(depth)
        t0 = time.perf_counter()
        selection = range_blocks(query, epsilon, self.curve, depth)
        t1 = time.perf_counter()
        result = self._fan_out(
            selection,
            refine=(np.asarray(query, dtype=np.float64), epsilon),
            prefilter=self._prefilter_on(options),
        )
        result.stats.filter_seconds = t1 - t0
        return result

    @staticmethod
    def _prefilter_on(options: Optional[QueryOptions]) -> bool:
        return options.prefilter_enabled if options is not None else True

    # ------------------------------------------------------------------
    def _resolve_model(
        self, model: Optional[IndependentDistortionModel]
    ) -> IndependentDistortionModel:
        resolved = model if model is not None else self.model
        if resolved is None:
            raise ConfigurationError(
                "no distortion model: pass `model=` or set a default on the index"
            )
        if resolved.ndims != self.ndims:
            raise ConfigurationError(
                f"model dimension {resolved.ndims} != index dimension "
                f"{self.ndims}"
            )
        return resolved

    def _resolve_depth(self, depth: Optional[int]) -> int:
        if depth is None:
            return self.manifest.depth
        key_bits = self.manifest.key_levels * self.ndims
        if not 1 <= depth <= key_bits:
            raise ConfigurationError(
                f"depth must be in [1, {key_bits}], got {depth}"
            )
        return depth

    def _fan_out(
        self,
        selection: BlockSelection,
        refine: Optional[tuple[np.ndarray, float]],
        prefilter: bool = True,
    ) -> SearchResult:
        """Scan the selection in every segment + the memtable and merge.

        With *refine* set (``(query, epsilon)``), an exact distance test
        is applied to each part — the ε-range refinement — and distances
        are reported.  With *prefilter* (the default), each segment's
        sketch first drops the selected blocks the segment provably holds
        no rows of; a segment whose whole selection is dropped is skipped
        without touching its store or mmap.  Both prunes are admissible,
        so the merged result is bit-identical either way.
        """
        stats = SegmentedQueryStats()
        parts: list[SearchResult] = []
        base = 0
        for seg in self._segments:
            t0 = time.perf_counter()
            prefixes = selection.prefixes
            sketch = seg.sketch if prefilter else None
            if sketch is not None and len(prefixes):
                pruned = sketch.prune_prefixes(prefixes, selection.depth)
                stats.blocks_skipped += len(prefixes) - len(pruned)
                if len(pruned) == 0:
                    stats.segments_skipped += 1
                    seg_stats = QueryStats(blocks_selected=len(selection))
                    seg_stats.refine_seconds = time.perf_counter() - t0
                    parts.append(_empty_part(self.ndims, refine, seg_stats))
                    stats.per_segment.append(seg_stats)
                    base += seg.meta.count
                    continue
                prefixes = pruned
            ranges = seg.layout.block_row_ranges(
                prefixes, selection.depth
            )
            if sketch is not None and refine is not None and ranges:
                kept = sketch.prune_ranges(ranges, refine[0], refine[1])
                if not kept:
                    stats.segments_skipped += 1
                ranges = kept
            rows = seg.layout.gather_rows(ranges)
            if seg.index is not None:
                store = seg.index.store
                ids_col = store.ids
                tcs_col = store.timecodes
                fps = store.fingerprints[rows]
                gathered = False
            elif rows.size:
                # Cold: block selection needed no store bytes; now fetch
                # exactly the selected ranges' columns from the backend.
                ids_col, tcs_col, fps = self.storage.fetch_ranges(
                    seg, ranges
                )
                gathered = True
                stats.segments_cold += 1
                stats.cold_rows += int(rows.size)
            else:
                ids_col = np.empty(0, dtype=np.uint32)
                tcs_col = np.empty(0, dtype=np.float64)
                fps = np.empty((0, self.ndims), dtype=np.uint8)
                gathered = True
            if self.storage is not None:
                self.storage.touch(seg)
            distances = None
            seg_stats = QueryStats(
                blocks_selected=len(selection),
                sections_scanned=len(ranges),
                rows_scanned=int(rows.size),
            )
            if refine is not None and rows.size:
                q, epsilon = refine
                keep, distances = range_refine(fps, q, epsilon)
                rows = rows[keep]
                fps = fps[keep]
                if gathered:
                    ids_col = ids_col[keep]
                    tcs_col = tcs_col[keep]
            elif refine is not None:
                distances = np.empty(0, dtype=np.float64)
            part = SearchResult(
                rows=rows + base,
                ids=ids_col if gathered else ids_col[rows],
                timecodes=tcs_col if gathered else tcs_col[rows],
                fingerprints=fps,
                distances=distances,
                stats=seg_stats,
            )
            seg_stats.results = len(part)
            seg_stats.refine_seconds = time.perf_counter() - t0
            parts.append(part)
            stats.per_segment.append(seg_stats)
            base += seg.meta.count

        # The memtable part: block membership for statistical queries,
        # exact distances for range queries (strictly tighter than block
        # membership, hence still consistent with the monolithic answer).
        t0 = time.perf_counter()
        if refine is None:
            mem_rows = self._memtable.scan_selection(selection)
            mem_distances = None
        else:
            q, epsilon = refine
            mem_rows, mem_distances = self._memtable.range_rows(q, epsilon)
        mem_part_store = self._memtable.take(mem_rows)
        mem_stats = QueryStats(
            blocks_selected=len(selection),
            rows_scanned=len(self._memtable),
            results=int(mem_rows.size),
            refine_seconds=time.perf_counter() - t0,
        )
        parts.append(SearchResult(
            rows=mem_rows + base,
            ids=mem_part_store.ids,
            timecodes=mem_part_store.timecodes,
            fingerprints=mem_part_store.fingerprints,
            distances=mem_distances,
            stats=mem_stats,
        ))

        merged = SearchResult(
            rows=np.concatenate([p.rows for p in parts]),
            ids=np.concatenate([p.ids for p in parts]),
            timecodes=np.concatenate([p.timecodes for p in parts]),
            fingerprints=np.concatenate([p.fingerprints for p in parts]),
            distances=(
                np.concatenate([p.distances for p in parts])
                if refine is not None else None
            ),
            stats=stats,
        )
        stats.blocks_selected = len(selection)
        stats.nodes_visited = selection.nodes_visited
        stats.descents = selection.descents
        stats.segments_scanned = len(self._segments)
        stats.memtable_rows_scanned = len(self._memtable)
        stats.sections_scanned = sum(
            s.sections_scanned for s in stats.per_segment
        )
        stats.rows_scanned = (
            sum(s.rows_scanned for s in stats.per_segment)
            + len(self._memtable)
        )
        stats.refine_seconds = (
            sum(s.refine_seconds for s in stats.per_segment)
            + mem_stats.refine_seconds
        )
        stats.results = len(merged)
        # Tier transitions (promotion hysteresis, budget demotions) run
        # here — on the calling thread, after the scan is fully merged.
        self._settle()
        return merged


def _empty_part(
    ndims: int,
    refine: Optional[tuple[np.ndarray, float]],
    stats: QueryStats,
) -> SearchResult:
    """The zero-row part of a sketch-skipped segment (store untouched)."""
    return SearchResult(
        rows=np.empty(0, dtype=np.int64),
        ids=np.empty(0, dtype=np.uint32),
        timecodes=np.empty(0, dtype=np.float64),
        fingerprints=np.empty((0, ndims), dtype=np.uint8),
        distances=(
            np.empty(0, dtype=np.float64) if refine is not None else None
        ),
        stats=stats,
    )


def _fsync_file(path: Path) -> None:
    """Flush a freshly written file's contents to stable storage."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _collect_orphans(directory: Path, manifest: Manifest) -> None:
    """Delete files a crash left behind (not referenced by the manifest).

    ``.keys`` sidecars are live for **every** manifest segment whatever
    its tier: a resident segment may have been demoted before (the
    sidecar is reused), and a cold one depends on it.  Blob GC is
    separate (:meth:`TierManager.collect_orphan_blobs`) and equally
    keeps every manifest-referenced blob.
    """
    live = {seg.name + ".store" for seg in manifest.segments}
    live |= {sketch_filename(seg.name) for seg in manifest.segments}
    live |= {seg.name + ".keys" for seg in manifest.segments}
    live.add(manifest.wal)
    for path in directory.iterdir():
        name = path.name
        if name.startswith("seg-") and name.endswith(".store") \
                and name not in live:
            path.unlink(missing_ok=True)
        elif name.startswith("seg-") and name.endswith(".sketch") \
                and name not in live:
            path.unlink(missing_ok=True)
        elif name.startswith("seg-") and name.endswith(".keys") \
                and name not in live:
            path.unlink(missing_ok=True)
        elif name.startswith("wal-") and name.endswith(".log") \
                and name not in live:
            path.unlink(missing_ok=True)
        elif name.endswith(".tmp"):
            path.unlink(missing_ok=True)
