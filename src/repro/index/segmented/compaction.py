"""Compaction policy of the segmented index.

Every flush seals one small segment, and every live segment adds one
block scan to every query, so query latency degrades linearly with the
segment count.  Compaction merges segments back into one Hilbert-ordered
segment; the policy below is **size-tiered with a segment-count cap**:

* nothing happens while the directory holds at most ``max_segments``
  segments (merging is deferred — writes stay cheap);
* past the cap, the smallest segments are merged first (they are the
  cheapest to rewrite and the likeliest to be recent flushes of similar
  size), taking just enough of them to land back at ``max_segments``;
* at least ``min_merge`` segments are merged at a time, so the rewrite
  cost is always amortised over a real reduction in segment count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from ...errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from ...distortion.model import IndependentDistortionModel
    from ..s3 import S3Index
    from ..store import FingerprintStore
    from .sketch import SegmentSketch, SketchConfig


@dataclass
class CompactionPolicy:
    """Size-tiered merge policy with a maximum live-segment count."""

    max_segments: int = 8
    min_merge: int = 2

    def __post_init__(self) -> None:
        if self.max_segments < 1:
            raise ConfigurationError(
                f"max_segments must be >= 1, got {self.max_segments}"
            )
        if self.min_merge < 2:
            raise ConfigurationError(
                f"min_merge must be >= 2, got {self.min_merge}"
            )

    def plan(self, counts: list[int]) -> list[int]:
        """Indices of the segments to merge (empty = nothing to do).

        *counts* is the record count of each live segment, in manifest
        order.  The returned indices are sorted in manifest order so the
        merged segment preserves the arrival order of its inputs.
        """
        n = len(counts)
        if n <= self.max_segments:
            return []
        # Merging k segments into one reduces the count by k - 1; to land
        # at max_segments we need k = n - max_segments + 1, floored at
        # min_merge.
        k = max(n - self.max_segments + 1, self.min_merge)
        k = min(k, n)
        smallest = sorted(range(n), key=lambda i: (counts[i], i))[:k]
        return sorted(smallest)


def merge_segment_stores(
    stores: Sequence["FingerprintStore"],
    ndims: int,
    *,
    order: int,
    key_levels: int,
    depth: int,
    model: Optional["IndependentDistortionModel"],
    sketch_config: Optional["SketchConfig"] = None,
) -> tuple["S3Index", "SegmentSketch"]:
    """Materialise one merged segment: index + freshly built sketch.

    The merged store re-sorts the concatenated rows along the Hilbert
    curve (inside :class:`~repro.index.s3.S3Index`), so the input
    segments' sketches are useless afterwards — the occupancy map stays
    the union but the block bounds follow the new physical order.  The
    sketch is therefore always rebuilt from the merged layout here, in
    the same pass that builds the index.
    """
    from ..s3 import S3Index
    from ..store import StoreBuilder
    from .sketch import SegmentSketch

    builder = StoreBuilder(ndims)
    for store in stores:
        builder.append_store(store)
    index = S3Index(
        builder.build(),
        order=order,
        key_levels=key_levels,
        depth=depth,
        model=model,
    )
    sketch = SegmentSketch.build(
        index.layout, index.store.fingerprints, sketch_config
    )
    return index, sketch
