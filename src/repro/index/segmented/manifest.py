"""The manifest of a segmented index directory.

``MANIFEST.json`` is the single source of truth for what is live: the
index geometry (dimension, curve order, key levels, partition depth, the
calibrated σ), the list of sealed segments, and the name of the *current*
write-ahead log.  It is always rewritten **atomically** (write to a
temporary file, fsync, ``os.replace``), so a reader never observes a
half-written manifest and a crash at any point leaves either the old or
the new state — never a mix.

Crash-safety protocol (see ``docs/segmented-index.md``):

* a segment file is fully written and fsynced *before* the manifest that
  references it is installed;
* sealing rotates to a fresh WAL: the new (empty) log is created first,
  then the manifest switches ``wal`` to it, then the old log is deleted.
  A crash between the last two steps leaves a stale log that replay
  ignores (it is not the manifest's ``wal``) and open() garbage-collects.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from ...errors import IndexError_
from ..store import PathLike

MANIFEST_NAME = "MANIFEST.json"
_FORMAT = 1


@dataclass
class SegmentMeta:
    """One sealed segment: its file stem, record count and sketch.

    ``sketch`` is the geometry summary of the segment's pre-filter
    sidecar (``{"depth", "block_rows"}``, see
    :mod:`repro.index.segmented.sketch`) or ``None`` for segments sealed
    before the sketch tier existed — open() rebuilds those.

    ``tier`` records where the segment's store bytes live: ``"hot"``
    (in RAM), ``"warm"`` (local mmap) or ``"cold"`` (blob backend only;
    locally just the ``.sketch`` and ``.keys`` sidecars).  A cold tier
    is only ever written *after* the blob and keys sidecar are durable,
    so a manifest that says ``cold`` is always honourable.
    """

    name: str
    count: int
    sketch: dict | None = None
    tier: str = "hot"


@dataclass
class Manifest:
    """Durable description of a segmented index directory."""

    ndims: int
    order: int = 8
    key_levels: int = 2
    depth: int = 16
    sigma: float | None = None
    next_seq: int = 1
    wal: str = "wal-000000.log"
    #: WALs of memtables frozen by a background seal but not yet sealed
    #: into a segment (oldest first).  Replayed *before* ``wal`` on
    #: open, so a crash mid-background-seal loses nothing.  Absent from
    #: the payload when empty — old readers never see the key, so the
    #: manifest format stays 1.
    frozen_wals: list[str] = field(default_factory=list)
    segments: list[SegmentMeta] = field(default_factory=list)
    #: Persisted tiered-storage settings (``StorageConfig.to_manifest()``)
    #: or ``None`` for an untiered directory.  Kept as an opaque dict so
    #: the manifest format stays 1 — old readers ignore unknown keys.
    storage: dict | None = None

    # ------------------------------------------------------------------
    def total_sealed(self) -> int:
        """Records across all sealed segments."""
        return sum(seg.count for seg in self.segments)

    def save(self, directory: PathLike) -> None:
        """Atomically (re)write ``MANIFEST.json`` in *directory*."""
        directory = Path(directory)
        payload = {
            "format": _FORMAT,
            "ndims": self.ndims,
            "order": self.order,
            "key_levels": self.key_levels,
            "depth": self.depth,
            "sigma": self.sigma,
            "next_seq": self.next_seq,
            "wal": self.wal,
            **(
                {"frozen_wals": list(self.frozen_wals)}
                if self.frozen_wals else {}
            ),
            "segments": [
                {
                    "name": seg.name,
                    "count": seg.count,
                    **({"sketch": seg.sketch} if seg.sketch else {}),
                    **({"tier": seg.tier} if seg.tier != "hot" else {}),
                }
                for seg in self.segments
            ],
            **({"storage": self.storage} if self.storage else {}),
        }
        tmp = directory / (MANIFEST_NAME + ".tmp")
        with open(tmp, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, directory / MANIFEST_NAME)
        _fsync_directory(directory)

    @classmethod
    def load(cls, directory: PathLike) -> "Manifest":
        """Read the manifest of *directory*; raise if absent or invalid."""
        directory = Path(directory)
        path = directory / MANIFEST_NAME
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            raise IndexError_(
                f"not a segmented index directory (no {MANIFEST_NAME}): "
                f"{directory}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise IndexError_(f"corrupt manifest {path}: {exc}") from exc
        if payload.get("format") != _FORMAT:
            raise IndexError_(
                f"unsupported manifest format {payload.get('format')!r} "
                f"in {path}"
            )
        try:
            return cls(
                ndims=int(payload["ndims"]),
                order=int(payload["order"]),
                key_levels=int(payload["key_levels"]),
                depth=int(payload["depth"]),
                sigma=(
                    None if payload.get("sigma") is None
                    else float(payload["sigma"])
                ),
                next_seq=int(payload["next_seq"]),
                wal=str(payload["wal"]),
                frozen_wals=[
                    str(w) for w in payload.get("frozen_wals", [])
                ],
                segments=[
                    SegmentMeta(
                        name=str(s["name"]),
                        count=int(s["count"]),
                        sketch=s.get("sketch"),
                        tier=str(s.get("tier", "hot")),
                    )
                    for s in payload["segments"]
                ],
                storage=payload.get("storage"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise IndexError_(f"corrupt manifest {path}: {exc}") from exc

    @classmethod
    def exists(cls, directory: PathLike) -> bool:
        """True if *directory* holds a manifest."""
        return (Path(directory) / MANIFEST_NAME).is_file()


def segment_filename(seq: int) -> str:
    """Canonical file stem of segment number *seq*."""
    return f"seg-{seq:06d}"


def wal_filename(seq: int) -> str:
    """Canonical file name of the WAL created at sequence *seq*."""
    return f"wal-{seq:06d}.log"


def _fsync_directory(directory: Path) -> None:
    """Best-effort fsync of the directory entry (POSIX durability)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystem without dir-fsync
        pass
    finally:
        os.close(fd)
