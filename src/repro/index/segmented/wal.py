"""Write-ahead log for the segmented index (durability of online inserts).

Every accepted ``add`` is appended to the log *before* it reaches the
in-memory write buffer, so a crash between segment seals loses nothing:
reopening the directory replays the log into a fresh memtable.

File layout::

    magic 'S3WL' | version u32 | ndims u32 |
    record*  where record = count u32 | crc32 u32 | payload
    payload  = fingerprints (count x ndims u8) | ids (count u32)
             | timecodes (count f64)

The CRC covers the payload.  Replay stops at the first incomplete or
corrupt record — a torn tail from a crash mid-append is expected and is
silently dropped (the insert was never acknowledged as durable); opening
the log for writing truncates the tail so new records extend the valid
prefix.  A bad file header, by contrast, raises :class:`~repro.errors.WALError`:
that is not a torn write but the wrong file.

Durability modes (``docs/serving.md`` has the full matrix):

* ``"always"`` — every append pays its own ``fsync`` before returning:
  the strongest guarantee and the slowest, the pre-group-commit
  behaviour (``sync=True``);
* ``"group"`` — concurrent appends are **group-committed**: each append
  stages its record under the log's lock, the first stager becomes the
  flush *leader* and writes every staged record with one ``write`` +
  one ``fsync`` while followers wait on a condition variable (the same
  leader/follower shape as the serve micro-batcher).  Every append is
  still durable before it returns — the fsync is shared, not skipped;
* ``"async"`` — appends buffer through the OS page cache with no fsync:
  a process kill loses nothing (the bytes are in the kernel), a power
  cut may lose the tail.  The pre-existing ``sync=False`` behaviour.

All three modes are safe under concurrent appenders; records from
different threads interleave at batch granularity.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from pathlib import Path

import numpy as np

from ...errors import WALError
from ..store import PathLike

_MAGIC = b"S3WL"
_VERSION = 1
_FILE_HEADER = struct.Struct("<4sII")
_RECORD_HEADER = struct.Struct("<II")

#: Valid values of the ``durability`` knob, strongest first.
DURABILITY_MODES = ("always", "group", "async")


def resolve_durability(
    durability: str | None, sync: bool = True
) -> str:
    """Fold the legacy ``sync`` flag and the mode knob into one mode.

    ``durability`` wins when given; otherwise ``sync=True`` maps to
    ``"always"`` (the historical per-append fsync) and ``sync=False``
    to ``"async"``.
    """
    if durability is None:
        return "always" if sync else "async"
    if durability not in DURABILITY_MODES:
        raise WALError(
            f"durability must be one of {'/'.join(DURABILITY_MODES)}, "
            f"got {durability!r}"
        )
    return durability


def _payload_size(count: int, ndims: int) -> int:
    return count * (ndims + 4 + 8)


class WriteAheadLog:
    """Append-only durable log of fingerprint record batches."""

    def __init__(
        self,
        path: PathLike,
        ndims: int,
        fh,
        sync: bool = True,
        durability: str | None = None,
        size_bytes: int = 0,
    ):
        self.path = Path(path)
        self.ndims = int(ndims)
        self.durability = resolve_durability(durability, sync)
        self._fh = fh
        #: Bytes of the valid prefix (header + durable/buffered records);
        #: the ``WAL bytes`` pressure gauge.
        self.size_bytes = int(size_bytes)
        # Counters (read via stats(); monotonically increasing).
        self.appends = 0
        self.records = 0
        self.group_commits = 0
        self.group_records = 0
        # Group-commit machinery: stagers queue (seq, count, record
        # bytes) under the condition; the first stager to find no flush
        # in progress becomes the leader for everything staged so far.
        self._cond = threading.Condition()
        self._staged: list[tuple[int, int, bytes]] = []
        self._next_seq = 0
        self._durable_seq = -1
        self._flushing = False
        self._failed: dict[int, BaseException] = {}

    @property
    def sync(self) -> bool:
        """True when appends are fsynced before acknowledgement."""
        return self.durability != "async"

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: PathLike,
        ndims: int,
        sync: bool = True,
        durability: str | None = None,
    ) -> "WriteAheadLog":
        """Start a fresh log at *path* (truncating any existing file)."""
        if ndims < 1:
            raise WALError(f"ndims must be >= 1, got {ndims}")
        mode = resolve_durability(durability, sync)
        path = Path(path)
        fh = open(path, "wb")
        fh.write(_FILE_HEADER.pack(_MAGIC, _VERSION, ndims))
        fh.flush()
        if mode != "async":
            os.fsync(fh.fileno())
        return cls(
            path, ndims, fh, durability=mode,
            size_bytes=_FILE_HEADER.size,
        )

    @classmethod
    def open(
        cls,
        path: PathLike,
        sync: bool = True,
        durability: str | None = None,
    ) -> "WriteAheadLog":
        """Open an existing log for appending.

        The valid record prefix is located first; any torn tail beyond it
        is truncated away so the next append lands on a clean boundary.
        """
        mode = resolve_durability(durability, sync)
        path = Path(path)
        ndims, _records, valid_end = _scan(path)
        fh = open(path, "r+b")
        fh.truncate(valid_end)
        fh.seek(valid_end)
        return cls(path, ndims, fh, durability=mode, size_bytes=valid_end)

    # ------------------------------------------------------------------
    def append(
        self,
        fingerprints: np.ndarray,
        ids: np.ndarray,
        timecodes: np.ndarray,
    ) -> int:
        """Durably append one batch; returns the number of records.

        Thread-safe in every durability mode; in ``"group"`` mode
        concurrent callers share one write+fsync.
        """
        fp = np.ascontiguousarray(fingerprints, dtype=np.uint8)
        if fp.ndim != 2 or fp.shape[1] != self.ndims:
            raise WALError(
                f"fingerprints must be (N, {self.ndims}), got shape {fp.shape}"
            )
        ids = np.ascontiguousarray(ids, dtype=np.uint32)
        tcs = np.ascontiguousarray(timecodes, dtype=np.float64)
        n = fp.shape[0]
        if ids.shape != (n,) or tcs.shape != (n,):
            raise WALError(
                "column length mismatch: "
                f"{n} fingerprints, {ids.shape[0]} ids, {tcs.shape[0]} timecodes"
            )
        if n == 0:
            return 0
        payload = fp.tobytes() + ids.tobytes() + tcs.tobytes()
        record = _RECORD_HEADER.pack(n, zlib.crc32(payload)) + payload
        if self.durability == "group":
            return self._append_group(n, record)
        with self._cond:
            self._fh.write(record)
            self._fh.flush()
            if self.durability == "always":
                os.fsync(self._fh.fileno())
            self.size_bytes += len(record)
            self.appends += 1
            self.records += n
        return n

    def _append_group(self, n: int, record: bytes) -> int:
        """Stage *record* and wait for (or lead) a shared group flush."""
        with self._cond:
            seq = self._next_seq
            self._next_seq += 1
            self._staged.append((seq, n, record))
            self.appends += 1
            self.records += n
            while True:
                if seq in self._failed:
                    raise self._failed.pop(seq)
                if self._durable_seq >= seq:
                    return n
                if not self._flushing:
                    break
                self._cond.wait()
            # Leader: take everything staged so far (our own record is
            # in there) and flush it as one write+fsync off the lock so
            # later appenders can keep staging the next group.
            self._flushing = True
            batch = self._staged
            self._staged = []
            high = batch[-1][0]
        blob = b"".join(rec for _, _, rec in batch)
        error: BaseException | None = None
        try:
            self._fh.write(blob)
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except BaseException as exc:  # noqa: BLE001 - relayed to followers
            error = exc
        with self._cond:
            self._flushing = False
            if error is None:
                self._durable_seq = high
                self.size_bytes += len(blob)
                self.group_commits += 1
                self.group_records += sum(c for _, c, _ in batch)
            else:
                # Followers in this batch must not report durable.
                for s, _, _ in batch:
                    if s != seq:
                        self._failed[s] = error
            self._cond.notify_all()
        if error is not None:
            raise error
        return n

    def stats(self) -> dict:
        """Counters for ``serve stats`` / ``info --json`` pressure."""
        with self._cond:
            return {
                "durability": self.durability,
                "bytes": self.size_bytes,
                "appends": self.appends,
                "records": self.records,
                "group_commits": self.group_commits,
                "group_records": self.group_records,
            }

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def replay(path: PathLike) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Return every complete ``(fingerprints, ids, timecodes)`` batch.

    Torn or corrupt trailing records are dropped; a bad header raises
    :class:`~repro.errors.WALError`.
    """
    _ndims, records, _valid_end = _scan(path)
    return records


def _scan(path: PathLike) -> tuple[
    int, list[tuple[np.ndarray, np.ndarray, np.ndarray]], int
]:
    """Parse the log: ``(ndims, complete record batches, valid end offset)``."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise WALError(f"cannot read WAL file {path}: {exc}") from exc
    if len(raw) < _FILE_HEADER.size:
        raise WALError(f"WAL file too short: {path}")
    magic, version, ndims = _FILE_HEADER.unpack_from(raw, 0)
    if magic != _MAGIC:
        raise WALError(f"bad magic in WAL file {path}: {magic!r}")
    if version != _VERSION:
        raise WALError(f"unsupported WAL version {version} in {path}")
    if ndims < 1:
        raise WALError(f"bad ndims {ndims} in WAL file {path}")

    records: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    pos = _FILE_HEADER.size
    while True:
        if pos + _RECORD_HEADER.size > len(raw):
            break  # torn record header
        count, crc = _RECORD_HEADER.unpack_from(raw, pos)
        size = _payload_size(count, ndims)
        start = pos + _RECORD_HEADER.size
        if count == 0 or start + size > len(raw):
            break  # torn payload (or garbage header)
        payload = raw[start:start + size]
        if zlib.crc32(payload) != crc:
            break  # corrupt tail
        fp_end = count * ndims
        ids_end = fp_end + count * 4
        fp = np.frombuffer(payload[:fp_end], dtype=np.uint8).reshape(
            count, ndims
        )
        ids = np.frombuffer(payload[fp_end:ids_end], dtype=np.uint32)
        tcs = np.frombuffer(payload[ids_end:], dtype=np.float64)
        records.append((fp.copy(), ids.copy(), tcs.copy()))
        pos = start + size
    return ndims, records, pos
