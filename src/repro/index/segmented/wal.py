"""Write-ahead log for the segmented index (durability of online inserts).

Every accepted ``add`` is appended to the log *before* it reaches the
in-memory write buffer, so a crash between segment seals loses nothing:
reopening the directory replays the log into a fresh memtable.

File layout::

    magic 'S3WL' | version u32 | ndims u32 |
    record*  where record = count u32 | crc32 u32 | payload
    payload  = fingerprints (count x ndims u8) | ids (count u32)
             | timecodes (count f64)

The CRC covers the payload.  Replay stops at the first incomplete or
corrupt record — a torn tail from a crash mid-append is expected and is
silently dropped (the insert was never acknowledged as durable); opening
the log for writing truncates the tail so new records extend the valid
prefix.  A bad file header, by contrast, raises :class:`~repro.errors.WALError`:
that is not a torn write but the wrong file.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path

import numpy as np

from ...errors import WALError
from ..store import PathLike

_MAGIC = b"S3WL"
_VERSION = 1
_FILE_HEADER = struct.Struct("<4sII")
_RECORD_HEADER = struct.Struct("<II")


def _payload_size(count: int, ndims: int) -> int:
    return count * (ndims + 4 + 8)


class WriteAheadLog:
    """Append-only durable log of fingerprint record batches."""

    def __init__(self, path: PathLike, ndims: int, fh, sync: bool = True):
        self.path = Path(path)
        self.ndims = int(ndims)
        self.sync = bool(sync)
        self._fh = fh

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: PathLike, ndims: int, sync: bool = True
               ) -> "WriteAheadLog":
        """Start a fresh log at *path* (truncating any existing file)."""
        if ndims < 1:
            raise WALError(f"ndims must be >= 1, got {ndims}")
        path = Path(path)
        fh = open(path, "wb")
        fh.write(_FILE_HEADER.pack(_MAGIC, _VERSION, ndims))
        fh.flush()
        if sync:
            os.fsync(fh.fileno())
        return cls(path, ndims, fh, sync=sync)

    @classmethod
    def open(cls, path: PathLike, sync: bool = True) -> "WriteAheadLog":
        """Open an existing log for appending.

        The valid record prefix is located first; any torn tail beyond it
        is truncated away so the next append lands on a clean boundary.
        """
        path = Path(path)
        ndims, _records, valid_end = _scan(path)
        fh = open(path, "r+b")
        fh.truncate(valid_end)
        fh.seek(valid_end)
        return cls(path, ndims, fh, sync=sync)

    # ------------------------------------------------------------------
    def append(
        self,
        fingerprints: np.ndarray,
        ids: np.ndarray,
        timecodes: np.ndarray,
    ) -> int:
        """Durably append one batch; returns the number of records."""
        fp = np.ascontiguousarray(fingerprints, dtype=np.uint8)
        if fp.ndim != 2 or fp.shape[1] != self.ndims:
            raise WALError(
                f"fingerprints must be (N, {self.ndims}), got shape {fp.shape}"
            )
        ids = np.ascontiguousarray(ids, dtype=np.uint32)
        tcs = np.ascontiguousarray(timecodes, dtype=np.float64)
        n = fp.shape[0]
        if ids.shape != (n,) or tcs.shape != (n,):
            raise WALError(
                "column length mismatch: "
                f"{n} fingerprints, {ids.shape[0]} ids, {tcs.shape[0]} timecodes"
            )
        if n == 0:
            return 0
        payload = fp.tobytes() + ids.tobytes() + tcs.tobytes()
        self._fh.write(_RECORD_HEADER.pack(n, zlib.crc32(payload)))
        self._fh.write(payload)
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())
        return n

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def replay(path: PathLike) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Return every complete ``(fingerprints, ids, timecodes)`` batch.

    Torn or corrupt trailing records are dropped; a bad header raises
    :class:`~repro.errors.WALError`.
    """
    _ndims, records, _valid_end = _scan(path)
    return records


def _scan(path: PathLike) -> tuple[
    int, list[tuple[np.ndarray, np.ndarray, np.ndarray]], int
]:
    """Parse the log: ``(ndims, complete record batches, valid end offset)``."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise WALError(f"cannot read WAL file {path}: {exc}") from exc
    if len(raw) < _FILE_HEADER.size:
        raise WALError(f"WAL file too short: {path}")
    magic, version, ndims = _FILE_HEADER.unpack_from(raw, 0)
    if magic != _MAGIC:
        raise WALError(f"bad magic in WAL file {path}: {magic!r}")
    if version != _VERSION:
        raise WALError(f"unsupported WAL version {version} in {path}")
    if ndims < 1:
        raise WALError(f"bad ndims {ndims} in WAL file {path}")

    records: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    pos = _FILE_HEADER.size
    while True:
        if pos + _RECORD_HEADER.size > len(raw):
            break  # torn record header
        count, crc = _RECORD_HEADER.unpack_from(raw, pos)
        size = _payload_size(count, ndims)
        start = pos + _RECORD_HEADER.size
        if count == 0 or start + size > len(raw):
            break  # torn payload (or garbage header)
        payload = raw[start:start + size]
        if zlib.crc32(payload) != crc:
            break  # corrupt tail
        fp_end = count * ndims
        ids_end = fp_end + count * 4
        fp = np.frombuffer(payload[:fp_end], dtype=np.uint8).reshape(
            count, ndims
        )
        ids = np.frombuffer(payload[fp_end:ids_end], dtype=np.uint32)
        tcs = np.frombuffer(payload[ids_end:], dtype=np.float64)
        records.append((fp.copy(), ids.copy(), tcs.copy()))
        pos = start + size
    return ndims, records, pos
