"""Per-segment pre-filter sketches: occupancy bitmap + block bounds.

At the paper's target scale most sealed segments contribute nothing to a
given query, yet the fan-out in :mod:`.lsm` used to consult every
segment's Hilbert tree and touch its mmap.  A :class:`SegmentSketch` is
a small always-in-RAM summary, built once when a segment is sealed (or
re-merged by compaction) and persisted next to its store as
``<name>.sketch``:

* an **occupancy bitmap** over the segment's Hilbert-key population at a
  fixed prefix depth — one bit per curve block, set iff the segment
  holds at least one row in that block;
* **per-block component min/max bounds** over runs of ``block_rows``
  curve-sorted rows, giving the exact VA-file-style lower bound
  ``lb(q, block)² = Σ_d gap_d²`` with
  ``gap_d = max(min_d - q_d, 0) + max(q_d - max_d, 0)``.

Both prunes are **admissible** — results stay bit-identical to the
unfiltered fan-out:

* dropping a selected prefix whose occupancy interval is empty removes
  only blocks that contain no rows of this segment, so the merged row
  ranges are unchanged (empty blocks never contribute rows);
* dropping a row range of an ε-range query because every overlapping
  bounds-block has ``lb² > ε²`` removes only rows the exact refinement
  step would reject, since ``lb(q, block) <= dist(q, row)`` for every
  row in the block.

The bounds prune applies to ε-range queries only.  A statistical query
of expectation α scans *every* row of its selected blocks without a
distance test (paper §III), so for it only the occupancy prune is
admissible.  See ``docs/prefilter.md`` for the full argument and tuning
guidance.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from ...errors import ConfigurationError, IndexError_
from ..store import PathLike
from ..table import HilbertLayout

#: File magic of the ``.sketch`` sidecar format.
SKETCH_MAGIC = b"S3SK"
SKETCH_FORMAT = 1

#: Occupancy depths above this would make the bitmap itself large
#: (2^depth bits); 21 caps it at 256 KiB per segment.
MAX_SKETCH_DEPTH = 21

_HEADER = struct.Struct("!4sHHIQII")


def sketch_filename(name: str) -> str:
    """Sidecar file name of segment stem *name*."""
    return f"{name}.sketch"


def occupancy_keep(
    occupied: np.ndarray,
    occupied_depth: int,
    prefixes: np.ndarray,
    depth: int,
) -> np.ndarray:
    """Which selected *prefixes* intersect an occupancy population.

    *occupied* is a sorted ``uint64`` array of populated
    ``occupied_depth``-bit curve prefixes; *prefixes* are sorted
    ``depth``-bit selection prefixes.  Returns a boolean keep-mask.  The
    test is exact (not probabilistic) in both directions of the depth
    mismatch: a deeper selection prefix is shifted down to its ancestor,
    a shallower one is checked for any occupied descendant in its key
    interval.  Shared by :meth:`SegmentSketch.prune_prefixes` and the
    cluster router's shard-presence skip, so single-node and routed
    pruning can never disagree.
    """
    prefixes = np.asarray(prefixes, dtype=np.uint64)
    if prefixes.size == 0 or occupied.size == 0:
        return np.zeros(prefixes.size, dtype=bool)
    if depth >= occupied_depth:
        ancestors = prefixes >> np.uint64(depth - occupied_depth)
        pos = np.searchsorted(occupied, ancestors, side="left")
        pos = np.minimum(pos, occupied.size - 1)
        return occupied[pos] == ancestors
    shift = np.uint64(occupied_depth - depth)
    lo = np.searchsorted(occupied, prefixes << shift, side="left")
    hi = np.searchsorted(
        occupied, (prefixes + np.uint64(1)) << shift, side="left"
    )
    return lo < hi


@dataclass(frozen=True)
class SketchConfig:
    """Build-time geometry of segment sketches.

    ``depth`` is the occupancy prefix depth (bits of curve key per
    bitmap slot); ``block_rows`` is the run length of each min/max
    bounds block.  The defaults keep a sketch a few hundred KiB even
    for multi-million-row segments.
    """

    depth: int = 16
    block_rows: int = 4096

    def __post_init__(self) -> None:
        if not 1 <= self.depth <= MAX_SKETCH_DEPTH:
            raise ConfigurationError(
                f"sketch depth must be in [1, {MAX_SKETCH_DEPTH}], "
                f"got {self.depth}"
            )
        if self.block_rows < 1:
            raise ConfigurationError(
                f"sketch block_rows must be >= 1, got {self.block_rows}"
            )


@dataclass
class SegmentSketch:
    """In-RAM pre-filter summary of one sealed segment.

    Attributes
    ----------
    depth:
        Occupancy prefix depth (``occupied`` holds ``depth``-bit values).
    key_bits:
        Key resolution of the segment's layout the sketch was built
        against (prefixes of deeper selections are shifted down to
        ``depth`` before the membership test).
    block_rows:
        Rows per min/max bounds block.
    rows:
        Row count of the segment.
    occupied:
        Sorted ``uint64`` array of populated ``depth``-bit prefixes.
    mins / maxs:
        ``(B, D)`` ``uint8`` per-block component bounds, ``B = ceil(rows
        / block_rows)``, in curve order.
    """

    depth: int
    key_bits: int
    block_rows: int
    rows: int
    occupied: np.ndarray
    mins: np.ndarray
    maxs: np.ndarray

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        layout: HilbertLayout,
        fingerprints: np.ndarray,
        config: Optional[SketchConfig] = None,
    ) -> "SegmentSketch":
        """Sketch a sealed segment from its layout and *sorted* store.

        *fingerprints* must be the segment store's ``(N, D)`` byte
        matrix, already in curve order (as every sealed store is).
        """
        config = config or SketchConfig()
        depth = min(config.depth, layout.key_bits)
        keys = layout.keys
        n = int(keys.size)
        shift = np.uint64(layout.key_bits - depth)
        occupied = np.unique(keys >> shift)
        fingerprints = np.asarray(fingerprints, dtype=np.uint8)
        if fingerprints.shape[0] != n:
            raise ConfigurationError(
                f"sketch build: store has {fingerprints.shape[0]} rows "
                f"but layout has {n} keys"
            )
        if n:
            starts = np.arange(0, n, config.block_rows)
            mins = np.minimum.reduceat(fingerprints, starts, axis=0)
            maxs = np.maximum.reduceat(fingerprints, starts, axis=0)
        else:
            ndims = fingerprints.shape[1] if fingerprints.ndim == 2 else 0
            mins = np.empty((0, ndims), dtype=np.uint8)
            maxs = np.empty((0, ndims), dtype=np.uint8)
        return cls(
            depth=depth,
            key_bits=layout.key_bits,
            block_rows=config.block_rows,
            rows=n,
            occupied=occupied,
            mins=mins,
            maxs=maxs,
        )

    @property
    def num_blocks(self) -> int:
        return int(self.mins.shape[0])

    def nbytes(self) -> int:
        """Approximate resident size of the sketch."""
        return int(
            self.occupied.nbytes + self.mins.nbytes + self.maxs.nbytes
        )

    # ------------------------------------------------------------------
    # Pruning
    # ------------------------------------------------------------------
    def prune_prefixes(
        self, prefixes: np.ndarray, depth: int
    ) -> np.ndarray:
        """Drop selected blocks this segment provably holds no rows of.

        *prefixes* are sorted ``depth``-bit curve prefixes from a
        :class:`~repro.index.filtering.BlockSelection`.  Keeps a prefix
        iff the segment's occupancy intersects its key interval, which
        is exact (not probabilistic) in both directions of the depth
        mismatch — so the surviving prefixes yield row ranges identical
        to the full selection's.
        """
        prefixes = np.asarray(prefixes, dtype=np.uint64)
        if prefixes.size == 0 or self.rows == 0:
            return prefixes[:0]
        return prefixes[
            occupancy_keep(self.occupied, self.depth, prefixes, depth)
        ]

    def ball_lower_bounds_sq(self, query: np.ndarray) -> np.ndarray:
        """``(B,)`` exact squared lower bounds of each block to *query*."""
        q = np.asarray(query, dtype=np.float64)
        gap = (
            np.maximum(self.mins.astype(np.float64) - q, 0.0)
            + np.maximum(q - self.maxs.astype(np.float64), 0.0)
        )
        return np.einsum("ij,ij->i", gap, gap)

    def excludes_ball(self, query: np.ndarray, epsilon: float) -> bool:
        """True if no row of the segment can lie within ε of *query*."""
        if self.rows == 0:
            return True
        bounds = self.ball_lower_bounds_sq(query)
        return bool(np.all(bounds > float(epsilon) ** 2))

    def prune_ranges(
        self,
        ranges: Sequence[tuple[int, int]],
        query: np.ndarray,
        epsilon: float,
    ) -> list[tuple[int, int]]:
        """Drop row ranges an ε-ball query provably cannot match in.

        A range survives iff at least one of its overlapping bounds
        blocks has ``lb² <= ε²``.  Only admissible for range queries —
        their refinement rejects exactly the rows the bound excludes.
        """
        if not ranges:
            return []
        bounds = self.ball_lower_bounds_sq(query)
        eps_sq = float(epsilon) ** 2
        near = bounds <= eps_sq
        kept: list[tuple[int, int]] = []
        for s, e in ranges:
            b0 = s // self.block_rows
            b1 = (e - 1) // self.block_rows + 1
            if bool(near[b0:b1].any()):
                kept.append((s, e))
        return kept

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> None:
        """Atomically write the sketch sidecar to *path*."""
        path = Path(path)
        bitmap = np.zeros(1 << self.depth, dtype=np.uint8)
        bitmap[self.occupied.astype(np.int64)] = 1
        packed = np.packbits(bitmap)
        header = _HEADER.pack(
            SKETCH_MAGIC,
            SKETCH_FORMAT,
            self.depth,
            self.block_rows,
            self.rows,
            self.mins.shape[1] if self.mins.ndim == 2 else 0,
            self.num_blocks,
        )
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(header)
            fh.write(packed.tobytes())
            fh.write(self.mins.astype(np.uint8).tobytes())
            fh.write(self.maxs.astype(np.uint8).tobytes())
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: PathLike, key_bits: int) -> "SegmentSketch":
        """Read a sketch sidecar; raises :class:`IndexError_` if corrupt."""
        path = Path(path)
        try:
            raw = path.read_bytes()
        except OSError as exc:
            raise IndexError_(f"cannot read sketch {path}: {exc}") from exc
        if len(raw) < _HEADER.size:
            raise IndexError_(f"truncated sketch header in {path}")
        magic, fmt, depth, block_rows, rows, ndims, nblocks = \
            _HEADER.unpack_from(raw)
        if magic != SKETCH_MAGIC:
            raise IndexError_(f"bad sketch magic in {path}")
        if fmt != SKETCH_FORMAT:
            raise IndexError_(
                f"unsupported sketch format {fmt} in {path}"
            )
        bitmap_bytes = (1 << depth) // 8 if depth >= 3 else 1
        expected = (
            _HEADER.size + bitmap_bytes + 2 * nblocks * ndims
        )
        if len(raw) != expected:
            raise IndexError_(
                f"sketch {path} has {len(raw)} bytes, expected {expected}"
            )
        off = _HEADER.size
        packed = np.frombuffer(raw, dtype=np.uint8, count=bitmap_bytes,
                               offset=off)
        off += bitmap_bytes
        bits = np.unpackbits(packed, count=1 << depth)
        occupied = np.flatnonzero(bits).astype(np.uint64)
        mins = np.frombuffer(
            raw, dtype=np.uint8, count=nblocks * ndims, offset=off
        ).reshape(nblocks, ndims).copy()
        off += nblocks * ndims
        maxs = np.frombuffer(
            raw, dtype=np.uint8, count=nblocks * ndims, offset=off
        ).reshape(nblocks, ndims).copy()
        return cls(
            depth=depth,
            key_bits=key_bits,
            block_rows=block_rows,
            rows=rows,
            occupied=occupied,
            mins=mins,
            maxs=maxs,
        )

    def to_meta(self) -> dict:
        """The manifest-side summary of this sketch (geometry only)."""
        return {"depth": int(self.depth), "block_rows": int(self.block_rows)}
