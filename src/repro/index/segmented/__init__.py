"""Segmented live index: WAL-backed ingestion over sealed Hilbert segments.

An LSM-style extension of the paper's static S³ structure for the
continuous-monitoring deployment of §V-D: durable online ``add`` (write-
ahead log + memtable, with per-append / group / async fsync), immutable
Hilbert-ordered segments sealed by flushes, size-tiered compaction —
inline or on a background :class:`MaintenanceThread` with
backpressure-shedding ingest — and a query path that fans the
statistical / ε-range block selection out across a pinned snapshot of
all segments and memtables and merges the results — byte-for-byte the
same answers as a monolithic :class:`~repro.index.s3.S3Index` over the
union of the records.
"""

from .compaction import CompactionPolicy, merge_segment_stores
from .lsm import (
    CompactionResult,
    ReadView,
    Segment,
    SegmentedQueryStats,
    SegmentedS3Index,
)
from .maintenance import MaintenanceConfig, MaintenanceThread
from .manifest import Manifest, SegmentMeta
from .memtable import MemTable
from .sketch import SegmentSketch, SketchConfig, sketch_filename
from .wal import (
    DURABILITY_MODES,
    WriteAheadLog,
    replay,
    resolve_durability,
)

__all__ = [
    "CompactionPolicy",
    "CompactionResult",
    "DURABILITY_MODES",
    "MaintenanceConfig",
    "MaintenanceThread",
    "Manifest",
    "MemTable",
    "ReadView",
    "Segment",
    "SegmentMeta",
    "SegmentSketch",
    "SegmentedQueryStats",
    "SegmentedS3Index",
    "SketchConfig",
    "WriteAheadLog",
    "merge_segment_stores",
    "replay",
    "resolve_durability",
    "sketch_filename",
]
