"""Segmented live index: WAL-backed ingestion over sealed Hilbert segments.

An LSM-style extension of the paper's static S³ structure for the
continuous-monitoring deployment of §V-D: durable online ``add`` (write-
ahead log + memtable), immutable Hilbert-ordered segments sealed by
flushes, size-tiered compaction, and a query path that fans the
statistical / ε-range block selection out across all segments and merges
the results — byte-for-byte the same answers as a monolithic
:class:`~repro.index.s3.S3Index` over the union of the records.
"""

from .compaction import CompactionPolicy, merge_segment_stores
from .lsm import (
    CompactionResult,
    Segment,
    SegmentedQueryStats,
    SegmentedS3Index,
)
from .manifest import Manifest, SegmentMeta
from .memtable import MemTable
from .sketch import SegmentSketch, SketchConfig, sketch_filename
from .wal import WriteAheadLog, replay

__all__ = [
    "CompactionPolicy",
    "CompactionResult",
    "Manifest",
    "MemTable",
    "Segment",
    "SegmentMeta",
    "SegmentSketch",
    "SegmentedQueryStats",
    "SegmentedS3Index",
    "SketchConfig",
    "WriteAheadLog",
    "merge_segment_stores",
    "replay",
    "sketch_filename",
]
