"""In-memory write buffer of the segmented index.

The memtable accepts inserts in arrival order and is scanned exhaustively
at query time.  It is small by construction (it is sealed into a segment
once it exceeds the flush threshold), so the scan is a handful of
vectorised numpy operations:

* **statistical queries** select records by p-block membership — the
  memtable keeps the truncated Hilbert key of every record and tests it
  against the selected prefixes, so the returned set is exactly
  "everything stored inside ``V_α``", the same semantics the sealed
  segments implement with their sorted layouts;
* **ε-range queries** use a direct exact distance test (the refinement
  the sealed path performs after its block scan).

Hilbert keys are **computed lazily**, on the first block scan that needs
them, not on insert: the ingest acknowledgement path then costs one WAL
append plus one builder copy (microseconds), encoding is amortised over
every row inserted since the last scan (one vectorised call instead of
one per request), and a memtable that is sealed before ever being
queried skips encoding entirely (the seal re-sorts through
:class:`~repro.index.s3.S3Index`, which derives its own keys).
"""

from __future__ import annotations

import threading

import numpy as np

from ...hilbert.vectorized import encode_batch
from ..filtering import BlockSelection
from ..kernels import squared_distances
from ..store import FingerprintStore, StoreBuilder


class MemTable:
    """Mutable record buffer with Hilbert keys for block-membership scans."""

    def __init__(self, ndims: int, order: int = 8, key_levels: int = 2):
        self.ndims = int(ndims)
        self.order = int(order)
        self.key_levels = int(key_levels)
        self._builder = StoreBuilder(ndims)
        self._keys = np.empty(1024, dtype=np.uint64)
        # Rows whose key has been computed; the suffix beyond it is
        # encoded on demand by _ensure_keys (under _key_lock).
        self._keyed = 0
        self._key_lock = threading.Lock()

    @property
    def key_bits(self) -> int:
        return self.key_levels * self.ndims

    def __len__(self) -> int:
        return len(self._builder)

    def nbytes(self) -> int:
        """Approximate payload size of the buffered records."""
        return len(self) * (self.ndims + 4 + 8 + 8)

    # ------------------------------------------------------------------
    def add(
        self,
        fingerprints: np.ndarray,
        ids: np.ndarray,
        timecodes: np.ndarray,
    ) -> int:
        """Buffer one batch; returns the number of records added.

        Deliberately cheap — one validated copy into the builder.  The
        Hilbert keys a block scan needs are *not* computed here; the
        first :meth:`scan_selection` over these rows encodes them in
        one vectorised batch (:meth:`_ensure_keys`), keeping the ingest
        acknowledgement latency down to the WAL append.
        """
        return self._builder.append(fingerprints, ids, timecodes)

    def _ensure_keys(self, n: int) -> None:
        """Encode the keys of rows ``[_keyed, n)`` (one batched call).

        Safe against concurrent ``add``: *n* was captured from the
        builder's published size, and the builder writes row data
        before advancing it, so the prefix ``[:n]`` of its columns is
        immutable by the time any scan asks for it.  Concurrent scans
        serialise on ``_key_lock``; ``_keyed`` only advances once the
        keys below it are fully written.
        """
        if self._keyed >= n:
            return
        with self._key_lock:
            start = self._keyed
            if start >= n:
                return
            while self._keys.size < n:
                self._keys = np.concatenate(
                    [self._keys, np.empty(self._keys.size, dtype=np.uint64)]
                )
            fp = self._builder.fingerprints
            self._keys[start:n] = encode_batch(
                fp[start:n], self.order, self.key_levels
            )
            self._keyed = n

    def clear(self) -> None:
        self._builder.clear()
        with self._key_lock:
            self._keyed = 0

    def to_store(self) -> FingerprintStore:
        """Snapshot the buffered records (insertion order) as a store."""
        return self._builder.build()

    # ------------------------------------------------------------------
    def _bound(self, limit: int | None) -> int:
        """Rows visible to a scan: everything, or a pinned snapshot.

        Readers racing a concurrent ``add`` pass the length they
        captured when their snapshot was taken; rows appended after
        that are fully written before the length they read was
        published, so the prefix ``[:limit]`` is always consistent.
        """
        n = len(self)
        return n if limit is None else min(int(limit), n)

    def scan_selection(
        self, selection: BlockSelection, limit: int | None = None
    ) -> np.ndarray:
        """Row indices of buffered records inside the selected blocks."""
        n = self._bound(limit)
        if n == 0 or len(selection) == 0:
            return np.empty(0, dtype=np.int64)
        self._ensure_keys(n)
        shift = np.uint64(self.key_bits - selection.depth)
        blocks = self._keys[:n] >> shift
        prefixes = np.asarray(selection.prefixes, dtype=np.uint64)
        idx = np.searchsorted(prefixes, blocks)
        member = (idx < prefixes.size) & (
            prefixes[np.minimum(idx, prefixes.size - 1)] == blocks
        )
        return np.flatnonzero(member).astype(np.int64)

    def range_rows(
        self, query: np.ndarray, epsilon: float, limit: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(rows, distances)`` of buffered records within *epsilon*."""
        n = self._bound(limit)
        if n == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        dist_sq = squared_distances(self._builder.fingerprints[:n], query)
        keep = np.flatnonzero(dist_sq <= float(epsilon) ** 2).astype(np.int64)
        return keep, np.sqrt(dist_sq[keep])

    def take(self, rows: np.ndarray) -> FingerprintStore:
        """The buffered records at *rows*, as a store (query gather)."""
        return FingerprintStore(
            fingerprints=self._builder.fingerprints[rows],
            ids=self._builder.ids[rows],
            timecodes=self._builder.timecodes[rows],
        )
