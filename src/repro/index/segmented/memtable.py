"""In-memory write buffer of the segmented index.

The memtable accepts inserts in arrival order and is scanned exhaustively
at query time.  It is small by construction (it is sealed into a segment
once it exceeds the flush threshold), so the scan is a handful of
vectorised numpy operations:

* **statistical queries** select records by p-block membership — the
  memtable keeps the truncated Hilbert key of every record (computed once
  per inserted batch) and tests it against the selected prefixes, so the
  returned set is exactly "everything stored inside ``V_α``", the same
  semantics the sealed segments implement with their sorted layouts;
* **ε-range queries** use a direct exact distance test (the refinement
  the sealed path performs after its block scan).
"""

from __future__ import annotations

import numpy as np

from ...hilbert.vectorized import encode_batch
from ..filtering import BlockSelection
from ..kernels import squared_distances
from ..store import FingerprintStore, StoreBuilder


class MemTable:
    """Mutable record buffer with Hilbert keys for block-membership scans."""

    def __init__(self, ndims: int, order: int = 8, key_levels: int = 2):
        self.ndims = int(ndims)
        self.order = int(order)
        self.key_levels = int(key_levels)
        self._builder = StoreBuilder(ndims)
        self._keys = np.empty(1024, dtype=np.uint64)

    @property
    def key_bits(self) -> int:
        return self.key_levels * self.ndims

    def __len__(self) -> int:
        return len(self._builder)

    def nbytes(self) -> int:
        """Approximate payload size of the buffered records."""
        return len(self) * (self.ndims + 4 + 8 + 8)

    # ------------------------------------------------------------------
    def add(
        self,
        fingerprints: np.ndarray,
        ids: np.ndarray,
        timecodes: np.ndarray,
    ) -> int:
        """Buffer one batch; returns the number of records added."""
        size = len(self._builder)
        n = self._builder.append(fingerprints, ids, timecodes)
        if n == 0:
            return 0
        while self._keys.size < size + n:
            self._keys = np.concatenate(
                [self._keys, np.empty(self._keys.size, dtype=np.uint64)]
            )
        self._keys[size:size + n] = encode_batch(
            self._builder.fingerprints[size:size + n],
            self.order, self.key_levels,
        )
        return n

    def clear(self) -> None:
        self._builder.clear()

    def to_store(self) -> FingerprintStore:
        """Snapshot the buffered records (insertion order) as a store."""
        return self._builder.build()

    # ------------------------------------------------------------------
    def scan_selection(self, selection: BlockSelection) -> np.ndarray:
        """Row indices of buffered records inside the selected blocks."""
        n = len(self)
        if n == 0 or len(selection) == 0:
            return np.empty(0, dtype=np.int64)
        shift = np.uint64(self.key_bits - selection.depth)
        blocks = self._keys[:n] >> shift
        prefixes = np.asarray(selection.prefixes, dtype=np.uint64)
        idx = np.searchsorted(prefixes, blocks)
        member = (idx < prefixes.size) & (
            prefixes[np.minimum(idx, prefixes.size - 1)] == blocks
        )
        return np.flatnonzero(member).astype(np.int64)

    def range_rows(
        self, query: np.ndarray, epsilon: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(rows, distances)`` of buffered records within *epsilon*."""
        n = len(self)
        if n == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        dist_sq = squared_distances(self._builder.fingerprints, query)
        keep = np.flatnonzero(dist_sq <= float(epsilon) ** 2).astype(np.int64)
        return keep, np.sqrt(dist_sq[keep])

    def take(self, rows: np.ndarray) -> FingerprintStore:
        """The buffered records at *rows*, as a store (query gather)."""
        return FingerprintStore(
            fingerprints=self._builder.fingerprints[rows],
            ids=self._builder.ids[rows],
            timecodes=self._builder.timecodes[rows],
        )
