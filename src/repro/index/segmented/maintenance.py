"""Background maintenance for the segmented index.

Seal and compaction are the two heavy jobs on the write path: sealing
curve-sorts the memtable and writes a segment, compaction rewrites many
segments into one.  Inline (the pre-pipelined behaviour) they run on
whatever thread called ``add`` — in the detection service that is the
single engine lane, so a compaction storm stalls every queued query.

:class:`MaintenanceThread` moves both off-lane: ``add`` only appends to
the WAL and memtable, then *requests* a seal; one daemon worker drains a
tiny bounded queue of job kinds (``seal`` / ``compact`` / ``settle``),
performing the heavy work under the index's maintenance lock while
queries keep scanning a pinned snapshot view (see
:meth:`SegmentedS3Index._read_view`).  Jobs of the same kind coalesce —
requesting ``seal`` twice while one is queued is one seal.

Backpressure instead of stalls: when unsealed rows exceed
``backpressure_rows`` the index sheds the ingest with
:class:`~repro.errors.IngestBackpressure`, which the serving layer maps
to the retryable wire code ``unavailable`` — clients back off and
resend, queries never queue behind maintenance.

``compact_mb_per_s`` rate-limits compaction I/O: after each merge the
worker sleeps long enough that sustained compaction throughput stays at
or below the limit, keeping page-cache and disk bandwidth available to
foreground scans.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from ...errors import ConfigurationError

#: Job kinds the worker understands, in the order add() escalates them.
JOB_KINDS = ("seal", "compact", "settle")


@dataclass(frozen=True)
class MaintenanceConfig:
    """Knobs of the background maintenance worker.

    ``backpressure_rows`` — unsealed rows (active + frozen memtables)
    above which ``add`` sheds with :class:`IngestBackpressure`;
    ``None`` defaults to ``4 * flush_rows``.

    ``queue_limit`` — bound on distinct queued jobs; a full queue also
    sheds ingest rather than growing without bound.

    ``compact_mb_per_s`` — compaction I/O rate limit (``None`` = no
    limit).

    ``on_change`` — called (from the worker thread) with the job kind
    after a seal or compaction actually changed the segment set; the
    serving layer uses it to invalidate result caches whose row
    numbering just moved.
    """

    queue_limit: int = 16
    backpressure_rows: Optional[int] = None
    compact_mb_per_s: Optional[float] = None
    on_change: Optional[Callable[[str], None]] = None

    def __post_init__(self):
        if self.queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.backpressure_rows is not None and self.backpressure_rows < 1:
            raise ConfigurationError(
                "backpressure_rows must be >= 1, got "
                f"{self.backpressure_rows}"
            )
        if self.compact_mb_per_s is not None and self.compact_mb_per_s <= 0:
            raise ConfigurationError(
                "compact_mb_per_s must be > 0, got "
                f"{self.compact_mb_per_s}"
            )


class MaintenanceThread:
    """One daemon worker draining seal/compact/settle jobs for an index.

    Created by :meth:`SegmentedS3Index.start_maintenance`; stopped (and
    drained) by :meth:`SegmentedS3Index.stop_maintenance` or ``close``.
    """

    def __init__(self, index, config: MaintenanceConfig):
        self.index = index
        self.config = config
        self._cond = threading.Condition()
        self._queue: deque[str] = deque()
        self._pending: set[str] = set()
        self._closed = False
        self._busy = False
        # Counters, read via stats() (ints: GIL-atomic to bump).
        self.seals = 0
        self.compactions = 0
        self.settles = 0
        self.errors = 0
        self.last_error: Optional[str] = None
        self.queue_high_water = 0
        self.rate_limit_seconds = 0.0
        self._thread = threading.Thread(
            target=self._run, name="s3-maintenance", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    def on_worker(self) -> bool:
        """True when the calling thread *is* the maintenance worker."""
        return threading.current_thread() is self._thread

    def request(self, kind: str) -> bool:
        """Enqueue a job of *kind*; ``False`` when the queue is full.

        Same-kind requests coalesce: a kind already queued is reported
        accepted without growing the queue.
        """
        if kind not in JOB_KINDS:
            raise ConfigurationError(f"unknown maintenance job {kind!r}")
        with self._cond:
            if self._closed:
                return False
            if kind in self._pending:
                return True
            if len(self._queue) >= self.config.queue_limit:
                return False
            self._queue.append(kind)
            self._pending.add(kind)
            self.queue_high_water = max(
                self.queue_high_water, len(self._queue)
            )
            self._cond.notify_all()
            return True

    def request_seal(self) -> bool:
        return self.request("seal")

    def request_compact(self) -> bool:
        return self.request("compact")

    def request_settle(self) -> bool:
        return self.request("settle")

    @property
    def queue_depth(self) -> int:
        """Queued jobs plus the one in flight (the pressure gauge)."""
        with self._cond:
            return len(self._queue) + (1 if self._busy else 0)

    def drain(self, timeout: float = 60.0) -> bool:
        """Block until the queue is empty and the worker idle."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._queue or self._busy:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    def close(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Stop the worker (after finishing queued jobs when *drain*)."""
        if drain:
            self.drain(timeout)
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout)

    def stats(self) -> dict:
        """Activity snapshot for ``serve stats`` / ``info --json``."""
        with self._cond:
            depth = len(self._queue) + (1 if self._busy else 0)
        return {
            "queue_depth": depth,
            "queue_limit": self.config.queue_limit,
            "queue_high_water": self.queue_high_water,
            "seals": self.seals,
            "compactions": self.compactions,
            "settles": self.settles,
            "errors": self.errors,
            "last_error": self.last_error,
            "rate_limit_seconds": self.rate_limit_seconds,
            "compact_mb_per_s": self.config.compact_mb_per_s,
        }

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:
                    return  # closed and drained
                kind = self._queue.popleft()
                self._pending.discard(kind)
                self._busy = True
            try:
                self._execute(kind)
            except Exception as exc:  # noqa: BLE001 - keep the worker alive
                self.errors += 1
                self.last_error = f"{kind}: {exc}"
            finally:
                with self._cond:
                    self._busy = False
                    self._cond.notify_all()

    def _execute(self, kind: str) -> None:
        if kind == "seal":
            sealed = self.index._background_seal()
            if sealed:
                self.seals += 1
                self._notify("seal")
        elif kind == "compact":
            result = self.index._background_compact()
            if result is not None:
                self.compactions += 1
                self._throttle(result)
                self._notify("compact")
        elif kind == "settle":
            self.index._background_settle()
            self.settles += 1

    def _throttle(self, result) -> None:
        """Sleep off the compaction's I/O debt under the rate limit."""
        rate = self.config.compact_mb_per_s
        if not rate:
            return
        merged_bytes = result.merged_rows * (self.index.ndims + 4 + 8)
        budget = merged_bytes / (rate * 1e6)
        pause = budget - result.seconds
        if pause > 0:
            self.rate_limit_seconds += pause
            time.sleep(min(pause, 5.0))

    def _notify(self, reason: str) -> None:
        callback = self.config.on_change
        if callback is None:
            return
        try:
            callback(reason)
        except Exception:  # noqa: BLE001 - observer must not kill the worker
            pass
