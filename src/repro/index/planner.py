"""Measured cost-model execution planner for the batched engine.

``BatchQueryExecutor``'s original ``"auto"`` rule was a fixed row
threshold (``PROCESS_EXECUTOR_MIN_ROWS``), and BENCH_parallel_scan
proved it can be *wrong* on real hardware: on a 1-core host the process
pool runs 0.67-0.86x vs threads, and on a wide host the 100k-row cutoff
is far too conservative.  This module replaces the guess with a
measurement:

1. **Startup micro-calibration** (:func:`measure_calibration`) — a few
   milliseconds of in-process micro-benchmarks sampling the costs the
   executor choice actually trades off: vectorised fancy-index gather
   throughput (serial and thread-sharded), thread-pool dispatch
   overhead, contiguous memcpy bandwidth (the arena copy-in/copy-out of
   the process path), and the pickle cost of a pool work item.  The
   result is a :class:`Calibration`.
2. **Host-keyed sidecar** — calibrations persist to
   ``$REPRO_PLANNER_CACHE_DIR/planner-<host>.json`` (opt-in via the
   environment variable; nothing is written otherwise) and are reloaded
   on the next startup when fresh (same host shape, younger than
   :data:`CALIBRATION_TTL_SECONDS`).
3. **Rolling refresh** — :meth:`Calibration.observe` folds measured
   per-batch scan times from the serve path back into the model with an
   exponential moving average, so a miscalibrated host converges onto
   its true costs under real traffic.
4. **Per-batch decision** (:func:`choose_executor`) — predicts the
   nanosecond cost of ``serial``/``threads``/``processes`` for the rows
   a batch is about to scan and picks the cheapest *admissible*
   strategy.  The hard guards of the old rule survive as guards, not
   costs: processes are never chosen below ``min_cpus`` cores, below
   two workers, or without zero-copy store backing.

All three strategies return bit-identical results (property-tested
since PR 5), so the planner only ever changes *speed*, never answers.
``mode="fixed"`` reproduces the legacy threshold rule exactly — it is
both the explicit opt-out and the fallback when calibration is missing
or stale.  See ``docs/planner.md``.
"""

from __future__ import annotations

import json
import os
import pickle
import platform
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Optional

import numpy as np

#: Planner modes accepted by :class:`~repro.index.options.QueryOptions`.
#: ``"auto"`` plans from the measured calibration and falls back to the
#: fixed rule when none is available; ``"measured"`` insists on a
#: calibration (measuring one on the spot if needed); ``"fixed"`` keeps
#: the legacy row-threshold rule byte-for-byte.
PLANNER_MODES = ("auto", "measured", "fixed")

#: Calibration sidecar format version.
CALIBRATION_SCHEMA = 1

#: A persisted calibration older than this is re-measured.
CALIBRATION_TTL_SECONDS = 7 * 24 * 3600.0

#: Environment variable naming the sidecar directory.  Persistence is
#: opt-in: without it, calibrations live only in the process.
CALIBRATION_DIR_ENV = "REPRO_PLANNER_CACHE_DIR"

#: EMA weight of one observed batch when folding serve-path timings
#: back into the calibration.
OBSERVE_EMA_WEIGHT = 0.2

#: Batches scanning fewer rows than this are not folded back — their
#: timing is dominated by per-call overhead, not per-row cost.
OBSERVE_MIN_ROWS = 2048

#: Fixed per-task floor of the process pool that in-process measurement
#: cannot observe: the syscall + scheduler latency of one duplex-pipe
#: round trip.  ~0.1-0.2 ms on Linux; refined by :meth:`observe` once
#: the pool has actually run.
PROCESS_TASK_FLOOR_NS = 150_000.0

# Micro-benchmark shape: large enough to leave L1/L2 noise, small
# enough that the whole calibration stays in the low milliseconds.
_CAL_ROWS = 32_768
_CAL_NDIMS = 20
_CAL_SAMPLE = 8_192
_CAL_REPEATS = 3
_CAL_WORKERS = 4


def host_key() -> str:
    """Stable identity of the hardware a calibration belongs to."""
    return (
        f"{platform.node()}-{platform.machine()}"
        f"-cpu{os.cpu_count() or 1}"
    )


# ----------------------------------------------------------------------
# Calibration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Calibration:
    """Per-host cost constants of the three executor strategies.

    All ``*_ns*`` fields are nanoseconds; per-row fields are per
    *gathered* row of the paper's 20-byte fingerprints.
    ``process_ns_per_row`` starts ``None`` (the process cost is then
    composed from memcpy + sharded gather) and is filled in by
    :meth:`observe` once real pool batches have been timed.
    """

    host: str
    cpu_count: int
    created_at: float
    gather_ns_per_row: float
    thread_gather_ns_per_row: float
    thread_dispatch_ns: float
    memcpy_ns_per_row: float
    ipc_task_ns: float
    process_ns_per_row: Optional[float] = None
    observations: int = 0
    source: str = "measured"
    #: Per-byte cost of a cold-tier blob fetch (tiered storage).  The
    #: default models a slow local disk (~1 GB/s); :meth:`observe_cold`
    #: converges it onto the real backend under traffic.  Defaulted so
    #: sidecars written before this field existed still parse (schema
    #: stays 1; an old reader hitting a new sidecar fails its
    #: ``cls(**fields)`` and falls back to measuring, which is safe).
    cold_fetch_ns_per_byte: float = 1.0

    # ------------------------------------------------------------------
    def age_seconds(self, now: Optional[float] = None) -> float:
        return (time.time() if now is None else now) - self.created_at

    def is_stale(self, now: Optional[float] = None) -> bool:
        """Too old, or measured on a differently shaped host."""
        return (
            self.host != host_key()
            or self.cpu_count != (os.cpu_count() or 1)
            or self.age_seconds(now) > CALIBRATION_TTL_SECONDS
            or self.age_seconds(now) < 0
        )

    # ------------------------------------------------------------------
    def predict_ns(
        self, rows: int, workers: int, cold_bytes: int = 0
    ) -> dict[str, float]:
        """Predicted scan cost of each strategy for one batch.

        ``serial`` is one fancy-index gather; ``threads`` adds the pool
        dispatch and swaps in the sharded per-row rate; ``processes``
        pays one IPC round trip per worker plus either the observed
        pool per-row rate or, before any observation, the analytic
        composition: two arena memcpys (copy-in by the workers, demux
        copy-out) around a gather sharded across the cores left after
        the parent's.

        *cold_bytes* adds the tiered-storage term: the blob-backend
        fetch of the batch's cold unions.  The prefetcher overlaps that
        fetch with the resident scan, so the batch pays
        ``max(local, cold)`` per strategy, not their sum — which is why
        a large cold share flattens the differences between strategies
        (the backend, not the executor, is the bottleneck).
        """
        rows = max(0, int(rows))
        serial = rows * self.gather_ns_per_row
        threads = (
            self.thread_dispatch_ns + rows * self.thread_gather_ns_per_row
        )
        if self.process_ns_per_row is not None:
            per_row = self.process_ns_per_row
        else:
            useful = max(1, min(workers, max(1, self.cpu_count - 1)))
            per_row = (
                2.0 * self.memcpy_ns_per_row
                + self.gather_ns_per_row / useful
            )
        processes = max(1, workers) * self.ipc_task_ns + rows * per_row
        cold_ns = max(0, int(cold_bytes)) * self.cold_fetch_ns_per_byte
        return {
            "serial": max(serial, cold_ns),
            "threads": max(threads, cold_ns),
            "processes": max(processes, cold_ns),
        }

    def observe_cold(self, cold_bytes: int, seconds: float) -> "Calibration":
        """Fold one batch's measured cold-fetch traffic back in.

        Same EMA scheme as :meth:`observe`; batches fetching less than
        one page of payload are ignored (latency-dominated, the per-byte
        rate would be garbage).
        """
        if cold_bytes < 4096 or seconds <= 0.0:
            return self
        per_byte = seconds * 1e9 / cold_bytes
        w = OBSERVE_EMA_WEIGHT
        return replace(
            self,
            cold_fetch_ns_per_byte=(
                (1 - w) * self.cold_fetch_ns_per_byte + w * per_byte
            ),
            observations=self.observations + 1,
            source="observed",
        )

    def observe(
        self, strategy: str, rows: int, seconds: float
    ) -> "Calibration":
        """Fold one measured batch back in; returns the updated copy.

        Batches below :data:`OBSERVE_MIN_ROWS` rows (or non-positive
        timings) are ignored — see the constant's rationale.
        """
        if rows < OBSERVE_MIN_ROWS or seconds <= 0.0:
            return self
        per_row = seconds * 1e9 / rows
        w = OBSERVE_EMA_WEIGHT
        changes: dict = {
            "observations": self.observations + 1,
            "source": "observed",
        }
        if strategy == "serial":
            changes["gather_ns_per_row"] = (
                (1 - w) * self.gather_ns_per_row + w * per_row
            )
        elif strategy == "threads":
            changes["thread_gather_ns_per_row"] = (
                (1 - w) * self.thread_gather_ns_per_row + w * per_row
            )
        elif strategy == "processes":
            prev = self.process_ns_per_row
            changes["process_ns_per_row"] = (
                per_row if prev is None else (1 - w) * prev + w * per_row
            )
        else:
            return self
        return replace(self, **changes)

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {"schema_version": CALIBRATION_SCHEMA, **asdict(self)}

    @classmethod
    def from_json(cls, payload: dict) -> "Calibration":
        if payload.get("schema_version") != CALIBRATION_SCHEMA:
            raise ValueError(
                f"unsupported calibration schema: "
                f"{payload.get('schema_version')!r}"
            )
        fields = {k: v for k, v in payload.items() if k != "schema_version"}
        return cls(**fields)


def _best_of(repeats: int, fn) -> float:
    """Minimum wall-clock seconds of *repeats* runs of *fn*."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_calibration() -> Calibration:
    """Run the startup micro-benchmarks (a few milliseconds total)."""
    cpus = os.cpu_count() or 1
    rng = np.random.default_rng(0)
    fps = rng.integers(
        0, 256, size=(_CAL_ROWS, _CAL_NDIMS), dtype=np.uint8
    )
    ids = np.arange(_CAL_ROWS, dtype=np.uint32)
    tcs = np.linspace(0.0, _CAL_ROWS / 25.0, _CAL_ROWS)
    sample = np.sort(
        rng.choice(_CAL_ROWS, size=_CAL_SAMPLE, replace=False)
    )

    def gather(rows: np.ndarray):
        return ids[rows], tcs[rows], fps[rows]

    serial_s = _best_of(_CAL_REPEATS, lambda: gather(sample))
    gather_ns = serial_s * 1e9 / _CAL_SAMPLE

    workers = max(2, min(_CAL_WORKERS, cpus))
    chunks = np.array_split(sample, workers)
    with ThreadPoolExecutor(max_workers=workers) as pool:
        # Warm the pool's threads so dispatch measures the steady state
        # (executors reuse threads; creation is a one-off cost).
        list(pool.map(lambda c: None, chunks))
        dispatch_s = _best_of(
            _CAL_REPEATS, lambda: list(pool.map(lambda c: None, chunks))
        )

        def sharded():
            parts = list(pool.map(gather, chunks))
            return (
                np.concatenate([p[0] for p in parts]),
                np.concatenate([p[1] for p in parts]),
                np.concatenate([p[2] for p in parts]),
            )

        threads_s = _best_of(_CAL_REPEATS, sharded)
    thread_ns = max(0.0, threads_s - dispatch_s) * 1e9 / _CAL_SAMPLE

    src = fps[sample]
    dst = np.empty_like(src)
    memcpy_s = _best_of(_CAL_REPEATS, lambda: np.copyto(dst, src))
    memcpy_ns = memcpy_s * 1e9 / _CAL_SAMPLE

    # One pool work item: (store name, coalesced ranges, arena offset).
    item = ("seg:calibration", [(i * 512, i * 512 + 384)
                                for i in range(64)], 0)
    pickle_s = _best_of(
        _CAL_REPEATS, lambda: pickle.loads(pickle.dumps(item))
    )
    ipc_ns = pickle_s * 1e9 + PROCESS_TASK_FLOOR_NS

    return Calibration(
        host=host_key(),
        cpu_count=cpus,
        created_at=time.time(),
        gather_ns_per_row=max(gather_ns, 1e-3),
        thread_gather_ns_per_row=max(thread_ns, 1e-3),
        thread_dispatch_ns=max(dispatch_s * 1e9, 0.0),
        memcpy_ns_per_row=max(memcpy_ns, 1e-4),
        ipc_task_ns=ipc_ns,
    )


# ----------------------------------------------------------------------
# Sidecar persistence
# ----------------------------------------------------------------------
def sidecar_path(directory: Optional[str] = None) -> Optional[Path]:
    """Sidecar file for this host, or ``None`` when persistence is off."""
    root = (
        directory if directory is not None
        else os.environ.get(CALIBRATION_DIR_ENV)
    )
    if not root:
        return None
    return Path(root).expanduser() / f"planner-{host_key()}.json"


def load_calibration(path: Path) -> Optional[Calibration]:
    """Load a sidecar; ``None`` on missing/corrupt/stale content."""
    try:
        payload = json.loads(Path(path).read_text())
        cal = Calibration.from_json(payload)
    except (OSError, ValueError, TypeError, KeyError):
        return None
    if cal.is_stale():
        return None
    return replace(cal, source="sidecar")


def save_calibration(cal: Calibration, path: Path) -> bool:
    """Atomically persist *cal*; best-effort (``False`` on any OS error)."""
    path = Path(path)
    tmp = path.with_suffix(".tmp")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text(json.dumps(cal.to_json(), indent=2) + "\n")
        tmp.replace(path)
    except OSError:
        return False
    return True


_cached: Optional[Calibration] = None


def get_calibration(refresh: bool = False) -> Calibration:
    """The process-wide calibration: sidecar if fresh, else measured.

    A freshly measured calibration is written back to the sidecar when
    :data:`CALIBRATION_DIR_ENV` names a directory.  The result is cached
    in-process; ``refresh=True`` forces a re-measure.
    """
    global _cached
    if _cached is not None and not refresh and not _cached.is_stale():
        return _cached
    path = sidecar_path()
    cal = load_calibration(path) if (path and not refresh) else None
    if cal is None:
        cal = measure_calibration()
        if path is not None:
            save_calibration(cal, path)
    _cached = cal
    return cal


def set_calibration(cal: Optional[Calibration]) -> None:
    """Replace the process-wide calibration (tests; rolling refresh)."""
    global _cached
    _cached = cal


# ----------------------------------------------------------------------
# The decision
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExecutorPlan:
    """One batch's executor decision with its predicted costs."""

    strategy: str  # "serial" | "threads" | "processes"
    rows: int
    predicted_ns: dict[str, float] = field(default_factory=dict)
    source: str = "fixed"  # "measured" | "observed" | "fixed" | "explicit"
    reason: str = ""

    @property
    def predicted_chosen_ns(self) -> float:
        return self.predicted_ns.get(self.strategy, 0.0)

    def to_json(self) -> dict:
        return {
            "strategy": self.strategy,
            "rows": self.rows,
            "predicted_ns": {
                k: round(v, 1) for k, v in self.predicted_ns.items()
            },
            "source": self.source,
            "reason": self.reason,
        }


def fixed_choice(
    rows_to_scan: int,
    index_rows: int,
    workers: int,
    cpu_count: int,
    can_processes: bool,
    min_rows: int,
    min_cpus: int,
) -> ExecutorPlan:
    """The legacy fixed-threshold ``"auto"`` rule, as a plan.

    Matches the pre-planner ``resolve_executor`` byte-for-byte:
    processes need ``workers >= 2``, an index of at least *min_rows*
    rows, at least *min_cpus* cores and zero-copy backing; anything
    else thread-shards (or runs serial below two workers).
    """
    if workers < 2:
        return ExecutorPlan(
            "serial", rows_to_scan, source="fixed", reason="workers < 2"
        )
    if index_rows < min_rows:
        return ExecutorPlan(
            "threads", rows_to_scan, source="fixed",
            reason=f"index below {min_rows} rows",
        )
    if cpu_count < min_cpus:
        return ExecutorPlan(
            "threads", rows_to_scan, source="fixed",
            reason=f"{cpu_count} cores < {min_cpus}",
        )
    if not can_processes:
        return ExecutorPlan(
            "threads", rows_to_scan, source="fixed",
            reason="no zero-copy store backing",
        )
    return ExecutorPlan(
        "processes", rows_to_scan, source="fixed",
        reason=f"index >= {min_rows} rows on {cpu_count} cores",
    )


def choose_executor(
    rows_to_scan: int,
    batch_size: int,
    cpu_count: Optional[int] = None,
    *,
    workers: int = 1,
    index_rows: int = 0,
    can_processes: bool = False,
    calibration: Optional[Calibration] = None,
    mode: str = "auto",
    min_rows: Optional[int] = None,
    min_cpus: Optional[int] = None,
    cold_bytes: int = 0,
) -> ExecutorPlan:
    """Pick the cheapest admissible strategy for the next batch.

    *rows_to_scan* is the expected coalesced-union size of the batch
    (*batch_size* queries).  Admissibility guards are hard: processes
    are never chosen with fewer than two workers, on hosts with fewer
    than *min_cpus* cores, or without zero-copy backing — regardless of
    what the cost model predicts.  In ``mode="fixed"``, or when
    *calibration* is ``None``/stale under ``mode="auto"``, the legacy
    threshold rule decides instead.

    The measured decision is monotone in *rows_to_scan*: every
    strategy's predicted cost is affine in rows, so each strategy wins
    on one contiguous rows interval of the lower envelope.
    """
    from .batch import (
        PROCESS_EXECUTOR_MIN_CPUS,
        PROCESS_EXECUTOR_MIN_ROWS,
    )

    if min_rows is None:
        min_rows = PROCESS_EXECUTOR_MIN_ROWS
    if min_cpus is None:
        min_cpus = PROCESS_EXECUTOR_MIN_CPUS
    if cpu_count is None:
        cpu_count = os.cpu_count() or 1
    rows_to_scan = max(0, int(rows_to_scan))

    stale = calibration is None or calibration.is_stale()
    if mode == "fixed" or (mode == "auto" and stale):
        plan = fixed_choice(
            rows_to_scan, index_rows, workers, cpu_count,
            can_processes, min_rows, min_cpus,
        )
        if mode != "fixed" and stale:
            plan = replace(
                plan, reason=f"calibration unavailable; {plan.reason}"
            )
        return plan
    if calibration is None or calibration.is_stale():
        # mode == "measured": measure on the spot rather than guess.
        calibration = get_calibration()

    predicted = calibration.predict_ns(
        rows_to_scan, workers, cold_bytes=cold_bytes
    )
    candidates = ["serial"]
    if workers >= 2:
        candidates.append("threads")
        if cpu_count >= min_cpus and can_processes:
            candidates.append("processes")
    # Ties break toward the simpler strategy (list order).
    strategy = min(candidates, key=lambda s: (predicted[s],))
    source = (
        "observed" if calibration.source == "observed" else "measured"
    )
    return ExecutorPlan(
        strategy, rows_to_scan, predicted_ns=predicted, source=source,
        reason=(
            f"cheapest of {candidates} at ~{rows_to_scan} rows/batch"
        ),
    )


# ----------------------------------------------------------------------
# Rolling stats
# ----------------------------------------------------------------------
@dataclass
class PlannerStats:
    """Decision counters + predicted-vs-actual cost of one executor."""

    plans: int = 0
    fallbacks: int = 0
    decisions: dict = field(default_factory=dict)
    predicted_ns: float = 0.0
    actual_ns: float = 0.0
    last_plan: Optional[ExecutorPlan] = None

    def record(self, plan: ExecutorPlan) -> None:
        self.plans += 1
        self.decisions[plan.strategy] = (
            self.decisions.get(plan.strategy, 0) + 1
        )
        if plan.source == "fixed":
            self.fallbacks += 1
        self.last_plan = plan

    def observe(self, plan: ExecutorPlan, actual_seconds: float) -> None:
        self.predicted_ns += plan.predicted_chosen_ns
        self.actual_ns += actual_seconds * 1e9

    def snapshot(self) -> dict:
        out = {
            "plans": self.plans,
            "fallbacks": self.fallbacks,
            "decisions": dict(self.decisions),
            "predicted_ns": round(self.predicted_ns, 1),
            "actual_ns": round(self.actual_ns, 1),
        }
        if self.last_plan is not None:
            out["last"] = self.last_plan.to_json()
        return out
