"""Fingerprint database storage (paper §III and §IV).

A referenced fingerprint is a point of ``[0, 255]^D`` (one byte per
component, ``D = 20`` in the paper) carrying a video-sequence identifier
``Id`` and a time-code ``tc``.  The database is a flat, immutable collection
of such records kept in a **single binary file** — exactly the layout the
paper describes ("the fingerprint database is stored in a single file") —
with a small fixed header followed by the three column arrays:

``magic 'S3FP' | version u32 | count u64 | ndims u32 | pad u32 |``
``fingerprints (count × ndims u8) | ids (count u32) | timecodes (count f64)``

Column storage keeps the refinement step a pure sequential scan of
contiguous bytes and lets the pseudo-disk strategy load any row range with
one read per column.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Union

import numpy as np

from ..errors import StoreError

_MAGIC = b"S3FP"
_VERSION = 1
_HEADER = struct.Struct("<4sIQII")

PathLike = Union[str, Path]


@dataclass(frozen=True)
class StoreHandle:
    """A zero-copy reference to a store another process can attach.

    ``kind`` is ``"file"`` (the single-file ``save()`` layout, attached
    with :func:`numpy.memmap`) or ``"shm"`` (the same byte layout inside
    a POSIX shared-memory block, attached with
    :mod:`multiprocessing.shared_memory`).  ``ref`` is the file path or
    the shared-memory name.  Handles are plain picklable metadata — a few
    dozen bytes — so shipping one to a worker never serialises
    fingerprint data.
    """

    kind: str
    ref: str
    count: int
    ndims: int

    def nbytes(self) -> int:
        """Payload + header size of the referenced block."""
        return expected_file_size(self.count, self.ndims)


@dataclass
class FingerprintStore:
    """An immutable column-store of local fingerprints.

    Attributes
    ----------
    fingerprints:
        ``(N, D)`` ``uint8`` array; each row is one fingerprint.
    ids:
        ``(N,)`` ``uint32`` video-sequence identifiers.
    timecodes:
        ``(N,)`` ``float64`` time-codes, in key-frame time units.
    """

    fingerprints: np.ndarray
    ids: np.ndarray
    timecodes: np.ndarray

    def __post_init__(self) -> None:
        fp = np.ascontiguousarray(self.fingerprints, dtype=np.uint8)
        if fp.ndim != 2:
            raise StoreError(f"fingerprints must be 2-D, got shape {fp.shape}")
        ids = np.ascontiguousarray(self.ids, dtype=np.uint32)
        tcs = np.ascontiguousarray(self.timecodes, dtype=np.float64)
        if ids.shape != (fp.shape[0],) or tcs.shape != (fp.shape[0],):
            raise StoreError(
                "column length mismatch: "
                f"{fp.shape[0]} fingerprints, {ids.shape[0]} ids, "
                f"{tcs.shape[0]} timecodes"
            )
        object.__setattr__(self, "fingerprints", fp)
        object.__setattr__(self, "ids", ids)
        object.__setattr__(self, "timecodes", tcs)
        object.__setattr__(self, "_handle", None)
        object.__setattr__(self, "_shm", None)

    # ------------------------------------------------------------------
    @property
    def shared_handle(self) -> Optional["StoreHandle"]:
        """The zero-copy handle of this store, if it has shareable backing.

        Non-``None`` only for stores attached via :meth:`load` with
        ``mmap=True``, :meth:`to_shared`, or :meth:`open_shared`; derived
        stores (``take``, slices, concatenations) own their memory and
        return ``None``.
        """
        return getattr(self, "_handle", None)

    @property
    def ndims(self) -> int:
        """Dimension ``D`` of the fingerprint space."""
        return int(self.fingerprints.shape[1])

    def __len__(self) -> int:
        return int(self.fingerprints.shape[0])

    def nbytes(self) -> int:
        """Total payload size in bytes (the paper's "DB file size")."""
        return (
            self.fingerprints.nbytes + self.ids.nbytes + self.timecodes.nbytes
        )

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, ndims: int) -> "FingerprintStore":
        """Return a store with zero records of dimension *ndims*."""
        return cls(
            fingerprints=np.empty((0, ndims), dtype=np.uint8),
            ids=np.empty(0, dtype=np.uint32),
            timecodes=np.empty(0, dtype=np.float64),
        )

    @classmethod
    def concatenate(cls, stores: Iterable["FingerprintStore"]) -> "FingerprintStore":
        """Stack several stores into one (ids are kept as-is)."""
        stores = list(stores)
        if not stores:
            raise StoreError("cannot concatenate zero stores")
        ndims = stores[0].ndims
        for s in stores:
            if s.ndims != ndims:
                raise StoreError(
                    f"dimension mismatch: {s.ndims} vs {ndims}"
                )
        return cls(
            fingerprints=np.concatenate([s.fingerprints for s in stores]),
            ids=np.concatenate([s.ids for s in stores]),
            timecodes=np.concatenate([s.timecodes for s in stores]),
        )

    def take(self, rows: np.ndarray) -> "FingerprintStore":
        """Return a new store holding the given *rows* (in that order)."""
        return FingerprintStore(
            fingerprints=self.fingerprints[rows],
            ids=self.ids[rows],
            timecodes=self.timecodes[rows],
        )

    def row_slice(self, start: int, stop: int) -> "FingerprintStore":
        """Return the contiguous sub-store ``[start, stop)`` (copy)."""
        return FingerprintStore(
            fingerprints=self.fingerprints[start:stop].copy(),
            ids=self.ids[start:stop].copy(),
            timecodes=self.timecodes[start:stop].copy(),
        )

    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> None:
        """Write the store to a single binary file at *path*."""
        path = Path(path)
        header = _HEADER.pack(
            _MAGIC, _VERSION, len(self), self.ndims, 0
        )
        with open(path, "wb") as fh:
            fh.write(header)
            fh.write(self.fingerprints.tobytes())
            fh.write(self.ids.tobytes())
            fh.write(self.timecodes.tobytes())

    @classmethod
    def load(cls, path: PathLike, mmap: bool = False) -> "FingerprintStore":
        """Read a store from *path*.

        With ``mmap=True`` the column arrays are memory-mapped read-only
        instead of loaded — the basis of the pseudo-disk strategy, which
        touches only the curve sections a query batch needs.
        """
        path = Path(path)
        count, ndims = read_header(path)
        offsets = column_offsets(count, ndims)
        expected = expected_file_size(count, ndims)
        actual = path.stat().st_size
        if actual < expected:
            raise StoreError(
                f"truncated store file {path}: {actual} bytes, "
                f"header promises {expected}"
            )
        if mmap:
            fp = np.memmap(
                path, dtype=np.uint8, mode="r",
                offset=offsets["fingerprints"], shape=(count, ndims),
            )
            ids = np.memmap(
                path, dtype=np.uint32, mode="r",
                offset=offsets["ids"], shape=(count,),
            )
            tcs = np.memmap(
                path, dtype=np.float64, mode="r",
                offset=offsets["timecodes"], shape=(count,),
            )
            store = cls.__new__(cls)
            object.__setattr__(store, "fingerprints", fp)
            object.__setattr__(store, "ids", ids)
            object.__setattr__(store, "timecodes", tcs)
            object.__setattr__(store, "_handle", StoreHandle(
                kind="file", ref=str(path.resolve()),
                count=count, ndims=ndims,
            ))
            object.__setattr__(store, "_shm", None)
            return store
        with open(path, "rb") as fh:
            fh.seek(offsets["fingerprints"])
            raw_fp = fh.read(count * ndims)
            raw_ids = fh.read(count * 4)
            raw_tcs = fh.read(count * 8)
        if (
            len(raw_fp) != count * ndims
            or len(raw_ids) != count * 4
            or len(raw_tcs) != count * 8
        ):
            raise StoreError(f"truncated store file: {path}")
        fp = np.frombuffer(raw_fp, dtype=np.uint8).reshape(count, ndims)
        ids = np.frombuffer(raw_ids, dtype=np.uint32)
        tcs = np.frombuffer(raw_tcs, dtype=np.float64)
        return cls(fingerprints=fp.copy(), ids=ids.copy(), timecodes=tcs.copy())

    # ------------------------------------------------------------------
    # zero-copy sharing (process-parallel scans, repro.index.parallel)
    # ------------------------------------------------------------------
    def to_shared(self) -> tuple["FingerprintStore", "object"]:
        """Copy this store into POSIX shared memory, once.

        Returns ``(store, shm)``: a store whose columns are views into a
        fresh :class:`multiprocessing.shared_memory.SharedMemory` block
        holding the exact ``save()`` byte layout (header included, so
        attachers validate the same magic/version), plus the block itself
        — the caller owns it and must ``close()``/``unlink()`` it when
        the last attacher is done.
        """
        from multiprocessing import shared_memory

        size = expected_file_size(len(self), self.ndims)
        shm = shared_memory.SharedMemory(create=True, size=max(size, 1))
        buf = shm.buf
        buf[:_HEADER.size] = _HEADER.pack(
            _MAGIC, _VERSION, len(self), self.ndims, 0
        )
        offsets = column_offsets(len(self), self.ndims)
        fp_v, ids_v, tcs_v = _column_views(buf, len(self), self.ndims, offsets)
        fp_v[:] = self.fingerprints
        ids_v[:] = self.ids
        tcs_v[:] = self.timecodes
        store = _attached_store(
            fp_v, ids_v, tcs_v,
            StoreHandle(kind="shm", ref=shm.name,
                        count=len(self), ndims=self.ndims),
            shm,
        )
        return store, shm

    @classmethod
    def open_shared(cls, handle: StoreHandle) -> "FingerprintStore":
        """Attach the store a :class:`StoreHandle` references, zero-copy.

        ``"file"`` handles memory-map the saved store read-only (the
        pseudo-disk path); ``"shm"`` handles attach the shared-memory
        block by name.  Either way no fingerprint byte is copied — the
        columns are views over the shared pages.
        """
        if handle.kind == "file":
            store = cls.load(handle.ref, mmap=True)
            if len(store) != handle.count or store.ndims != handle.ndims:
                raise StoreError(
                    f"store file {handle.ref} does not match its handle: "
                    f"{len(store)}x{store.ndims} vs "
                    f"{handle.count}x{handle.ndims}"
                )
            return store
        if handle.kind != "shm":
            raise StoreError(f"unknown store handle kind {handle.kind!r}")
        try:
            shm = attach_shm(handle.ref)
        except FileNotFoundError as exc:
            raise StoreError(
                f"shared-memory store {handle.ref} is gone: {exc}"
            ) from exc
        magic, version, count, ndims, _pad = _HEADER.unpack(
            bytes(shm.buf[:_HEADER.size])
        )
        if magic != _MAGIC or version != _VERSION:
            shm.close()
            raise StoreError(
                f"bad header in shared-memory store {handle.ref}"
            )
        if count != handle.count or ndims != handle.ndims:
            shm.close()
            raise StoreError(
                f"shared-memory store {handle.ref} does not match its "
                f"handle: {count}x{ndims} vs {handle.count}x{handle.ndims}"
            )
        offsets = column_offsets(count, ndims)
        fp_v, ids_v, tcs_v = _column_views(shm.buf, count, ndims, offsets)
        return _attached_store(fp_v, ids_v, tcs_v, handle, shm)


class StoreBuilder:
    """Incrementally accumulate records into a :class:`FingerprintStore`.

    The builder keeps pre-allocated column arrays and grows them by
    amortised doubling, so appending many small batches — the memtable
    and segment-flush path of the segmented index — never round-trips
    through Python lists.
    """

    def __init__(self, ndims: int, initial_capacity: int = 1024):
        if ndims < 1:
            raise StoreError(f"ndims must be >= 1, got {ndims}")
        if initial_capacity < 1:
            raise StoreError(
                f"initial_capacity must be >= 1, got {initial_capacity}"
            )
        self._ndims = int(ndims)
        self._size = 0
        self._fp = np.empty((initial_capacity, ndims), dtype=np.uint8)
        self._ids = np.empty(initial_capacity, dtype=np.uint32)
        self._tcs = np.empty(initial_capacity, dtype=np.float64)

    @property
    def ndims(self) -> int:
        return self._ndims

    def __len__(self) -> int:
        return self._size

    def _reserve(self, extra: int) -> None:
        needed = self._size + extra
        capacity = self._fp.shape[0]
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        self._fp = np.concatenate(
            [self._fp, np.empty((capacity - self._fp.shape[0], self._ndims),
                                dtype=np.uint8)]
        )
        self._ids = np.concatenate(
            [self._ids, np.empty(capacity - self._ids.shape[0],
                                 dtype=np.uint32)]
        )
        self._tcs = np.concatenate(
            [self._tcs, np.empty(capacity - self._tcs.shape[0],
                                 dtype=np.float64)]
        )

    def append(
        self,
        fingerprints: np.ndarray,
        ids: np.ndarray,
        timecodes: np.ndarray,
    ) -> int:
        """Append a batch of records; returns the number appended."""
        fp = np.ascontiguousarray(fingerprints, dtype=np.uint8)
        if fp.ndim != 2 or fp.shape[1] != self._ndims:
            raise StoreError(
                f"fingerprints must be (N, {self._ndims}), got shape {fp.shape}"
            )
        ids = np.ascontiguousarray(ids, dtype=np.uint32)
        tcs = np.ascontiguousarray(timecodes, dtype=np.float64)
        n = fp.shape[0]
        if ids.shape != (n,) or tcs.shape != (n,):
            raise StoreError(
                "column length mismatch: "
                f"{n} fingerprints, {ids.shape[0]} ids, {tcs.shape[0]} timecodes"
            )
        self._reserve(n)
        self._fp[self._size:self._size + n] = fp
        self._ids[self._size:self._size + n] = ids
        self._tcs[self._size:self._size + n] = tcs
        self._size += n
        return n

    @property
    def fingerprints(self) -> np.ndarray:
        """View of the filled fingerprint rows (do not mutate)."""
        return self._fp[:self._size]

    @property
    def ids(self) -> np.ndarray:
        """View of the filled id column (do not mutate)."""
        return self._ids[:self._size]

    @property
    def timecodes(self) -> np.ndarray:
        """View of the filled timecode column (do not mutate)."""
        return self._tcs[:self._size]

    def append_store(self, store: FingerprintStore) -> int:
        """Append every record of *store* (the compaction merge path)."""
        return self.append(store.fingerprints, store.ids, store.timecodes)

    def build(self) -> FingerprintStore:
        """Return the accumulated records as an immutable store (copy)."""
        return FingerprintStore(
            fingerprints=self._fp[:self._size].copy(),
            ids=self._ids[:self._size].copy(),
            timecodes=self._tcs[:self._size].copy(),
        )

    def clear(self) -> None:
        """Drop the accumulated records (capacity is retained)."""
        self._size = 0


def read_header(path: PathLike) -> tuple[int, int]:
    """Return ``(count, ndims)`` from a store file header."""
    path = Path(path)
    try:
        with open(path, "rb") as fh:
            raw = fh.read(_HEADER.size)
    except OSError as exc:
        raise StoreError(f"cannot read store file {path}: {exc}") from exc
    if len(raw) < _HEADER.size:
        raise StoreError(f"store file too short: {path}")
    magic, version, count, ndims, _pad = _HEADER.unpack(raw)
    if magic != _MAGIC:
        raise StoreError(f"bad magic in store file {path}: {magic!r}")
    if version != _VERSION:
        raise StoreError(f"unsupported store version {version} in {path}")
    return int(count), int(ndims)


def expected_file_size(count: int, ndims: int) -> int:
    """Total on-disk size of a store with *count* records of *ndims*."""
    return _HEADER.size + count * (ndims + 4 + 8)


def column_offsets(count: int, ndims: int) -> dict[str, int]:
    """Return the byte offset of each column inside a store file."""
    fp_off = _HEADER.size
    ids_off = fp_off + count * ndims
    tcs_off = ids_off + count * 4
    return {"fingerprints": fp_off, "ids": ids_off, "timecodes": tcs_off}


def _column_views(
    buf, count: int, ndims: int, offsets: dict[str, int]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Column arrays over a save()-layout buffer (no copies)."""
    fp = np.ndarray(
        (count, ndims), dtype=np.uint8, buffer=buf,
        offset=offsets["fingerprints"],
    )
    ids = np.ndarray(
        (count,), dtype=np.uint32, buffer=buf, offset=offsets["ids"]
    )
    tcs = np.ndarray(
        (count,), dtype=np.float64, buffer=buf, offset=offsets["timecodes"]
    )
    return fp, ids, tcs


def _attached_store(fp, ids, tcs, handle, shm) -> "FingerprintStore":
    """Assemble a store over externally owned column views.

    Bypasses ``__post_init__`` (which would re-contiguify and copy) and
    pins *shm* on the instance so the mapping outlives the views.
    """
    store = FingerprintStore.__new__(FingerprintStore)
    object.__setattr__(store, "fingerprints", fp)
    object.__setattr__(store, "ids", ids)
    object.__setattr__(store, "timecodes", tcs)
    object.__setattr__(store, "_handle", handle)
    object.__setattr__(store, "_shm", shm)
    return store


def attach_shm(name: str):
    """Attach an existing shared-memory block, bypassing the tracker.

    ``SharedMemory(name=...)`` registers with the per-process resource
    tracker even when merely attaching (bpo-39959): an attaching worker
    exiting would unlink a block its creator still owns, and under the
    ``fork`` start method (shared tracker) the duplicate registration
    produces KeyError noise when the creator finally unlinks.  Ownership
    is explicit in this codebase — only the creator unlinks — so
    attachers suppress registration entirely.
    """
    from multiprocessing import resource_tracker, shared_memory

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original
