"""VA-file baseline: approximation-based sequential search.

The paper's related work singles out the VA-file (Weber & Blott 1997) as
the "improved sequential technique" that sometimes beats hierarchical
indexes outright in high dimension, which is why beating a *sequential
scan* is the paper's reference comparison.  This module implements the
classic two-phase VA-file ε-range query as an additional baseline:

1. **approximation scan** — every vector is pre-quantised to ``bits`` bits
   per dimension; a scan over the compact approximations computes, per
   cell, a lower bound on the distance to the query and discards vectors
   whose bound exceeds ε;
2. **refinement** — the surviving candidates' raw vectors are fetched and
   tested exactly.

Like the paper's own structures, the VA-file is static and exact for range
queries; its virtue is touching far fewer raw bytes than a naive scan.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..errors import ConfigurationError, IndexError_
from .kernels import squared_distances
from .s3 import QueryStats, SearchResult
from .store import FingerprintStore

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .options import QueryOptions


class VAFile:
    """Vector-Approximation file over a byte fingerprint store.

    Parameters
    ----------
    store:
        The fingerprint database (components in ``[0, 255]``).
    bits:
        Bits per dimension of the approximation grid (1–8).  ``bits = 4``
        gives 16 slices per dimension and approximations of
        ``D * 4`` bits — an 8× compression of the byte vectors.
    """

    def __init__(self, store: FingerprintStore, bits: int = 4):
        if len(store) == 0:
            raise IndexError_("cannot build a VA-file over an empty store")
        if not 1 <= bits <= 8:
            raise ConfigurationError(f"bits must be in [1, 8], got {bits}")
        self.store = store
        self.bits = bits
        self.slices = 1 << bits
        # Uniform slicing of [0, 256): slice s covers [s*w, (s+1)*w).
        self._width = 256 // self.slices
        self.approximations = (
            store.fingerprints // np.uint8(self._width)
        ).astype(np.uint8)

    def __len__(self) -> int:
        return len(self.store)

    @property
    def ndims(self) -> int:
        return self.store.ndims

    @property
    def supports_coalesced_scans(self) -> bool:
        """False: the approximation scan already touches every row."""
        return False

    def approximation_bytes(self) -> int:
        """Size of the approximation table (the phase-1 scan volume)."""
        return self.approximations.nbytes

    # ------------------------------------------------------------------
    def _lower_bound_sq(self, query: np.ndarray) -> np.ndarray:
        """Per-row squared lower bound on the distance to *query*.

        For each dimension, the distance from the query component to the
        *slice interval* of the stored vector lower-bounds the true
        component distance.
        """
        width = self._width
        cell_lo = self.approximations.astype(np.float64) * width
        cell_hi = cell_lo + width
        gap = np.maximum(cell_lo - query, 0.0) + np.maximum(
            query - cell_hi, 0.0
        )
        return np.einsum("ij,ij->i", gap, gap)

    def range_query(
        self,
        query: np.ndarray,
        epsilon: float,
        options: Optional["QueryOptions"] = None,
    ) -> SearchResult:
        """Exact ε-range query via the two-phase VA-file algorithm.

        ``options`` is accepted for :class:`~repro.index.IndexProtocol`
        uniformity; the VA-file's own pruning is its approximation scan.
        """
        query = np.asarray(query, dtype=np.float64).ravel()
        if query.size != self.ndims:
            raise ConfigurationError(
                f"query has {query.size} components, store has {self.ndims}"
            )
        if epsilon < 0:
            raise ConfigurationError(f"epsilon must be >= 0, got {epsilon}")

        t0 = time.perf_counter()
        bounds = self._lower_bound_sq(query)
        eps_sq = float(epsilon) ** 2
        candidates = np.nonzero(bounds <= eps_sq)[0]
        t1 = time.perf_counter()

        dist_sq = squared_distances(
            self.store.fingerprints[candidates], query
        )
        keep = dist_sq <= eps_sq
        rows = candidates[keep]
        t2 = time.perf_counter()

        stats = QueryStats(
            blocks_selected=int(candidates.size),
            sections_scanned=1,
            rows_scanned=int(candidates.size),
            results=int(rows.size),
            filter_seconds=t1 - t0,
            refine_seconds=t2 - t1,
        )
        return SearchResult(
            rows=rows,
            ids=self.store.ids[rows],
            timecodes=self.store.timecodes[rows],
            fingerprints=self.store.fingerprints[rows],
            distances=np.sqrt(dist_sq[keep]),
            stats=stats,
        )

    def selectivity(self, query: np.ndarray, epsilon: float) -> float:
        """Fraction of rows surviving the approximation scan.

        The VA-file's quality measure: how much raw-vector I/O phase 1
        avoids.  In dimension 20 with a large ε this fraction approaches 1
        — the dimensionality-curse effect the statistical query sidesteps.
        """
        query = np.asarray(query, dtype=np.float64).ravel()
        bounds = self._lower_bound_sq(query)
        return float(np.mean(bounds <= float(epsilon) ** 2))
