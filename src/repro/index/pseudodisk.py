"""Pseudo-disk strategy for databases exceeding main memory (paper §IV-B).

When the fingerprint file does not fit in RAM, the S³ system batches
``N_sig`` queries: the filtering step (which is independent of the
database rows) runs first for the whole batch, then the curve is split into
``2^r`` regular sections — ``r`` chosen so the fullest section fits the
memory budget — and each section is loaded once while the refinement of
every query in the batch runs against it.  The average response time per
query becomes

``T_tot = T + T_load / N_sig``    (eq. 5)

so the linear loading component is amortised by the batch size.  This
module implements the strategy over a store *file* (sections are read
through a memory map, so real I/O volume is exactly the touched sections)
and accounts bytes loaded and load time explicitly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..distortion.model import IndependentDistortionModel
from ..errors import ConfigurationError
from .filtering import statistical_blocks_cached
from .s3 import QueryStats, SearchResult
from .store import FingerprintStore, PathLike
from .table import HilbertLayout


@dataclass
class BatchStats:
    """Aggregate cost of one pseudo-disk batch."""

    num_queries: int = 0
    num_sections: int = 0
    sections_loaded: int = 0
    bytes_loaded: int = 0
    rows_scanned: int = 0
    filter_seconds: float = 0.0
    load_seconds: float = 0.0
    refine_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Batch wall time: filtering + loads + refinement."""
        return self.filter_seconds + self.load_seconds + self.refine_seconds

    @property
    def seconds_per_query(self) -> float:
        """Eq. (5): the amortised per-query response time."""
        if self.num_queries == 0:
            return 0.0
        return self.total_seconds / self.num_queries


class PseudoDiskSearcher:
    """Batched statistical search over an on-disk, curve-sorted store file.

    Parameters
    ----------
    path:
        A store file saved by :meth:`repro.index.s3.S3Index.save` (i.e.
        already sorted in curve order).
    model:
        Distortion model for the statistical filtering.
    memory_rows:
        Memory budget, in rows; the curve split ``2^r`` is the smallest one
        whose fullest section fits this budget.
    order, key_levels, depth:
        Index geometry, matching the values the store was built with.
    """

    def __init__(
        self,
        path: PathLike,
        model: IndependentDistortionModel,
        memory_rows: int,
        order: int = 8,
        key_levels: int = 2,
        depth: Optional[int] = None,
    ):
        self.path = path
        self.model = model
        # Only the key column is resident; fingerprints stay on disk.
        mapped = FingerprintStore.load(path, mmap=True)
        self._mapped = mapped
        layout = HilbertLayout.build(np.asarray(mapped.fingerprints), order, key_levels)
        if not np.array_equal(layout.permutation, np.arange(len(mapped))):
            raise ConfigurationError(
                "store file is not sorted in curve order; save it through "
                "S3Index.save() first"
            )
        self.layout = layout
        if depth is None:
            depth = int(np.ceil(np.log2(max(len(mapped), 2))))
            depth = min(max(depth, 1), layout.max_depth)
        self.depth = depth
        self.memory_rows = memory_rows
        self.r = layout.section_split_for_memory(memory_rows)
        self.sections = layout.curve_sections(self.r)
        self._row_bytes = mapped.ndims + 4 + 8
        self._threshold_cache: dict[tuple, float] = {}

    def __len__(self) -> int:
        return len(self._mapped)

    # ------------------------------------------------------------------
    def search_batch(
        self, queries: np.ndarray, alpha: float
    ) -> tuple[list[SearchResult], BatchStats]:
        """Answer a batch of statistical queries with one cyclic DB pass.

        Returns one :class:`SearchResult` per query (rows/ids/timecodes/
        fingerprints of every fingerprint in each query's ``V_α``) plus the
        batch-level cost accounting of eq. (5).
        """
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != self._mapped.ndims:
            raise ConfigurationError(
                f"queries must be (N, {self._mapped.ndims}), got {queries.shape}"
            )
        stats = BatchStats(num_queries=queries.shape[0], num_sections=len(self.sections))
        # Fresh warm-start state per batch: identical batches give
        # identical results regardless of earlier searches.
        self._threshold_cache.clear()

        # Stage 1: filtering for the whole batch (database-independent).
        t0 = time.perf_counter()
        all_ranges: list[list[tuple[int, int]]] = []
        for q in queries:
            selection = statistical_blocks_cached(
                q, self.model, self.layout.curve, self.depth, alpha,
                cache=self._threshold_cache,
            )
            all_ranges.append(
                self.layout.block_row_ranges(selection.prefixes, selection.depth)
            )
        stats.filter_seconds = time.perf_counter() - t0

        # Stage 2: cyclic section loads + per-query refinement.
        per_query_rows: list[list[np.ndarray]] = [[] for _ in range(queries.shape[0])]
        per_query_cols: list[list[tuple[np.ndarray, np.ndarray, np.ndarray]]] = [
            [] for _ in range(queries.shape[0])
        ]
        for sec_start, sec_stop in self.sections:
            if sec_start >= sec_stop:
                continue
            needed = False
            for ranges in all_ranges:
                if _overlaps_any(ranges, sec_start, sec_stop):
                    needed = True
                    break
            if not needed:
                continue
            t_load = time.perf_counter()
            # Materialise the section from the memory map (this is the I/O).
            fp = np.asarray(self._mapped.fingerprints[sec_start:sec_stop])
            ids = np.asarray(self._mapped.ids[sec_start:sec_stop])
            tcs = np.asarray(self._mapped.timecodes[sec_start:sec_stop])
            stats.load_seconds += time.perf_counter() - t_load
            stats.sections_loaded += 1
            stats.bytes_loaded += (sec_stop - sec_start) * self._row_bytes

            t_ref = time.perf_counter()
            for qi, ranges in enumerate(all_ranges):
                for s, e in ranges:
                    lo = max(s, sec_start)
                    hi = min(e, sec_stop)
                    if lo >= hi:
                        continue
                    rel = np.arange(lo - sec_start, hi - sec_start)
                    per_query_rows[qi].append(np.arange(lo, hi, dtype=np.int64))
                    per_query_cols[qi].append((fp[rel], ids[rel], tcs[rel]))
                    stats.rows_scanned += hi - lo
            stats.refine_seconds += time.perf_counter() - t_ref

        results = []
        for qi in range(queries.shape[0]):
            if per_query_rows[qi]:
                rows = np.concatenate(per_query_rows[qi])
                fps = np.concatenate([c[0] for c in per_query_cols[qi]])
                ids = np.concatenate([c[1] for c in per_query_cols[qi]])
                tcs = np.concatenate([c[2] for c in per_query_cols[qi]])
            else:
                rows = np.empty(0, dtype=np.int64)
                fps = np.empty((0, self._mapped.ndims), dtype=np.uint8)
                ids = np.empty(0, dtype=np.uint32)
                tcs = np.empty(0, dtype=np.float64)
            qstats = QueryStats(
                rows_scanned=int(rows.size),
                results=int(rows.size),
                sections_scanned=len(all_ranges[qi]),
            )
            results.append(
                SearchResult(
                    rows=rows, ids=ids, timecodes=tcs, fingerprints=fps,
                    stats=qstats,
                )
            )
        return results, stats


def _overlaps_any(ranges: list[tuple[int, int]], lo: int, hi: int) -> bool:
    """Return whether any of *ranges* intersects ``[lo, hi)``."""
    for s, e in ranges:
        if s < hi and e > lo:
            return True
    return False


def auto_batch_size(
    db_rows: int, target_load_fraction: float = 0.25, query_rows_cost: int = 2_000
) -> int:
    """Heuristic ``N_sig`` making the load time sub-linear in the DB size.

    The paper sets ``N_sig`` automatically "to obtain an average loading
    time that is sublinear with the database size": batching √N-many queries
    makes the per-query amortised load ``O(√N)``.  The fraction and
    per-query scan cost simply scale the constant.
    """
    if db_rows < 1:
        raise ConfigurationError(f"db_rows must be >= 1, got {db_rows}")
    if not 0 < target_load_fraction <= 1:
        raise ConfigurationError(
            f"target_load_fraction must be in (0, 1], got {target_load_fraction}"
        )
    n_sig = int(np.sqrt(db_rows / max(query_rows_cost, 1)) / target_load_fraction)
    return max(n_sig, 1)
