"""Machine-readable summaries of stores and indexes.

One schema, three producers: ``repro-s3 info --json`` (files and
directories on disk), the detection service's ``health`` handler (the
live index object it serves), and tests/CI smoke that consume either.
Keeping the construction here ensures the CLI and the service report
the same fields for the same index.
"""

from __future__ import annotations

import os
from pathlib import Path

from .parallel import shared_memory_available
from .planner import choose_executor, get_calibration
from .s3 import S3Index
from .store import PathLike, read_header


def planner_summary(rows: int = 0) -> dict:
    """Describe the measured cost-model planner on this host.

    Reports the current calibration (measuring one on first call) and
    the strategy the planner would pick for a cold scan over *rows*
    index rows.  Calibration failures degrade to ``calibrated: False``
    rather than failing the summary — ``info`` must work everywhere.
    """
    cpus = os.cpu_count() or 1
    try:
        cal = get_calibration()
    except Exception:  # pragma: no cover - defensive
        return {"calibrated": False, "cpu_count": cpus}
    plan = choose_executor(
        rows, 1, cpus, workers=cpus, index_rows=rows, can_processes=True,
        calibration=cal,
    )
    return {
        "calibrated": True,
        "source": cal.source,
        "cpu_count": cpus,
        "cold_strategy": plan.strategy,
        "calibration": cal.to_json(),
    }


def _executor_capabilities(mmap_backed: bool) -> dict:
    """How a store/index can feed the process-parallel scan pool.

    ``mmap`` — workers can attach the bytes straight off disk;
    ``shm`` — the host can copy in-RAM stores into shared memory;
    ``processes`` — at least one zero-copy attachment route exists, so
    ``--executor processes`` (or ``auto``) can escape the GIL here.
    """
    shm = shared_memory_available()
    return {
        "mmap": bool(mmap_backed),
        "shm": shm,
        "processes": bool(mmap_backed) or shm,
    }


def store_file_summary(path: PathLike) -> dict:
    """Describe a fingerprint store file (count, dimension, bytes)."""
    path = Path(path)
    count, ndims = read_header(path)
    return {
        "kind": "store",
        "path": str(path),
        "rows": count,
        "ndims": ndims,
        "bytes": path.stat().st_size,
        # A save()-layout file is mmap-attachable by definition.
        "executor": _executor_capabilities(mmap_backed=True),
    }


def index_summary(index) -> dict:
    """Describe a live :class:`S3Index` or ``SegmentedS3Index``.

    The dict is JSON-safe and stable: the service's ``health`` payload
    and ``repro-s3 info --json`` both embed it verbatim.
    """
    if isinstance(index, S3Index):
        handle = index.store.shared_handle
        return {
            "kind": "monolithic",
            "rows": len(index),
            "ndims": index.ndims,
            "order": index.order,
            "key_levels": index.key_levels,
            "depth": index.depth,
            "sigma": getattr(index.model, "sigma", None),
            "coalesced_scans": index.supports_coalesced_scans,
            "executor": _executor_capabilities(
                mmap_backed=handle is not None and handle.kind == "file"
            ),
            "planner": planner_summary(len(index)),
        }
    manifest = index.manifest
    # Cold segments have no resident store; executor capabilities are
    # judged on the resident set the scan pool could actually attach.
    seg_handles = [
        seg.index.store.shared_handle
        for seg in index._segments
        if seg.index is not None
    ]
    return {
        "kind": "segmented",
        "rows": len(index),
        "ndims": index.ndims,
        "order": manifest.order,
        "key_levels": manifest.key_levels,
        "depth": index.depth,
        "sigma": manifest.sigma,
        "coalesced_scans": index.supports_coalesced_scans,
        "wal": manifest.wal,
        "pending_rows": index.pending_rows,
        "num_segments": index.num_segments,
        "segments": [
            {"name": seg.name, "count": seg.count, "tier": seg.tier}
            for seg in index.segments
        ],
        "executor": _executor_capabilities(
            mmap_backed=bool(seg_handles) and all(
                h is not None and h.kind == "file" for h in seg_handles
            )
        ),
        "planner": planner_summary(len(index)),
        "storage": index.storage_info(),
        # Ingest-pipeline pressure: durability mode, WAL bytes, unsealed
        # memtables, compaction debt and maintenance-queue activity —
        # the operator's view of whether background seal/compaction is
        # keeping up with the write rate.
        "ingest": index.ingest_info(),
    }
