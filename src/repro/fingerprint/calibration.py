"""Distortion-model calibration against video transformations (paper §IV-C).

For a given transformation ``t``, the distortion model is estimated "by
simulating a perfect interest points detector, the points position in the
transformed sequence being computed according to the position in the
original sequence".  Concretely:

1. extract key-frames, interest points and fingerprints from original clips;
2. transform the clips; map each point position through the
   transformation's geometry, optionally jittered by ``δ_pix`` pixels;
3. compute fingerprints at the mapped positions in the transformed clips;
4. estimate the per-component deviations of ``ΔS`` and collapse them to the
   severity ``σ̂``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..distortion.estimate import DistortionEstimate, estimate_distortion
from ..errors import ExtractionError
from ..rng import SeedLike, resolve_rng
from ..video.synthetic import VideoClip
from ..video.transforms import Transform, jitter_points
from .extractor import FingerprintExtractor


@dataclass
class CalibrationPairs:
    """Matched fingerprints before/after a transformation."""

    reference: np.ndarray
    distorted: np.ndarray
    transform_label: str

    def __len__(self) -> int:
        return int(self.reference.shape[0])

    def estimate(self) -> DistortionEstimate:
        """Estimate the distortion model from the pairs."""
        return estimate_distortion(self.reference, self.distorted)

    def empirical_model(self, **kwargs):
        """Fit an :class:`~repro.distortion.empirical.EmpiricalDistortionModel`.

        Keeps the full shape of the observed per-component distortions
        (heavy tails included) instead of collapsing to a single σ — the
        paper's §VI modelling refinement.
        """
        from ..distortion.empirical import EmpiricalDistortionModel
        from ..distortion.estimate import distortion_vectors

        return EmpiricalDistortionModel(
            distortion_vectors(self.reference, self.distorted), **kwargs
        )


def collect_pairs(
    clips: list[VideoClip],
    transform: Transform,
    extractor: FingerprintExtractor | None = None,
    delta_pix: float = 1.0,
    rng: SeedLike = None,
) -> CalibrationPairs:
    """Build matched (original, distorted) fingerprint pairs.

    Points whose mapped position loses descriptor support in the
    transformed frame are dropped from both sides.
    """
    extractor = extractor or FingerprintExtractor()
    gen = resolve_rng(rng)

    ref_parts: list[np.ndarray] = []
    dist_parts: list[np.ndarray] = []
    for clip in clips:
        result = extractor.extract(clip, video_id=0)
        transformed = transform.apply_clip(clip)

        yx = result.positions[:, 1:].astype(np.float64)
        mapped = transform.map_points(yx, (clip.height, clip.width))
        mapped = jitter_points(mapped, delta_pix, gen)
        mapped_positions = np.column_stack(
            [result.positions[:, 0].astype(np.float64), mapped]
        )
        dist_fp, kept = extractor.extract_at(transformed, mapped_positions)
        if dist_fp.shape[0] == 0:
            continue
        ref_parts.append(result.store.fingerprints[kept])
        dist_parts.append(dist_fp)

    if not ref_parts:
        raise ExtractionError(
            "no surviving calibration pairs; transformation too destructive "
            "or clips too small"
        )
    return CalibrationPairs(
        reference=np.concatenate(ref_parts),
        distorted=np.concatenate(dist_parts),
        transform_label=transform.label(),
    )


def calibrate_severity(
    clips: list[VideoClip],
    transform: Transform,
    extractor: FingerprintExtractor | None = None,
    delta_pix: float = 1.0,
    rng: SeedLike = None,
) -> DistortionEstimate:
    """One-call severity estimation: collect pairs, estimate σ̂."""
    pairs = collect_pairs(
        clips, transform, extractor=extractor, delta_pix=delta_pix, rng=rng
    )
    return pairs.estimate()
