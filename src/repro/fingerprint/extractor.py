"""End-to-end local fingerprint extraction (paper §III).

``video → key-frames → interest points → 20-byte fingerprints`` with, for
each fingerprint, the video identifier ``Id`` and the time-code ``tc`` the
voting strategy needs.  Time-codes are expressed in *frames* of the source
clip (converted to seconds by the frame rate where needed), matching the
paper's key-image tolerance of "2 frames".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ExtractionError
from ..index.store import FingerprintStore
from ..video.synthetic import VideoClip
from .descriptor import DescriptorConfig, DescriptorExtractor
from .harris import HarrisConfig, detect_interest_points
from .motion import detect_keyframes


@dataclass(frozen=True)
class ExtractorConfig:
    """All extraction parameters in one bundle."""

    motion_sigma: float = 2.0
    max_keyframes: int | None = None
    harris: HarrisConfig = field(default_factory=HarrisConfig)
    descriptor: DescriptorConfig = field(default_factory=DescriptorConfig)

    def keyframe_margin(self) -> int:
        """Temporal margin key-frames must keep from the clip ends."""
        return max(self.descriptor.temporal_offset, 1)


@dataclass
class ExtractionResult:
    """Fingerprints plus the point metadata calibration needs.

    ``positions`` is ``(N, 3)`` of ``(t, y, x)``: the key-frame index and
    pixel position each fingerprint was computed at.
    """

    store: FingerprintStore
    positions: np.ndarray
    keyframes: np.ndarray

    def __len__(self) -> int:
        return len(self.store)


class FingerprintExtractor:
    """The paper's three-step extraction pipeline."""

    def __init__(self, config: ExtractorConfig | None = None):
        self.config = config or ExtractorConfig()

    def extract(
        self,
        clip: VideoClip,
        video_id: int,
        timecode_offset: float = 0.0,
    ) -> ExtractionResult:
        """Extract every local fingerprint of *clip*.

        *video_id* becomes the stored identifier; *timecode_offset* shifts
        the stored time-codes (useful when a clip is a segment of a longer
        referenced programme).
        """
        cfg = self.config
        keyframes = detect_keyframes(
            clip,
            sigma=cfg.motion_sigma,
            margin=cfg.keyframe_margin(),
            max_keyframes=cfg.max_keyframes,
        )
        descriptor = DescriptorExtractor(clip, cfg.descriptor)

        fingerprints: list[np.ndarray] = []
        positions: list[tuple[int, int, int]] = []
        timecodes: list[float] = []
        for t in keyframes:
            points = detect_interest_points(clip.frames[t], cfg.harris)
            for y, x in points:
                if not descriptor.valid_position(int(t), int(y), int(x)):
                    continue
                fingerprints.append(descriptor.describe(int(t), int(y), int(x)))
                positions.append((int(t), int(y), int(x)))
                timecodes.append(timecode_offset + float(t))

        if not fingerprints:
            raise ExtractionError(
                "no fingerprints extracted; clip too small or featureless"
            )
        store = FingerprintStore(
            fingerprints=np.stack(fingerprints),
            ids=np.full(len(fingerprints), video_id, dtype=np.uint32),
            timecodes=np.array(timecodes, dtype=np.float64),
        )
        return ExtractionResult(
            store=store,
            positions=np.array(positions, dtype=np.int64),
            keyframes=keyframes,
        )

    def extract_at(
        self, clip: VideoClip, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Describe explicit ``(t, y, x)`` positions ("perfect detector").

        Used by the distortion calibration of §IV-C: positions in a
        transformed clip are *computed* from the original detections rather
        than re-detected.  Returns ``(fingerprints, kept_mask)``.
        """
        descriptor = DescriptorExtractor(clip, self.config.descriptor)
        return descriptor.describe_many(positions)
