"""Key-frame detection on the intensity of motion (paper §III, step 1).

The intensity of motion of a video is the mean absolute frame difference.
A Gaussian filter is applied to this 1-D signal and the key-frames are
selected at the *extrema* (both maxima and minima) of the smoothed signal:
maxima sit on bursts of activity (cuts, fast motion), minima on stable
moments — both are reproducible anchors under the paper's transformations,
which act frame-wise and therefore preserve the motion profile's shape.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from ..errors import ConfigurationError, ExtractionError
from ..video.synthetic import VideoClip


def intensity_of_motion(clip: VideoClip) -> np.ndarray:
    """Return the mean absolute frame difference, one value per frame.

    Index ``t`` holds ``mean |I_t − I_{t−1}|``; index 0 repeats index 1 so
    the signal has the clip's length.
    """
    frames = clip.frames.astype(np.float64)
    if frames.shape[0] < 2:
        raise ExtractionError("need at least 2 frames for a motion signal")
    diffs = np.abs(np.diff(frames, axis=0)).mean(axis=(1, 2))
    return np.concatenate(([diffs[0]], diffs))


def smooth_signal(signal: np.ndarray, sigma: float = 2.0) -> np.ndarray:
    """Gaussian smoothing of the motion signal."""
    if sigma <= 0:
        raise ConfigurationError(f"sigma must be > 0, got {sigma}")
    return ndimage.gaussian_filter1d(np.asarray(signal, dtype=np.float64), sigma)


def local_extrema(signal: np.ndarray, margin: int = 0) -> np.ndarray:
    """Return indices of strict local extrema of *signal*.

    Plateau points are skipped (a strict comparison on both sides), which
    keeps the selection stable under the small numeric perturbations the
    transformations introduce.  Indices closer than *margin* to either end
    are dropped (descriptors need a temporal neighbourhood).
    """
    signal = np.asarray(signal, dtype=np.float64)
    if signal.size < 3:
        return np.empty(0, dtype=np.int64)
    left = signal[1:-1] - signal[:-2]
    right = signal[1:-1] - signal[2:]
    is_max = (left > 0) & (right > 0)
    is_min = (left < 0) & (right < 0)
    idx = np.nonzero(is_max | is_min)[0] + 1
    if margin > 0:
        idx = idx[(idx >= margin) & (idx < signal.size - margin)]
    return idx


def detect_keyframes(
    clip: VideoClip,
    sigma: float = 2.0,
    margin: int = 3,
    max_keyframes: int | None = None,
) -> np.ndarray:
    """Detect key-frame indices of *clip* (paper §III, step 1).

    With *max_keyframes*, the extrema with the largest smoothed-signal
    curvature are kept (most salient first), then returned in time order.
    """
    signal = smooth_signal(intensity_of_motion(clip), sigma)
    idx = local_extrema(signal, margin=margin)
    if idx.size == 0:
        # Degenerate (static or monotone) clips: fall back to the centre.
        centre = clip.num_frames // 2
        if margin <= centre < clip.num_frames - margin:
            return np.array([centre], dtype=np.int64)
        raise ExtractionError(
            f"clip of {clip.num_frames} frames too short for margin {margin}"
        )
    if max_keyframes is not None and idx.size > max_keyframes:
        curvature = np.abs(
            signal[idx - 1] - 2.0 * signal[idx] + signal[idx + 1]
        )
        keep = np.argsort(curvature, kind="stable")[::-1][:max_keyframes]
        idx = np.sort(idx[keep])
    return idx
