"""The 20-dimensional local differential fingerprint (paper §III, step 3).

Around each interest point, five-dimensional *sub-fingerprints*

``s_i = (∂I/∂x, ∂I/∂y, ∂²I/∂x∂y, ∂²I/∂x², ∂²I/∂y²)``

are computed (Gaussian derivative filters) at **four spatio-temporal
positions distributed around the point** — two spatial offsets at the frame
``δ_t`` before the key-frame and two at the frame ``δ_t`` after.  Each
``s_i`` is L2-normalised (making the descriptor invariant to affine
illumination changes in the local patch) and the concatenation

``S = (s1/‖s1‖, s2/‖s2‖, s3/‖s3‖, s4/‖s4‖) ∈ [−1, 1]^20``

is quantised to one byte per component, giving the paper's
``[0, 255]^20`` fingerprint space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from ..errors import ConfigurationError
from ..video.synthetic import VideoClip

#: Dimension of the fingerprint space.
FINGERPRINT_DIM = 20

#: Derivative orders of one sub-fingerprint: (dy, dx) filter orders for
#: (Ix, Iy, Ixy, Ixx, Iyy).
_DERIVATIVE_ORDERS = ((0, 1), (1, 0), (1, 1), (0, 2), (2, 0))


@dataclass(frozen=True)
class DescriptorConfig:
    """Geometry and scale of the differential descriptor."""

    spatial_offset: int = 4
    temporal_offset: int = 2
    derivative_sigma: float = 3.0

    def __post_init__(self) -> None:
        if self.spatial_offset < 1:
            raise ConfigurationError(
                f"spatial_offset must be >= 1, got {self.spatial_offset}"
            )
        if self.temporal_offset < 0:
            raise ConfigurationError(
                f"temporal_offset must be >= 0, got {self.temporal_offset}"
            )
        if self.derivative_sigma <= 0:
            raise ConfigurationError(
                f"derivative_sigma must be > 0, got {self.derivative_sigma}"
            )

    def positions(self) -> tuple[tuple[int, int, int], ...]:
        """The four ``(dt, dy, dx)`` offsets around an interest point."""
        d = self.spatial_offset
        dt = self.temporal_offset
        return (
            (-dt, -d, -d),
            (-dt, +d, +d),
            (+dt, +d, -d),
            (+dt, -d, +d),
        )

    @property
    def margin(self) -> int:
        """Minimum distance to the frame border a point needs."""
        return self.spatial_offset + int(np.ceil(3 * self.derivative_sigma)) + 1


def derivative_stack(frame: np.ndarray, sigma: float) -> np.ndarray:
    """Return the five Gaussian-derivative response maps of *frame*.

    Shape ``(5, H, W)`` in the order (Ix, Iy, Ixy, Ixx, Iyy).
    """
    img = np.asarray(frame, dtype=np.float64)
    if img.ndim != 2:
        raise ConfigurationError(f"frame must be 2-D, got shape {img.shape}")
    return np.stack(
        [ndimage.gaussian_filter(img, sigma, order=order) for order in _DERIVATIVE_ORDERS]
    )


def quantize(values: np.ndarray) -> np.ndarray:
    """Quantise unit-normalised components from ``[−1, 1]`` to bytes."""
    values = np.asarray(values, dtype=np.float64)
    return np.clip(np.round((values + 1.0) * 127.5), 0, 255).astype(np.uint8)


def dequantize(fingerprints: np.ndarray) -> np.ndarray:
    """Map byte fingerprints back to ``[−1, 1]`` floats."""
    return np.asarray(fingerprints, dtype=np.float64) / 127.5 - 1.0


class DescriptorExtractor:
    """Computes 20-byte fingerprints at given positions of a clip.

    Derivative stacks are cached per frame, so computing many descriptors
    on the same key-frame costs five filters once.
    """

    def __init__(self, clip: VideoClip, config: DescriptorConfig | None = None):
        self.clip = clip
        self.config = config or DescriptorConfig()
        self._cache: dict[int, np.ndarray] = {}

    def _stack(self, t: int) -> np.ndarray:
        if t not in self._cache:
            self._cache[t] = derivative_stack(
                self.clip.frames[t], self.config.derivative_sigma
            )
        return self._cache[t]

    def valid_position(self, t: int, y: float, x: float) -> bool:
        """Return whether a descriptor at ``(t, y, x)`` has full support."""
        cfg = self.config
        m = cfg.margin
        h, w = self.clip.height, self.clip.width
        if not (m <= y < h - m and m <= x < w - m):
            return False
        return cfg.temporal_offset <= t < self.clip.num_frames - cfg.temporal_offset

    def describe(self, t: int, y: int, x: int) -> np.ndarray:
        """Return the 20-byte fingerprint of the point ``(y, x)`` at frame *t*.

        The caller must have checked :meth:`valid_position`.
        """
        cfg = self.config
        parts = []
        for dt, dy, dx in cfg.positions():
            stack = self._stack(t + dt)
            sub = stack[:, y + dy, x + dx]
            norm = np.linalg.norm(sub)
            if norm > 1e-12:
                sub = sub / norm
            else:
                sub = np.zeros(5)
            parts.append(sub)
        return quantize(np.concatenate(parts))

    def describe_many(self, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Describe a batch of ``(t, y, x)`` positions.

        Invalid positions (insufficient support) are dropped; returns
        ``(fingerprints, kept_mask)`` where *kept_mask* flags the surviving
        input rows.
        """
        positions = np.asarray(positions)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ConfigurationError(
                f"positions must be (N, 3) of (t, y, x), got {positions.shape}"
            )
        fingerprints = []
        kept = np.zeros(positions.shape[0], dtype=bool)
        for i, (t, y, x) in enumerate(positions):
            t_i, y_i, x_i = int(t), int(round(float(y))), int(round(float(x)))
            if not self.valid_position(t_i, y_i, x_i):
                continue
            fingerprints.append(self.describe(t_i, y_i, x_i))
            kept[i] = True
        if fingerprints:
            return np.stack(fingerprints), kept
        return np.empty((0, FINGERPRINT_DIM), dtype=np.uint8), kept
