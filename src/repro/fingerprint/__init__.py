"""Local video fingerprint extraction (paper §III).

Key-frame detection on the intensity of motion
(:mod:`~repro.fingerprint.motion`), Harris interest points
(:mod:`~repro.fingerprint.harris`), the 20-byte differential descriptor
(:mod:`~repro.fingerprint.descriptor`), the end-to-end pipeline
(:mod:`~repro.fingerprint.extractor`) and distortion-model calibration
against transformations (:mod:`~repro.fingerprint.calibration`).
"""

from .calibration import CalibrationPairs, calibrate_severity, collect_pairs
from .descriptor import (
    FINGERPRINT_DIM,
    DescriptorConfig,
    DescriptorExtractor,
    dequantize,
    derivative_stack,
    quantize,
)
from .extractor import ExtractionResult, ExtractorConfig, FingerprintExtractor
from .harris import HarrisConfig, detect_interest_points, harris_response
from .motion import detect_keyframes, intensity_of_motion, local_extrema, smooth_signal
from .repeatability import (
    RepeatabilityResult,
    frame_repeatability,
    measure_repeatability,
)

__all__ = [
    "FINGERPRINT_DIM",
    "CalibrationPairs",
    "DescriptorConfig",
    "DescriptorExtractor",
    "ExtractionResult",
    "ExtractorConfig",
    "FingerprintExtractor",
    "HarrisConfig",
    "RepeatabilityResult",
    "calibrate_severity",
    "collect_pairs",
    "dequantize",
    "derivative_stack",
    "detect_interest_points",
    "detect_keyframes",
    "harris_response",
    "frame_repeatability",
    "intensity_of_motion",
    "measure_repeatability",
    "local_extrema",
    "quantize",
    "smooth_signal",
]
