"""Interest-point repeatability under transformations (paper §IV-C).

The paper bounds how far the severity trade-off can be pushed: "there is a
limit for which it becomes useless to increase σ since the interest point
detector repeatability will be close to zero for transformations that are
too severe".  This module measures that repeatability directly, in the
Schmid–Mohr sense: the fraction of interest points detected in the
original frames whose *mapped* position is re-detected in the transformed
frames within a small radius.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..video.synthetic import VideoClip
from ..video.transforms import Transform
from .harris import HarrisConfig, detect_interest_points


@dataclass(frozen=True)
class RepeatabilityResult:
    """Detector repeatability of one transformation."""

    transform_label: str
    repeatability: float
    num_reference_points: int
    num_frames: int


def frame_repeatability(
    original: np.ndarray,
    transformed: np.ndarray,
    transform: Transform,
    radius: float = 2.0,
    config: HarrisConfig | None = None,
) -> tuple[int, int]:
    """Return ``(repeated, detected)`` counts for one frame pair.

    A reference point counts as *repeated* when some point detected in the
    transformed frame lies within *radius* of its mapped position.
    Reference points whose mapped position leaves the frame are excluded
    (they cannot possibly be re-detected).
    """
    if radius <= 0:
        raise ConfigurationError(f"radius must be > 0, got {radius}")
    cfg = config or HarrisConfig()
    ref_points = detect_interest_points(original, cfg)
    if ref_points.shape[0] == 0:
        return 0, 0
    mapped = transform.map_points(
        ref_points.astype(np.float64), original.shape
    )
    h, w = transformed.shape
    margin = cfg.border
    visible = (
        (mapped[:, 0] >= margin)
        & (mapped[:, 0] < h - margin)
        & (mapped[:, 1] >= margin)
        & (mapped[:, 1] < w - margin)
    )
    mapped = mapped[visible]
    if mapped.shape[0] == 0:
        return 0, 0

    new_points = detect_interest_points(transformed, cfg).astype(np.float64)
    if new_points.shape[0] == 0:
        return 0, int(mapped.shape[0])
    dists = np.linalg.norm(
        mapped[:, None, :] - new_points[None, :, :], axis=2
    )
    repeated = int(np.sum(dists.min(axis=1) <= radius))
    return repeated, int(mapped.shape[0])


def measure_repeatability(
    clip: VideoClip,
    transform: Transform,
    radius: float = 2.0,
    frame_step: int = 10,
    config: HarrisConfig | None = None,
) -> RepeatabilityResult:
    """Average the per-frame repeatability over a clip.

    *frame_step* subsamples the clip (every frame would be redundant —
    neighbouring frames are nearly identical).
    """
    if frame_step < 1:
        raise ConfigurationError(f"frame_step must be >= 1, got {frame_step}")
    transformed = transform.apply_clip(clip)
    repeated = detected = frames = 0
    for t in range(0, clip.num_frames, frame_step):
        r, d = frame_repeatability(
            clip.frames[t], transformed.frames[t], transform,
            radius=radius, config=config,
        )
        repeated += r
        detected += d
        frames += 1
    rate = repeated / detected if detected else 0.0
    return RepeatabilityResult(
        transform_label=transform.label(),
        repeatability=rate,
        num_reference_points=detected,
        num_frames=frames,
    )
