"""Harris interest point detection (paper §III, step 2).

The paper uses "an improved version of the Harris detector" in the spirit
of Schmid & Mohr: image derivatives are computed with Gaussian derivative
filters (scale ``sigma_d``), the structure tensor is integrated at scale
``sigma_i``, and the corner response is

``R = det(M) − k · trace(M)²``.

Detection is non-maximum suppression on ``R`` followed by a relative
threshold and a top-``N`` selection, with a border margin so descriptors
always have full support.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from ..errors import ConfigurationError


@dataclass(frozen=True)
class HarrisConfig:
    """Parameters of the Harris detector."""

    sigma_d: float = 1.0
    sigma_i: float = 2.0
    k: float = 0.06
    relative_threshold: float = 0.01
    nms_radius: int = 3
    border: int = 8
    max_points: int = 20

    def __post_init__(self) -> None:
        if self.sigma_d <= 0 or self.sigma_i <= 0:
            raise ConfigurationError("sigma_d and sigma_i must be > 0")
        if not 0 <= self.relative_threshold < 1:
            raise ConfigurationError(
                f"relative_threshold must be in [0, 1), got {self.relative_threshold}"
            )
        if self.nms_radius < 1:
            raise ConfigurationError(f"nms_radius must be >= 1, got {self.nms_radius}")
        if self.max_points < 1:
            raise ConfigurationError(f"max_points must be >= 1, got {self.max_points}")


def harris_response(frame: np.ndarray, config: HarrisConfig | None = None) -> np.ndarray:
    """Return the Harris corner response map of *frame*."""
    cfg = config or HarrisConfig()
    img = np.asarray(frame, dtype=np.float64)
    if img.ndim != 2:
        raise ConfigurationError(f"frame must be 2-D, got shape {img.shape}")
    ix = ndimage.gaussian_filter(img, cfg.sigma_d, order=(0, 1))
    iy = ndimage.gaussian_filter(img, cfg.sigma_d, order=(1, 0))
    ixx = ndimage.gaussian_filter(ix * ix, cfg.sigma_i)
    iyy = ndimage.gaussian_filter(iy * iy, cfg.sigma_i)
    ixy = ndimage.gaussian_filter(ix * iy, cfg.sigma_i)
    det = ixx * iyy - ixy * ixy
    trace = ixx + iyy
    return det - cfg.k * trace * trace


def detect_interest_points(
    frame: np.ndarray, config: HarrisConfig | None = None
) -> np.ndarray:
    """Detect up to ``max_points`` interest points in *frame*.

    Returns an ``(N, 2)`` integer array of ``(y, x)`` positions, strongest
    response first.  Points within ``border`` pixels of the frame edge are
    excluded.
    """
    cfg = config or HarrisConfig()
    response = harris_response(frame, cfg)
    h, w = response.shape
    if h <= 2 * cfg.border or w <= 2 * cfg.border:
        return np.empty((0, 2), dtype=np.int64)

    size = 2 * cfg.nms_radius + 1
    local_max = ndimage.maximum_filter(response, size=size, mode="nearest")
    peak = response >= local_max
    peak[:cfg.border] = False
    peak[-cfg.border:] = False
    peak[:, :cfg.border] = False
    peak[:, -cfg.border:] = False

    max_response = response[peak].max(initial=0.0)
    if max_response <= 0:
        return np.empty((0, 2), dtype=np.int64)
    peak &= response > cfg.relative_threshold * max_response

    ys, xs = np.nonzero(peak)
    if ys.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    order = np.argsort(response[ys, xs], kind="stable")[::-1][: cfg.max_points]
    return np.column_stack([ys[order], xs[order]]).astype(np.int64)
