"""The asyncio detection server: admission control, shedding, drain.

:class:`DetectionServer` fronts one :class:`~repro.index.s3.S3Index` or
:class:`~repro.index.segmented.lsm.SegmentedS3Index` with the framing
protocol of :mod:`.protocol`.  Request flow:

* ``query`` and ``detect`` push their fingerprints through the shared
  :class:`~repro.serve.batcher.MicroBatcher`, so concurrent requests —
  from any mix of connections — drain through one coalesced engine call;
* ``ingest`` (segmented indexes only) runs on a dedicated multi-worker
  ingest lane: the segmented index is internally thread-safe (queries
  pin a snapshot view), and concurrent appends coalesce into one WAL
  group commit — one ``fsync`` acknowledges many requests.  Heavy seal
  and compaction work runs on the index's background
  :class:`~repro.index.segmented.maintenance.MaintenanceThread`, never
  on the engine lane; when unsealed rows outrun the worker the ingest
  is shed with the retryable ``unavailable`` code instead of stalling
  queries;
* ``stats`` and ``health`` are served inline from counters and the
  shared :func:`~repro.index.summary.index_summary`.

Saturation is explicit: a request that would overflow the bounded queue
is answered immediately with an ``overloaded`` error (and counted), not
buffered — the client's capped-backoff retry loop is the intended
response.  Deadlines propagate: ``deadline_ms`` bounds queueing, and
work that cannot meet it is abandoned with ``deadline_exceeded``.

Shutdown is graceful by construction: :meth:`stop` stops accepting,
answers new requests with ``shutting_down``, drains every queued
fingerprint through the engine, lets in-flight responses flush, and
closes the segmented index's WAL handle — every acknowledged ingest is
already durable, so the directory reopens replayable.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..cbcd.voting import QueryMatches, vote
from ..errors import (
    ColdFetchError,
    ConfigurationError,
    IngestBackpressure,
    ReproError,
)
from ..index.batch import BatchQueryExecutor
from ..index.options import (
    QueryOptions,
    validate_durability,
    warn_deprecated_kwargs,
)
from ..index.segmented import MaintenanceConfig
from ..index.summary import index_summary
from . import protocol
from .batcher import (
    BatcherConfig,
    DeadlineExceeded,
    MicroBatcher,
    ServiceClosed,
    ServiceOverloaded,
)
from .cache import (
    CACHE_MODES,
    DEFAULT_CACHE_CAPACITY,
    DEFAULT_GATHER_CACHE_ROWS,
    ServeCache,
    index_cache_token,
)
from .metrics import Counter, LatencyWindow


class NotReady(ReproError):
    """The server is up but still loading; requests are not admitted."""


class WireOpError(ReproError):
    """An op failed with a specific wire error code to propagate.

    Raised by op handlers (primarily the cluster router relaying an
    upstream shard's error) when the response frame must carry a code
    other than the blanket ``bad_request``/``internal`` mapping.
    """

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


#: Replayed ``ingest`` responses remembered per server.  4096 uuids ×
#: a small counts dict is well under a megabyte; a replay arriving after
#: eviction is indistinguishable from a fresh ingest, so the cap bounds
#: memory at the cost of dedupe horizon, not correctness of the common
#: retry (which lands within milliseconds of the original).
INGEST_DEDUPE_CAPACITY = 4096


@dataclass(frozen=True)
class ServeConfig:
    """Everything the service needs beyond the index itself.

    Engine tuning (sharding, executor, prefilter mode) lives in
    ``options``, the unified
    :class:`~repro.index.options.QueryOptions`; the flat
    ``workers``/``executor`` fields are the deprecated spelling (they
    warn and are folded in; passing both raises).  ``max_batch`` is the
    service's micro-batching knob and always wins as the engine batch
    size.  After construction ``options`` is always populated and the
    flat fields mirror it.

    ``cache`` controls the serve-path caching stack
    (:mod:`repro.serve.cache`): ``"auto"``/``"on"`` enable the result
    LRU, in-flight dedupe and hot-block gather cache, ``"off"``
    disables all three.  All modes serve bit-identical results; the
    result LRU is invalidated on every ingest, while hot-block gathers
    survive memtable-only inserts (sealed stores are immutable) and are
    dropped when a background seal or compaction changes the segment
    set.

    ``durability`` is the WAL fsync policy of the ingest path
    (:data:`~repro.index.options.DURABILITY_MODES`): ``"group"`` — the
    default — coalesces concurrent appends into one fsync, still
    durable before acknowledging.  The CLI applies the mode when
    opening the index and mirrors it here so ``stats`` reports it; the
    value cannot re-configure an already-open WAL.

    ``maintenance`` moves seal/compaction onto the index's background
    worker (segmented indexes only); ``backpressure_rows`` and
    ``compact_mb_per_s`` tune its shedding threshold and compaction
    I/O rate limit, and ``ingest_workers`` sizes the ingest lane whose
    concurrent appends group-commit.

    ``storage_budget``/``cold_dir`` record the tiered-storage settings
    the index was opened with (:mod:`repro.storage`); the CLI applies
    them when opening the index and passes them here so ``stats``
    reports them next to the live per-tier residency.
    """

    host: str = "127.0.0.1"
    port: int = 8765
    alpha: float = 0.8
    max_batch: int = 32
    max_wait_ms: float = 2.0
    queue_limit: int = 1024
    workers: Optional[int] = None
    executor: Optional[str] = None
    max_frame: int = protocol.MAX_FRAME_BYTES
    vote_tolerance: float = 2.0
    tukey_c: float = 6.0
    min_matches: int = 2
    decision_threshold: int = 5
    cache: str = "auto"
    cache_capacity: int = DEFAULT_CACHE_CAPACITY
    gather_cache_rows: int = DEFAULT_GATHER_CACHE_ROWS
    storage_budget: Optional[int] = None
    cold_dir: Optional[str] = None
    durability: str = "group"
    maintenance: bool = True
    backpressure_rows: Optional[int] = None
    compact_mb_per_s: Optional[float] = None
    ingest_workers: int = 4
    options: Optional[QueryOptions] = None

    def __post_init__(self) -> None:
        if self.storage_budget is not None and self.storage_budget < 0:
            raise ConfigurationError(
                f"storage_budget must be >= 0, got {self.storage_budget}"
            )
        validate_durability(self.durability, api="ServeConfig.durability")
        if self.backpressure_rows is not None and self.backpressure_rows < 1:
            raise ConfigurationError(
                "backpressure_rows must be >= 1, got "
                f"{self.backpressure_rows}"
            )
        if self.compact_mb_per_s is not None and self.compact_mb_per_s <= 0:
            raise ConfigurationError(
                "compact_mb_per_s must be > 0, got "
                f"{self.compact_mb_per_s}"
            )
        if self.ingest_workers < 1:
            raise ConfigurationError(
                f"ingest_workers must be >= 1, got {self.ingest_workers}"
            )
        if self.cache not in CACHE_MODES:
            raise ConfigurationError(
                f"cache must be one of {CACHE_MODES!r}, "
                f"got {self.cache!r}"
            )
        if self.cache_capacity < 1:
            raise ConfigurationError(
                f"cache_capacity must be >= 1, got {self.cache_capacity}"
            )
        if self.gather_cache_rows < 0:
            raise ConfigurationError(
                "gather_cache_rows must be >= 0, got "
                f"{self.gather_cache_rows}"
            )
        legacy = {
            name: value
            for name in ("workers", "executor")
            if (value := getattr(self, name)) is not None
        }
        if self.options is not None:
            if legacy:
                raise ConfigurationError(
                    "ServeConfig: pass either options= or the legacy "
                    f"keyword(s) {sorted(legacy)}, not both"
                )
            opts = self.options
            object.__setattr__(self, "alpha", opts.alpha)
        else:
            if legacy:
                warn_deprecated_kwargs("ServeConfig", legacy)
            if not 0.0 < self.alpha <= 1.0:
                raise ConfigurationError(
                    f"alpha must be in (0, 1], got {self.alpha}"
                )
            opts = QueryOptions(
                alpha=self.alpha,
                workers=legacy.get("workers", 1),
                executor=legacy.get("executor", "auto"),
            )
        # The micro-batcher owns batching: its max_batch is the engine
        # batch size, whatever the options said.
        object.__setattr__(
            self, "options", opts.replace(batch_size=self.max_batch)
        )
        object.__setattr__(self, "workers", self.options.workers)
        object.__setattr__(self, "executor", self.options.executor)

    @property
    def cache_enabled(self) -> bool:
        return self.cache != "off"

    def batcher_config(self) -> BatcherConfig:
        return BatcherConfig(
            max_batch=self.max_batch,
            max_wait_ms=self.max_wait_ms,
            queue_limit=self.queue_limit,
        )

    def maintenance_config(self, on_change=None) -> MaintenanceConfig:
        return MaintenanceConfig(
            backpressure_rows=self.backpressure_rows,
            compact_mb_per_s=self.compact_mb_per_s,
            on_change=on_change,
        )


@dataclass
class ServerStats:
    """Top-level request counters, merged with batcher stats on demand."""

    started_at: float = field(default_factory=time.time)
    requests: Counter = field(default_factory=Counter)
    errors: Counter = field(default_factory=Counter)
    connections_total: int = 0
    connections_open: int = 0
    latency: LatencyWindow = field(default_factory=LatencyWindow)


class SocketFrameServer:
    """Shared asyncio core of every frame-speaking service.

    Owns the accept loop, per-connection framing, the dispatch skeleton
    (version gate, drain gate, error-to-frame mapping, latency
    accounting) and the top-level counters.  :class:`DetectionServer`
    and the cluster's scatter-gather router
    (:class:`repro.cluster.router.ClusterRouter`) are both subclasses —
    they differ only in their op handlers and lifecycle, so the wire
    behaviour (including malformed-frame and unknown-op handling) cannot
    drift between a shard and the router fronting it.

    Subclasses provide :meth:`_op_table` and may override :meth:`_gate`
    to reject admissible-looking requests early (the readiness gate).
    """

    def __init__(self, host: str, port: int, max_frame: int):
        self._host = host
        self._requested_port = port
        self.max_frame = max_frame
        self.stats = ServerStats()
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set[asyncio.Task] = set()
        self._inflight = 0
        self._closing = False
        self._stopped = asyncio.Event()

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the kernel's choice)."""
        if self._server is None:
            raise ReproError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def _bind(self) -> None:
        """Open the listening socket (requests may arrive immediately)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._requested_port
        )

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` completes (started elsewhere)."""
        await self._stopped.wait()

    async def _stop_listener(self) -> None:
        """Stop accepting, let responses flush, disconnect idle readers."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def _drain_connections(self) -> None:
        # In-flight handlers hold resolved futures; wait until every
        # response has been written (bounded), then disconnect idle
        # readers — clients keeping the connection open must not block
        # shutdown.
        deadline = asyncio.get_running_loop().time() + 5.0
        while self._inflight and asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.005)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.wait(self._connections, timeout=1.0)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        self.stats.connections_total += 1
        self.stats.connections_open += 1
        try:
            while True:
                try:
                    request = await protocol.read_message(
                        reader, self.max_frame
                    )
                except protocol.ProtocolError as exc:
                    # Framing is broken: answer once, drop the connection.
                    await protocol.write_message(
                        writer,
                        protocol.error_response(
                            None, protocol.ERR_BAD_REQUEST, str(exc)
                        ),
                    )
                    break
                if request is None:  # clean EOF
                    break
                self._inflight += 1
                try:
                    response = await self._dispatch(request)
                    await protocol.write_message(writer, response)
                finally:
                    self._inflight -= 1
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self.stats.connections_open -= 1
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _op_table(self) -> dict:
        """Map of op name to async handler; supplied by the subclass."""
        raise NotImplementedError

    def _gate(self, op: str, request: dict) -> None:
        """Admission hook run after the version/drain gates; raise
        :class:`NotReady` (or any mapped error) to refuse the request."""

    async def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        self.stats.requests.add(key=str(op))
        try:
            version = protocol.request_version(request)
        except protocol.ProtocolError as exc:
            self.stats.errors.add(key=protocol.ERR_BAD_REQUEST)
            return protocol.error_response(
                request, protocol.ERR_BAD_REQUEST, str(exc)
            )
        if not (
            protocol.MIN_PROTOCOL_VERSION
            <= version
            <= protocol.PROTOCOL_VERSION
        ):
            # Answer with the speakable range so the client can
            # negotiate down instead of hanging up.
            self.stats.errors.add(key=protocol.ERR_VERSION)
            return protocol.version_error(request, version)
        if self._closing:
            self.stats.errors.add(key=protocol.ERR_SHUTTING_DOWN)
            return protocol.error_response(
                request, protocol.ERR_SHUTTING_DOWN,
                "server is draining; no new requests admitted",
            )
        handler = self._op_table().get(op)
        if handler is None:
            self.stats.errors.add(key=protocol.ERR_BAD_REQUEST)
            return protocol.error_response(
                request, protocol.ERR_BAD_REQUEST,
                f"unknown op {op!r}; expected one of "
                "query/detect/ingest/stats/health",
            )
        t0 = time.perf_counter()
        try:
            self._gate(op, request)
            result = await handler(request)
        except protocol.ProtocolError as exc:
            self.stats.errors.add(key=protocol.ERR_BAD_REQUEST)
            return protocol.error_response(
                request, protocol.ERR_BAD_REQUEST, str(exc)
            )
        except NotReady as exc:
            self.stats.errors.add(key=protocol.ERR_NOT_READY)
            return protocol.error_response(
                request, protocol.ERR_NOT_READY, str(exc)
            )
        except WireOpError as exc:
            self.stats.errors.add(key=exc.code)
            return protocol.error_response(request, exc.code, exc.message)
        except ServiceOverloaded as exc:
            self.stats.errors.add(key=protocol.ERR_OVERLOADED)
            return protocol.error_response(
                request, protocol.ERR_OVERLOADED, str(exc)
            )
        except DeadlineExceeded as exc:
            self.stats.errors.add(key=protocol.ERR_DEADLINE)
            return protocol.error_response(
                request, protocol.ERR_DEADLINE, str(exc)
            )
        except ServiceClosed as exc:
            self.stats.errors.add(key=protocol.ERR_SHUTTING_DOWN)
            return protocol.error_response(
                request, protocol.ERR_SHUTTING_DOWN, str(exc)
            )
        except IngestBackpressure as exc:
            # The background maintenance worker is behind: unsealed rows
            # crossed the shedding threshold.  The write was refused
            # before touching the WAL, so a capped-backoff retry is
            # exactly right — the same retryable code the router and
            # clients already handle for cold-fetch outages.
            self.stats.errors.add(key=protocol.ERR_UNAVAILABLE)
            return protocol.error_response(
                request, protocol.ERR_UNAVAILABLE, str(exc)
            )
        except ColdFetchError as exc:
            # Tiered storage: the blob backend failed mid-query.  The
            # index itself is intact and a retry may hit a recovered
            # backend (or a since-promoted segment), so the failure maps
            # to the retryable ``unavailable`` code — never a silent
            # partial answer, never a connection teardown.
            self.stats.errors.add(key=protocol.ERR_UNAVAILABLE)
            return protocol.error_response(
                request, protocol.ERR_UNAVAILABLE, str(exc)
            )
        except ReproError as exc:
            self.stats.errors.add(key=protocol.ERR_BAD_REQUEST)
            return protocol.error_response(
                request, protocol.ERR_BAD_REQUEST, str(exc)
            )
        except Exception as exc:  # never leak a traceback over the wire
            self.stats.errors.add(key=protocol.ERR_INTERNAL)
            return protocol.error_response(
                request, protocol.ERR_INTERNAL,
                f"{type(exc).__name__}: {exc}",
            )
        self.stats.latency.record(time.perf_counter() - t0)
        return protocol.ok_response(request, result)

    # ------------------------------------------------------------------
    # shared request helpers
    # ------------------------------------------------------------------
    def _deadline(self, request: dict) -> Optional[float]:
        deadline_ms = request.get("deadline_ms")
        if deadline_ms is None:
            return None
        if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
            raise protocol.ProtocolError(
                f"deadline_ms must be a positive number, got {deadline_ms!r}"
            )
        return asyncio.get_running_loop().time() + deadline_ms / 1e3

    def base_stats(self) -> dict:
        """The counters every frame server's ``stats`` payload shares."""
        return {
            "protocol_version": protocol.PROTOCOL_VERSION,
            "uptime_seconds": time.time() - self.stats.started_at,
            "connections": {
                "open": self.stats.connections_open,
                "total": self.stats.connections_total,
            },
            "requests": dict(self.stats.requests.by_key),
            "errors": dict(self.stats.errors.by_key),
            "latency": self.stats.latency.snapshot(),
        }


class DetectionServer(SocketFrameServer):
    """Serve statistical queries, detection, and ingestion over sockets."""

    def __init__(self, index, config: Optional[ServeConfig] = None):
        config = config or ServeConfig()
        super().__init__(config.host, config.port, config.max_frame)
        self.index = index
        self.config = config
        self._engine: Optional[ThreadPoolExecutor] = None
        self._ingest_lane: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor: Optional[BatchQueryExecutor] = None
        self.batcher: Optional[MicroBatcher] = None
        self.cache: Optional[ServeCache] = None
        self._ready = False
        self.ingest_deduped = 0
        self._ingest_seen: OrderedDict[str, dict] = OrderedDict()
        self._ingest_inflight: dict[str, asyncio.Future] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def ready(self) -> bool:
        """Whether the engine is warm and requests are admitted."""
        return self._ready and not self._closing

    async def start(self) -> None:
        """Bind the socket, then warm the engine and flip to ready.

        The listener opens *before* the (potentially slow) scan-pool
        warm-up, so liveness/readiness probes are answerable from the
        first moment the port exists: ``health`` reports
        ``status="loading"`` and work ops get ``not_ready`` until the
        warm-up finishes.  The warm-up runs off-loop, keeping the loop
        free to answer those probes.
        """
        cfg = self.config
        self._loop = asyncio.get_running_loop()
        # One engine lane serialises the query batches (deterministic
        # threshold-cache behaviour, one descent at a time); the
        # BatchQueryExecutor may still fan the scan out internally.
        self._engine = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-engine"
        )
        # Ingest runs on its own multi-worker lane: the segmented index
        # is internally thread-safe (queries pin a snapshot view), and
        # appends that overlap on the lane coalesce into one WAL group
        # commit — the whole point of durability="group".
        self._ingest_lane = ThreadPoolExecutor(
            max_workers=cfg.ingest_workers,
            thread_name_prefix="serve-ingest",
        )
        if cfg.maintenance and hasattr(self.index, "start_maintenance"):
            # Seal/compaction off both lanes; segment-set changes are
            # reported back onto the event loop to invalidate caches.
            self.index.start_maintenance(cfg.maintenance_config(
                on_change=self._notify_index_change
            ))
        executor = BatchQueryExecutor(self.index, options=cfg.options)
        self._executor = executor
        if cfg.cache_enabled:
            self.cache = ServeCache(
                cfg.cache_capacity, cfg.gather_cache_rows,
                token=index_cache_token(self.index),
            )
            executor.gather_cache = self.cache.gather
        self.batcher = MicroBatcher(
            executor, self._engine, cfg.batcher_config(),
            cache=self.cache,
        )
        self.batcher.start()
        await self._bind()
        # Warm the scan pool before admitting traffic: workers attach
        # every store now, so the first request never pays the spawn.
        # (On worker death mid-flight the pool respawns and retries; if
        # it cannot recover, the executor falls back to threads — a
        # request sees a result either way.)
        await asyncio.get_running_loop().run_in_executor(None, executor.warm)
        self._ready = True

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, flush, close."""
        if self._closing:
            await self._stopped.wait()
            return
        self._closing = True
        self._ready = False
        await self._stop_listener()
        if self.batcher is not None:
            await self.batcher.drain_and_stop()
        await self._drain_connections()
        if self._ingest_lane is not None:
            self._ingest_lane.shutdown(wait=True)
        if self._engine is not None:
            self._engine.shutdown(wait=True)
        if self._executor is not None:
            self._executor.close()  # stops scan workers, frees shm
        if hasattr(self.index, "close"):
            # Drains and stops the maintenance worker, then closes the
            # segmented WAL handle.
            self.index.close()
        self._stopped.set()

    # ------------------------------------------------------------------
    # background-maintenance observer
    # ------------------------------------------------------------------
    def _notify_index_change(self, reason: str) -> None:
        """Called from the maintenance worker thread after a seal or
        compaction changed the segment set; hop onto the event loop."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._on_index_change, reason)
        except RuntimeError:
            pass  # loop shut down between the check and the call

    def _on_index_change(self, reason: str) -> None:
        if self.cache is None:
            return
        # Result rows are bit-identical across seal/compaction, but the
        # index token moved; adopt it so in-flight batches that queried
        # the pre-change view cannot repopulate the LRU.  Gathers stay
        # valid across a seal (stores are immutable and only *added*);
        # a compaction retires stores, so their entries are dropped.
        self.cache.invalidate(
            index_cache_token(self.index),
            keep_gathers=(reason != "compact"),
        )

    # ------------------------------------------------------------------
    # dispatch hooks
    # ------------------------------------------------------------------
    def _op_table(self) -> dict:
        return {
            "query": self._op_query,
            "detect": self._op_detect,
            "ingest": self._op_ingest,
            "stats": self._op_stats,
            "health": self._op_health,
        }

    def _gate(self, op: str, request: dict) -> None:
        # stats/health always answer (they are the probes); work ops
        # wait for the engine warm-up.
        if op in ("query", "detect", "ingest") and not self._ready:
            raise NotReady(
                "server is loading (engine warm-up in progress); "
                "retry after backoff or probe health for readiness"
            )

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------
    def _check_alpha(self, request: dict) -> None:
        alpha = request.get("alpha")
        if alpha is not None and alpha != self.config.alpha:
            raise protocol.ProtocolError(
                f"this server batches across requests at "
                f"alpha={self.config.alpha}; per-request alpha={alpha} "
                "is not supported (start another server for it)"
            )

    async def _op_query(self, request: dict) -> dict:
        self._check_alpha(request)
        queries = protocol.fingerprints_from_wire(
            request.get("fingerprints"), self.index.ndims
        )
        include_fp = bool(request.get("include_fingerprints", False))
        results = await self.batcher.submit_many(
            queries, deadline=self._deadline(request)
        )
        return {
            "alpha": self.config.alpha,
            "results": [
                protocol.result_to_wire(r, include_fp) for r in results
            ],
        }

    async def _op_detect(self, request: dict) -> dict:
        self._check_alpha(request)
        fingerprints = protocol.fingerprints_from_wire(
            request.get("fingerprints"), self.index.ndims
        )
        timecodes = np.asarray(
            request.get("timecodes", []), dtype=np.float64
        )
        if timecodes.shape != (fingerprints.shape[0],):
            raise protocol.ProtocolError(
                f"timecodes must be ({fingerprints.shape[0]},) aligned "
                f"with fingerprints, got shape {timecodes.shape}"
            )
        threshold = int(
            request.get("threshold", self.config.decision_threshold)
        )
        results = await self.batcher.submit_many(
            fingerprints, deadline=self._deadline(request)
        )
        matches = [
            QueryMatches(timecode=float(tc), ids=r.ids, timecodes=r.timecodes)
            for r, tc in zip(results, timecodes)
            if len(r)
        ]
        votes = vote(
            matches,
            tolerance=self.config.vote_tolerance,
            tukey_c=self.config.tukey_c,
            min_matches=self.config.min_matches,
        )
        return {
            "num_queries": int(fingerprints.shape[0]),
            "detections": [
                {
                    "video_id": int(v.video_id),
                    "offset": float(v.offset),
                    "nsim": int(v.nsim),
                    "num_candidates": int(v.num_candidates),
                }
                for v in votes
                if v.nsim >= threshold
            ],
        }

    async def _op_ingest(self, request: dict) -> dict:
        if not hasattr(self.index, "add"):
            raise protocol.ProtocolError(
                "this server fronts a static (monolithic) index; "
                "ingest needs a segmented index directory"
            ) from None
        request_id = protocol.request_dedupe_id(request)
        if request_id is not None:
            replay = self._ingest_replay(request_id)
            if replay is not None:
                return await replay
        fingerprints = protocol.fingerprints_from_wire(
            request.get("fingerprints"), self.index.ndims
        )
        count = fingerprints.shape[0]
        ids = np.asarray(request.get("ids", []), dtype=np.int64)
        timecodes = np.asarray(request.get("timecodes", []), dtype=np.float64)
        if ids.shape != (count,) or timecodes.shape != (count,):
            raise protocol.ProtocolError(
                f"ids and timecodes must both be ({count},) aligned with "
                f"fingerprints, got {ids.shape} and {timecodes.shape}"
            )
        future: Optional[asyncio.Future] = None
        if request_id is not None:
            future = asyncio.get_running_loop().create_future()
            self._ingest_inflight[request_id] = future
        try:
            loop = asyncio.get_running_loop()
            # The dedicated ingest lane: concurrent appends group-commit
            # through one WAL fsync, and queries keep scanning their
            # pinned snapshot views — a write never blocks a batch.
            added = await loop.run_in_executor(
                self._ingest_lane,
                lambda: self.index.add(fingerprints, ids, timecodes),
            )
            if self.cache is not None:
                # Every cached result predates this write; adopt the
                # post-ingest token so in-flight batches that queried
                # the old state cannot repopulate the LRU.  This was a
                # memtable-only insert (seals happen on the maintenance
                # worker, which invalidates separately), so hot-block
                # gathers over the untouched sealed stores survive.
                self.cache.invalidate(
                    index_cache_token(self.index), keep_gathers=True
                )
            result = {
                "added": int(added),
                "rows": len(self.index),
                "pending_rows": self.index.pending_rows,
                "num_segments": self.index.num_segments,
            }
            if request_id is not None:
                # Remember the reply only once the write is durable, so a
                # replayed frame can never be acknowledged ahead of it.
                self._ingest_seen[request_id] = result
                while len(self._ingest_seen) > INGEST_DEDUPE_CAPACITY:
                    self._ingest_seen.popitem(last=False)
                future.set_result(result)
            return result
        except BaseException as exc:
            if future is not None and not future.done():
                # A failed ingest is not remembered: the retry must run.
                future.set_exception(exc)
                future.exception()  # consumed here; replayers re-raise
            raise
        finally:
            if request_id is not None:
                self._ingest_inflight.pop(request_id, None)

    def _ingest_replay(self, request_id: str):
        """A coroutine answering a replayed ingest, or ``None`` if new.

        Two layers: completed ingests are answered from the remembered
        counts; an ingest still on the engine lane (the retry raced the
        original, e.g. through two connections) is awaited rather than
        re-applied.
        """
        seen = self._ingest_seen.get(request_id)
        if seen is not None:
            self._ingest_seen.move_to_end(request_id)

            async def _replay_done() -> dict:
                self.ingest_deduped += 1
                return {**seen, "deduped": True}

            return _replay_done()
        inflight = self._ingest_inflight.get(request_id)
        if inflight is not None:

            async def _replay_inflight() -> dict:
                result = await asyncio.shield(inflight)
                self.ingest_deduped += 1
                return {**result, "deduped": True}

            return _replay_inflight()
        return None

    async def _op_stats(self, request: dict) -> dict:
        return self.stats_snapshot()

    async def _op_health(self, request: dict) -> dict:
        # Liveness vs readiness (v3): ``live`` is true whenever this
        # handler runs at all; ``ready`` only once the engine is warm and
        # until draining begins.  Supervisors route on ``ready``.
        if self._closing:
            status = "draining"
        elif not self._ready:
            status = "loading"
        else:
            status = "ok"
        return {
            "status": status,
            "live": True,
            "ready": self.ready,
            "alpha": self.config.alpha,
            "index": index_summary(self.index),
        }

    # ------------------------------------------------------------------
    def stats_snapshot(self) -> dict:
        """The ``stats`` payload (also handy for in-process inspection)."""
        batcher = self.batcher.stats.snapshot(
            self.batcher.queue_depth
        ) if self.batcher else {}
        engine_stats = self._executor.stats if self._executor else None
        prefilter = {
            "mode": self.config.options.prefilter,
            "enabled": self.config.options.prefilter_enabled,
            "segments_skipped": (
                engine_stats.segments_skipped if engine_stats else 0
            ),
            "blocks_skipped": (
                engine_stats.blocks_skipped if engine_stats else 0
            ),
        }
        if hasattr(self.index, "prefilter_info"):
            prefilter["sketches"] = self.index.prefilter_info()
        cache = (
            self.cache.snapshot() if self.cache is not None
            else {"enabled": False}
        )
        cache["mode"] = self.config.cache
        storage = (
            self.index.storage_info()
            if hasattr(self.index, "storage_info")
            else {"tiered": False}
        )
        ingest = (
            self.index.ingest_info()
            if hasattr(self.index, "ingest_info")
            else {}
        )
        ingest["writable"] = hasattr(self.index, "add")
        ingest["deduped"] = self.ingest_deduped
        return {
            **self.base_stats(),
            "ready": self.ready,
            "ingest_deduped": self.ingest_deduped,
            "ingest": ingest,
            "batcher": batcher,
            "prefilter": prefilter,
            "cache": cache,
            "storage": storage,
            "planner": (
                self._executor.planner_snapshot()
                if self._executor else None
            ),
            "parallel": {
                "strategy": self.config.executor,
                "resolved": (
                    self._executor.resolve_executor()
                    if self._executor else None
                ),
                "pool": (
                    self._executor.pool_stats()
                    if self._executor else None
                ),
            },
            "config": {
                "alpha": self.config.alpha,
                "max_batch": self.config.max_batch,
                "max_wait_ms": self.config.max_wait_ms,
                "queue_limit": self.config.queue_limit,
                "workers": self.config.workers,
                "executor": self.config.executor,
                "prefilter": self.config.options.prefilter,
                "planner": self.config.options.planner,
                "cache": self.config.cache,
                "cache_capacity": self.config.cache_capacity,
                "storage_budget": self.config.storage_budget,
                "cold_dir": self.config.cold_dir,
                "durability": getattr(
                    self.index, "durability", self.config.durability
                ),
                "maintenance": self.config.maintenance,
                "backpressure_rows": self.config.backpressure_rows,
                "compact_mb_per_s": self.config.compact_mb_per_s,
                "ingest_workers": self.config.ingest_workers,
            },
        }
