"""Traffic-shaped caching for the serve path.

The monitoring workload the paper targets — continuous broadcast streams
checked against a fixed reference archive — repeats the same material
constantly: jingles, ad breaks, channel idents.  Three cooperating
layers exploit that repetition, all preserving the serving contract that
every answer is **bit-identical** to a cold solo
``statistical_query``:

* :class:`QueryResultCache` — an LRU of recent per-fingerprint results
  keyed by ``(fingerprint bytes, alpha, depth)`` and guarded by an
  **index token** (:func:`index_cache_token`: the distortion model's
  ``cache_token`` plus the index's row/segment shape).  Every ingest
  changes the token and clears the cache; a result computed *before* a
  mutation but stored *after* it is dropped by the token guard, so a
  stale answer can never be served.
* **In-flight deduplication** (:meth:`ServeCache.register_inflight`) —
  identical fingerprints arriving concurrently (across any mix of
  connections) execute once; followers await the leader's future and
  share its outcome, including errors: a failed leader fails its
  followers, whose clients retry exactly as if they had executed
  themselves.
* :class:`GatherCache` — a hot-block cache of coalesced column gathers
  keyed by ``(store name, union ranges)``.  Even *distinct* queries over
  recurring material select the same Hilbert-curve sections; the cache
  replays the gathered column copies instead of re-touching the store.
  Sealed segment stores are immutable and segment names are never
  reused, so cached columns equal a fresh gather bit-for-bit — which is
  why mutations that retire no store (memtable-only ingests, and seals,
  which only add one) keep them (``invalidate(token,
  keep_gathers=True)``); compactions retire stores and clear the
  gather layer.

The stack is wired by :class:`~repro.serve.server.DetectionServer`
(``ServeConfig(cache=..., cache_capacity=...)``) and consulted by the
micro-batcher before admission — cache hits and follower waits never
occupy queue slots.  The cluster router keeps its own per-shard wire
cache (see :mod:`repro.cluster.router`).
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from .metrics import ratio

#: Cache modes of :class:`~repro.serve.server.ServeConfig`.  ``"auto"``
#: and ``"on"`` both enable the stack today (``"auto"`` may grow
#: admission heuristics later); ``"off"`` disables every layer.
CACHE_MODES = ("auto", "on", "off")

#: Default result-LRU capacity (entries).
DEFAULT_CACHE_CAPACITY = 4096

#: Default gather-cache budget in cached rows (~32 MiB of 20-byte
#: fingerprints plus id/timecode columns at the paper's dimensions).
DEFAULT_GATHER_CACHE_ROWS = 1 << 20


def index_cache_token(index) -> tuple:
    """Identity of the index state a cached result is valid for.

    Combines the distortion model's ``cache_token`` (model identity —
    the same token that keys the warm-start threshold cache) with the
    index's visible shape: total rows, and for segmented indexes the
    segment count and memtable size.  Any ingest, flush or compaction
    changes at least one component.
    """
    model = getattr(index, "model", None)
    token: tuple = (
        model.cache_token() if model is not None else None,
        len(index),
    )
    if hasattr(index, "num_segments"):
        token += (int(index.num_segments), int(index.pending_rows))
    return token


@dataclass
class CacheStats:
    """Counters of every cache layer (the serve ``stats`` block)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stores: int = 0
    stale_drops: int = 0
    invalidations: int = 0
    inflight_deduped: int = 0

    @property
    def hit_rate(self) -> float:
        return ratio(self.hits, self.hits + self.misses)

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "stores": self.stores,
            "stale_drops": self.stale_drops,
            "invalidations": self.invalidations,
            "inflight_deduped": self.inflight_deduped,
        }


class QueryResultCache:
    """Token-guarded LRU of per-fingerprint query results.

    ``put`` records the token the result was computed under; a put whose
    token no longer matches the cache's current token is dropped (the
    index mutated between execution and store).  ``invalidate`` swaps
    the token and clears everything.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CACHE_CAPACITY,
        token: Optional[tuple] = None,
        stats: Optional[CacheStats] = None,
    ):
        if capacity < 1:
            raise ConfigurationError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.token = token
        self.stats = stats if stats is not None else CacheStats()
        self._entries: OrderedDict[Hashable, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable):
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: Hashable, value, token: Optional[tuple]) -> None:
        if token != self.token:
            # Computed against an index state that no longer exists.
            self.stats.stale_drops += 1
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        self.stats.stores += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self, token: Optional[tuple]) -> None:
        """The index mutated: adopt its new token, drop every entry."""
        self.token = token
        self.stats.invalidations += 1
        self._entries.clear()


class GatherCache:
    """LRU of coalesced column gathers, budgeted in rows.

    Keys are ``(store name, union ranges)``; values are the
    ``(ids, timecodes, fingerprints)`` column copies of that union.
    Oversized unions (more than a quarter of the budget) are never
    cached — one giant scan must not evict the whole hot set.
    """

    def __init__(self, capacity_rows: int = DEFAULT_GATHER_CACHE_ROWS):
        if capacity_rows < 0:
            raise ConfigurationError(
                f"gather cache rows must be >= 0, got {capacity_rows}"
            )
        self.capacity_rows = capacity_rows
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rows_cached = 0
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _key(store_name: str, union: Sequence[tuple]) -> tuple:
        return (store_name, tuple(union))

    def get(self, store_name: str, union: Sequence[tuple]):
        key = self._key(store_name, union)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def put(
        self,
        store_name: str,
        union: Sequence[tuple],
        columns: tuple[np.ndarray, np.ndarray, np.ndarray],
        rows: int,
    ) -> None:
        if rows > self.capacity_rows // 4:
            return
        key = self._key(store_name, union)
        old = self._entries.pop(key, None)
        if old is not None:
            self.rows_cached -= old[1]
        self._entries[key] = (columns, rows)
        self.rows_cached += rows
        while self.rows_cached > self.capacity_rows and self._entries:
            _, (_, dropped) = self._entries.popitem(last=False)
            self.rows_cached -= dropped
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
        self.rows_cached = 0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": ratio(self.hits, self.hits + self.misses),
            "evictions": self.evictions,
            "entries": len(self._entries),
            "rows_cached": self.rows_cached,
            "capacity_rows": self.capacity_rows,
        }


class ServeCache:
    """The server's cache facade: result LRU + in-flight table + gathers.

    One instance per :class:`~repro.serve.server.DetectionServer`; the
    in-flight table lives on the event loop (all access is from loop
    callbacks), the result/gather layers are touched from the loop and
    the single engine lane respectively — each layer is single-threaded
    by construction.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CACHE_CAPACITY,
        gather_capacity_rows: int = DEFAULT_GATHER_CACHE_ROWS,
        token: Optional[tuple] = None,
    ):
        self.stats = CacheStats()
        self.results = QueryResultCache(
            capacity, token=token, stats=self.stats
        )
        self.gather = GatherCache(gather_capacity_rows)
        self.inflight: dict[Hashable, asyncio.Future] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def result_key(
        fingerprint: np.ndarray, alpha: float, depth
    ) -> tuple:
        """Cache key of one query fingerprint under fixed serve options."""
        return (
            np.ascontiguousarray(fingerprint).tobytes(),
            float(alpha),
            depth,
        )

    # ------------------------------------------------------------------
    def leader(self, key: Hashable) -> Optional[asyncio.Future]:
        """The in-flight future already executing *key*, if any."""
        future = self.inflight.get(key)
        if future is not None and not future.done():
            return future
        return None

    def register_inflight(
        self, key: Hashable, future: asyncio.Future
    ) -> None:
        """Make *future* the executing leader for *key*.

        The table entry removes itself when the future completes —
        success, error or cancellation alike — so followers can only
        ever attach to a live execution.
        """
        self.inflight[key] = future

        def _cleanup(fut, *, _key=key):
            if self.inflight.get(_key) is fut:
                del self.inflight[_key]

        future.add_done_callback(_cleanup)

    # ------------------------------------------------------------------
    def invalidate(
        self, token: Optional[tuple], keep_gathers: bool = False
    ) -> None:
        """The index mutated: drop results, adopt the token.

        ``keep_gathers=True`` is the fast path for mutations that
        retire no segment store — memtable-only ingests and seals
        (which only *add* a store): sealed stores are immutable, their
        names are never reused, and memtable scans never enter the
        gather layer, so every cached gather stays bit-exact.
        Compactions retire stores, so they pass ``keep_gathers=False``
        (the default) — the retired names can never be queried again,
        but their dead entries would squat on the rows budget.
        """
        self.results.invalidate(token)
        if not keep_gathers:
            self.gather.clear()

    def snapshot(self) -> dict:
        return {
            "enabled": True,
            **self.stats.snapshot(),
            "entries": len(self.results),
            "capacity": self.results.capacity,
            "inflight": len(self.inflight),
            "gather": self.gather.snapshot(),
        }
