"""Run a frame server on a background thread.

Tests, benchmarks and notebooks want a real socket server without
surrendering the calling thread to the event loop.  :class:`ServiceThread`
owns a private loop on a daemon thread, starts any
:class:`~repro.serve.server.SocketFrameServer` there (it only needs
async ``start``/``stop``/``serve_forever``), and exposes the bound
port; exiting the context manager performs the same graceful drain as
Ctrl-C on ``repro-s3 serve``.  :class:`ServerThread` is the
:class:`DetectionServer` convenience wrapper; the cluster router rides
:class:`ServiceThread` directly.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from ..errors import ReproError
from .server import DetectionServer, ServeConfig


class ServiceThread:
    """Any async frame server running on its own event-loop thread.

    ``port=0`` (the default for tests) binds an ephemeral port; read the
    resolved one from :attr:`port` after ``start()`` / ``__enter__``.
    """

    def __init__(self, server):
        self.server = server
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.config.host

    def start(self, timeout: float = 10.0) -> "ServiceThread":
        self._thread = threading.Thread(
            target=self._run, name="serve-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise ReproError("server did not start within the timeout")
        if self._startup_error is not None:
            raise ReproError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful drain (queued queries run, WAL flushed), then join."""
        if self._loop is None or self._thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(), self._loop
        )
        future.result(timeout)
        self._thread.join(timeout)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        try:
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        await self.server.serve_forever()


class ServerThread(ServiceThread):
    """A :class:`DetectionServer` running on its own event-loop thread."""

    def __init__(self, index, config: Optional[ServeConfig] = None):
        super().__init__(DetectionServer(index, config))
