"""Dynamic micro-batching: many connections, one coalesced engine call.

Independent clients each send one statistical query per key-frame — the
paper's deployed traffic shape.  Executed naively that is one block
selection descent and one section scan per request.  The micro-batcher
instead parks each arriving fingerprint in a bounded queue and lets a
single drain loop assemble batches dynamically:

* the first queued fingerprint opens a batch and starts a window of
  ``max_wait_ms``;
* fingerprints arriving inside the window join, up to ``max_batch``;
* the batch drains through **one**
  :meth:`~repro.index.batch.BatchQueryExecutor.query_batch` call on the
  server's serialised engine lane, and results are demultiplexed back to
  the per-fingerprint futures.

So N concurrent clients cost one shared descent and one coalesced scan
instead of N — the cross-request analogue of PR 2's in-process batching.
The warm-start threshold cache is reset before every engine call, so
every served result is **bit-identical** to a solo deterministic
:meth:`~repro.index.s3.S3Index.statistical_query` regardless of which
requests happened to share a batch (tested in
``tests/serve/test_server.py``).

Admission control is all-or-nothing per request: if a request's
fingerprints would push the queue past ``queue_limit`` the whole request
is shed with :class:`ServiceOverloaded` — an explicit, immediate signal
the client can back off on, instead of unbounded buffering.  Deadlines
propagate: a fingerprint whose request deadline passes while it is still
queued is completed with :class:`DeadlineExceeded` and never reaches the
engine.

With a :class:`~repro.serve.cache.ServeCache` attached, admission
consults the cache first: cached fingerprints are answered without
queueing, a fingerprint identical to one already queued or executing
becomes a *follower* of that leader's future (in-flight deduplication —
single execution, fanned-out replies), and only genuinely new
fingerprints count against ``queue_limit``.  Results are stored under
the index token captured on the engine lane, so a batch racing an
ingest can never populate the cache with pre-mutation answers (the
token guard drops them).
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import Executor
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import ConfigurationError, ReproError
from ..index.batch import BatchQueryExecutor
from ..index.s3 import SearchResult
from .cache import index_cache_token
from .metrics import LatencyWindow


class ServiceOverloaded(ReproError):
    """The request was shed: admitting it would overflow the queue."""


class ServiceClosed(ReproError):
    """The service is shutting down and no longer admits requests."""


class DeadlineExceeded(ReproError):
    """The request's deadline passed before its queries ran."""


@dataclass(frozen=True)
class BatcherConfig:
    """Micro-batching knobs.

    ``max_wait_ms = 0`` degenerates to one-batch-per-arrival (useful as
    the unbatched baseline in ``benchmarks/bench_serve.py``).
    """

    max_batch: int = 32
    max_wait_ms: float = 2.0
    queue_limit: int = 1024

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.max_wait_ms < 0:
            raise ConfigurationError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}"
            )
        if self.queue_limit < 0:
            raise ConfigurationError(
                f"queue_limit must be >= 0, got {self.queue_limit}"
            )


@dataclass
class BatcherStats:
    """Aggregate micro-batcher counters (exposed via ``stats``)."""

    queries: int = 0
    batches: int = 0
    shed: int = 0
    expired: int = 0
    fill_sum: int = 0
    max_queue_depth: int = 0
    #: Engine-lane stall: the delay between handing a batch to the
    #: engine executor and the engine thread actually picking it up.
    #: Near-zero when the lane is idle; it grows when something else —
    #: historically an inline compaction — occupies the lane, which is
    #: exactly what background maintenance is meant to prevent.
    stall: LatencyWindow = field(default_factory=LatencyWindow)

    @property
    def mean_fill(self) -> float:
        """Average fingerprints per engine call (> 1 means sharing)."""
        if self.batches == 0:
            return 0.0
        return self.fill_sum / self.batches

    def snapshot(self, queue_depth: int) -> dict:
        return {
            "queries": self.queries,
            "batches": self.batches,
            "shed": self.shed,
            "expired": self.expired,
            "mean_fill": self.mean_fill,
            "queue_depth": queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "engine_stall": self.stall.snapshot(),
        }


@dataclass
class _Pending:
    """One queued fingerprint awaiting its batch.

    ``key`` is the fingerprint's cache key when a cache is attached
    (``None`` otherwise); it marks this pending entry as the in-flight
    *leader* for that key.
    """

    fingerprint: np.ndarray
    future: asyncio.Future
    deadline: Optional[float] = None
    key: Optional[tuple] = None


_STOP = object()


@dataclass
class MicroBatcher:
    """Collects fingerprints across requests and drains them in batches.

    Parameters
    ----------
    executor:
        The shared :class:`BatchQueryExecutor`; its ``batch_size`` should
        be at least ``config.max_batch`` (one engine call per drain).
    engine:
        A **single-threaded** executor serialising the query batches
        (one deterministic descent at a time).  Ingest no longer shares
        it — writes run on the server's dedicated ingest lane and
        queries pin snapshot views — so the lane's only other occupant
        is a previous batch, which ``stats.stall`` makes visible.
    config:
        Batching window, batch cap and admission limit.
    """

    executor: BatchQueryExecutor
    engine: Executor
    config: BatcherConfig = field(default_factory=BatcherConfig)
    #: Optional :class:`~repro.serve.cache.ServeCache`; when set,
    #: admission answers repeats from the cache and dedupes identical
    #: in-flight fingerprints (see the module docstring).
    cache: Optional[object] = None

    def __post_init__(self) -> None:
        self.stats = BatcherStats()
        self._queue: asyncio.Queue = asyncio.Queue()
        self._task: Optional[asyncio.Task] = None
        self._closing = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the drain loop on the running event loop."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._drain_loop()
            )

    async def drain_and_stop(self) -> None:
        """Stop admitting, run every queued fingerprint, join the loop."""
        if self._closing:
            return
        self._closing = True
        self._queue.put_nowait(_STOP)
        if self._task is not None:
            await self._task
            self._task = None

    @property
    def queue_depth(self) -> int:
        """Fingerprints currently queued (not yet picked into a batch)."""
        depth = self._queue.qsize()
        # The stop sentinel is not a query.
        return max(0, depth - 1) if self._closing else depth

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    async def submit_many(
        self,
        fingerprints: np.ndarray,
        deadline: Optional[float] = None,
    ) -> list[SearchResult]:
        """Queue a request's fingerprints and await their results.

        Admission is all-or-nothing: either every fingerprint is queued
        or the request is shed.  Raises :class:`ServiceOverloaded`,
        :class:`ServiceClosed`, or :class:`DeadlineExceeded` (when any
        fingerprint expired before running).
        """
        fingerprints = np.asarray(fingerprints, dtype=np.float64)
        if fingerprints.ndim == 1:
            fingerprints = fingerprints[None, :]
        count = fingerprints.shape[0]
        if self._closing:
            raise ServiceClosed("service is shutting down")
        loop = asyncio.get_running_loop()
        # Pass 1 — classify each fingerprint without side effects beyond
        # counters: cached result, follower of an executing leader, or a
        # genuinely new query.  Only new queries face admission control.
        plan: list[tuple] = []
        new_queries = count
        if self.cache is not None:
            cache = self.cache
            local_leaders: set = set()
            for i in range(count):
                key = cache.result_key(
                    fingerprints[i], self.executor.alpha,
                    self.executor.depth,
                )
                hit = cache.results.get(key)
                if hit is not None:
                    plan.append(("hit", key, hit))
                    continue
                leader = cache.leader(key)
                if leader is not None:
                    cache.stats.inflight_deduped += 1
                    plan.append(("follow", key, leader))
                elif key in local_leaders:
                    # Duplicate within this very request: follow the
                    # leader this request is about to register.
                    cache.stats.inflight_deduped += 1
                    plan.append(("follow_local", key, None))
                else:
                    local_leaders.add(key)
                    plan.append(("new", key, None))
            new_queries = len(local_leaders)
        else:
            plan = [("new", None, None)] * count
        if self.queue_depth + new_queries > self.config.queue_limit:
            self.stats.shed += count
            raise ServiceOverloaded(
                f"queue is full ({self.queue_depth}/"
                f"{self.config.queue_limit} queued; request adds "
                f"{new_queries})"
            )
        # Pass 2 — admitted: register leaders and queue the new queries.
        slots: list[tuple] = []
        items: list[_Pending] = []
        leaders: dict = {}
        for i, (kind, key, payload) in enumerate(plan):
            if kind == "hit":
                slots.append(("value", payload))
            elif kind == "follow":
                slots.append(("future", payload))
            elif kind == "follow_local":
                slots.append(("future", leaders[key]))
            else:
                item = _Pending(
                    fingerprints[i], loop.create_future(), deadline,
                    key=key,
                )
                if self.cache is not None:
                    self.cache.register_inflight(key, item.future)
                    leaders[key] = item.future
                items.append(item)
                slots.append(("future", item.future))
        for item in items:
            self._queue.put_nowait(item)
        self.stats.max_queue_depth = max(
            self.stats.max_queue_depth, self.queue_depth
        )
        # Shield shared futures: an error propagating out of this gather
        # must not cancel a leader another request's follower awaits.
        pending = [
            payload for kind, payload in slots if kind == "future"
        ]
        awaited = iter(await asyncio.gather(
            *(asyncio.shield(f) for f in pending)
        ))
        return [
            payload if kind == "value" else next(awaited)
            for kind, payload in slots
        ]

    # ------------------------------------------------------------------
    # draining
    # ------------------------------------------------------------------
    async def _drain_loop(self) -> None:
        loop = asyncio.get_running_loop()
        stopping = False
        while True:
            item = await self._queue.get()
            if item is _STOP:
                # Drain whatever arrived before the sentinel, then exit.
                stopping = True
                if self._queue.empty():
                    return
                item = self._queue.get_nowait()
            batch = [item]
            window_ends = loop.time() + self.config.max_wait_ms / 1e3
            while len(batch) < self.config.max_batch:
                if stopping:
                    if self._queue.empty():
                        break
                    nxt = self._queue.get_nowait()
                else:
                    remaining = window_ends - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        nxt = await asyncio.wait_for(
                            self._queue.get(), remaining
                        )
                    except asyncio.TimeoutError:
                        break
                if nxt is _STOP:
                    stopping = True
                    continue
                batch.append(nxt)
            await self._run_batch(batch, loop)
            if stopping and self._queue.empty():
                return

    async def _run_batch(
        self, batch: list[_Pending], loop: asyncio.AbstractEventLoop
    ) -> None:
        now = loop.time()
        live: list[_Pending] = []
        for item in batch:
            if item.deadline is not None and now > item.deadline:
                self.stats.expired += 1
                if not item.future.done():
                    item.future.set_exception(DeadlineExceeded(
                        "deadline passed while the query was queued"
                    ))
            else:
                live.append(item)
        if not live:
            return
        queries = np.stack([item.fingerprint for item in live])
        try:
            results, token = await loop.run_in_executor(
                self.engine, self._call_engine, queries,
                time.perf_counter(),
            )
        except Exception as exc:  # surface engine failures per future
            # Followers share the leader's outcome, errors included:
            # their clients see the same failure they would have seen
            # executing themselves, and retry identically.
            for item in live:
                if not item.future.done():
                    item.future.set_exception(exc)
            return
        self.stats.queries += len(live)
        self.stats.batches += 1
        self.stats.fill_sum += len(live)
        for item, result in zip(live, results):
            if not item.future.done():
                item.future.set_result(result)
            if self.cache is not None and item.key is not None:
                # Guarded by the token captured on the engine lane: if
                # an ingest invalidated the cache since this batch ran,
                # the put is dropped, never served stale.
                self.cache.results.put(item.key, result, token)

    def _call_engine(
        self, queries: np.ndarray, submitted: float
    ) -> tuple[list[SearchResult], Optional[tuple]]:
        # How long the batch sat behind the lane's previous occupant —
        # the stall a foreground query pays for lane contention.
        self.stats.stall.record(time.perf_counter() - submitted)
        # Deterministic mode: a cold threshold search per batch makes
        # every served result independent of batching history — the
        # bit-identity contract of docs/serving.md.
        self.executor.index.reset_threshold_cache()
        results = self.executor.query_batch(queries)
        if self.cache is None:
            return results, None
        # Captured on the serialised engine lane, so the token names
        # exactly the index state this batch queried.
        return results, index_cache_token(self.executor.index)
