"""The detection service: an asyncio server over the S³ index family.

The paper's deployed use case is a TV-monitoring service answering a
continuous stream of statistical queries against a growing reference
archive.  This package turns the in-process engines into that service:

* :mod:`.protocol` — a length-prefixed JSON framing protocol carrying
  ``query`` / ``detect`` / ``ingest`` / ``stats`` / ``health`` requests;
* :mod:`.batcher` — a dynamic micro-batcher that aggregates fingerprints
  from concurrent connections into one
  :class:`~repro.index.batch.BatchQueryExecutor` call, with admission
  control and deadline propagation;
* :mod:`.server` — the asyncio :class:`DetectionServer`: bounded queue,
  explicit load shedding, graceful drain on shutdown;
* :mod:`.client` — a blocking wire client with timeouts and capped
  exponential-backoff retries;
* :mod:`.runner` — a thread-embedded server for tests and benchmarks.

Results served through the micro-batcher are **bit-identical** to solo
in-process :meth:`~repro.index.s3.S3Index.statistical_query` calls in
deterministic mode — see ``docs/serving.md``.
"""

from .batcher import (
    BatcherConfig,
    BatcherStats,
    DeadlineExceeded,
    MicroBatcher,
    ServiceClosed,
    ServiceOverloaded,
)
from .client import ServeClient, ServerError, ServiceUnavailable, WireResult
from .protocol import ProtocolError
from .runner import ServerThread, ServiceThread
from .server import (
    DetectionServer,
    NotReady,
    ServeConfig,
    SocketFrameServer,
    WireOpError,
)

__all__ = [
    "BatcherConfig",
    "BatcherStats",
    "DeadlineExceeded",
    "DetectionServer",
    "MicroBatcher",
    "NotReady",
    "ProtocolError",
    "ServeClient",
    "ServeConfig",
    "ServerError",
    "ServerThread",
    "ServiceClosed",
    "ServiceOverloaded",
    "ServiceThread",
    "ServiceUnavailable",
    "SocketFrameServer",
    "WireOpError",
]
